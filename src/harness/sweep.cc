#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "common/rng.hh"
#include "workload/spec_fp95.hh"

namespace mtdae {

RunResult
SimJob::run() const
{
    MTDAE_ASSERT(sources != nullptr, "SimJob ", index, " has no sources");
    Simulator sim(cfg, sources->make(cfg.numThreads, cfg.seed));
    return sim.run(measureInsts);
}

SimJob &
SweepSpec::add(const SimConfig &cfg,
               std::unique_ptr<TraceSourceFactory> sources,
               std::uint64_t measure_insts, std::string label)
{
    // Validate here, on the caller's thread: a bad configuration must
    // fatal() before the pool starts, not from inside a worker racing
    // std::exit() against in-flight jobs.
    cfg.validate();
    SimJob job;
    job.index = jobs_.size();
    job.cfg = cfg;
    job.cfg.seed = deriveSeed(cfg.seed, job.index);
    job.measureInsts = measure_insts;
    job.label = label.empty() && sources ? sources->name()
                                         : std::move(label);
    job.sources = std::move(sources);
    jobs_.push_back(std::move(job));
    return jobs_.back();
}

SimJob &
SweepSpec::addSuiteMix(const SimConfig &cfg, std::uint64_t measure_insts,
                       std::string label)
{
    return add(cfg, makeSuiteMixFactory(), measure_insts,
               std::move(label));
}

SimJob &
SweepSpec::addBenchmark(const SimConfig &cfg, const std::string &bench,
                        std::uint64_t measure_insts, std::string label)
{
    return add(cfg, makeBenchmarkFactory(bench), measure_insts,
               std::move(label));
}

JobRunner::JobRunner(std::uint32_t workers)
    : workers_(workers ? workers : defaultJobs())
{}

std::vector<RunResult>
JobRunner::run(const SweepSpec &spec, const Progress &on_start) const
{
    const std::vector<SimJob> &jobs = spec.jobs();
    std::vector<RunResult> results(jobs.size());
    if (jobs.empty())
        return results;

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mu;  // guards on_start, firstError/errorIndex
    std::exception_ptr first_error;
    std::size_t error_index = jobs.size();

    auto work = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size() ||
                cancelled.load(std::memory_order_relaxed))
                return;
            if (on_start) {
                const std::lock_guard<std::mutex> lock(mu);
                on_start(jobs[i]);
            }
            try {
                // Each slot is written by exactly one worker and read
                // only after the join, so no lock is needed here.
                results[i] = jobs[i].run();
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mu);
                if (i < error_index) {
                    error_index = i;
                    first_error = std::current_exception();
                }
                cancelled.store(true, std::memory_order_relaxed);
            }
        }
    };

    const std::size_t pool =
        std::min<std::size_t>(workers_, jobs.size());
    if (pool <= 1) {
        work();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t w = 0; w < pool; ++w)
            threads.emplace_back(work);
        for (auto &t : threads)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

std::uint32_t
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::uint32_t
envJobs()
{
    if (const char *env = std::getenv("MTDAE_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 0xffffffffUL)
            return std::uint32_t(v);
        warn("ignoring bad MTDAE_JOBS value '", env, "'");
    }
    return defaultJobs();
}

std::uint64_t
envSeed()
{
    if (const char *env = std::getenv("MTDAE_SEED")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0')
            return v;
        warn("ignoring bad MTDAE_SEED value '", env, "'");
    }
    return SimConfig().seed;
}

} // namespace mtdae
