#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "common/rng.hh"
#include "workload/spec_fp95.hh"

namespace mtdae {

RunResult
SimJob::run() const
{
    MTDAE_ASSERT(sources != nullptr, "SimJob ", index, " has no sources");
    Simulator sim(cfg, sources->make(cfg.numThreads, cfg.seed));
    sim.setProfiling(profile);
    return sim.run(measureInsts);
}

Snapshot
SimJob::runWarmup() const
{
    MTDAE_ASSERT(sources != nullptr, "SimJob ", index, " has no sources");
    Simulator sim(cfg, sources->make(cfg.numThreads, cfg.seed));
    sim.runWarmup();
    return sim.saveSnapshot();
}

RunResult
SimJob::runMeasured(const Snapshot &prefix) const
{
    MTDAE_ASSERT(sources != nullptr, "SimJob ", index, " has no sources");
    Simulator sim(cfg, sources->make(cfg.numThreads, cfg.seed));
    sim.restoreSnapshot(prefix);
    sim.setProfiling(profile);
    return sim.runMeasure(measureInsts);
}

std::uint64_t
SimJob::prefixKey() const
{
    MTDAE_ASSERT(sources != nullptr, "SimJob ", index, " has no sources");
    ByteWriter w;
    serializeConfig(cfg, w);
    w.str(sources->fingerprint());
    return fnv1a(w.data());
}

SimJob &
SweepSpec::add(const SimConfig &cfg,
               std::unique_ptr<TraceSourceFactory> sources,
               std::uint64_t measure_insts, std::string label,
               std::uint64_t seed_stream)
{
    // Validate here, on the caller's thread: a bad configuration must
    // fatal() before the pool starts, not from inside a worker racing
    // std::exit() against in-flight jobs.
    cfg.validate();
    SimJob job;
    job.index = jobs_.size();
    job.cfg = cfg;
    job.cfg.seed = deriveSeed(
        cfg.seed, seed_stream == kSeedFromIndex ? job.index : seed_stream);
    job.measureInsts = measure_insts;
    job.label = label.empty() && sources ? sources->name()
                                         : std::move(label);
    job.sources = std::move(sources);
    jobs_.push_back(std::move(job));
    return jobs_.back();
}

SimJob &
SweepSpec::addSuiteMix(const SimConfig &cfg, std::uint64_t measure_insts,
                       std::string label, std::uint64_t seed_stream)
{
    return add(cfg, makeSuiteMixFactory(), measure_insts,
               std::move(label), seed_stream);
}

SimJob &
SweepSpec::addBenchmark(const SimConfig &cfg, const std::string &bench,
                        std::uint64_t measure_insts, std::string label,
                        std::uint64_t seed_stream)
{
    return add(cfg, makeBenchmarkFactory(bench), measure_insts,
               std::move(label), seed_stream);
}

SimJob &
SweepSpec::addDsl(const SimConfig &cfg, const std::string &kernel_text,
                  const dsl::ParamOverrides &params,
                  std::uint64_t measure_insts, std::string label,
                  std::uint64_t seed_stream)
{
    return add(cfg, dsl::makeDslFactory(kernel_text, params),
               measure_insts, std::move(label), seed_stream);
}

JobRunner::JobRunner(std::uint32_t workers, bool warm_start)
    : workers_(workers ? workers : defaultJobs()), warmStart_(warm_start)
{}

std::vector<RunResult>
JobRunner::run(const SweepSpec &spec, const Progress &on_start) const
{
    const std::vector<SimJob> &jobs = spec.jobs();
    std::vector<RunResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // Warm-start prefix sharing: group jobs whose warmup prefixes
    // coincide (equal prefixKey()); each group of two or more shares
    // one lazily created checkpoint. Singleton groups and jobs without
    // a warmup run cold — restoring a checkpoint there saves nothing.
    struct SharedPrefix
    {
        std::mutex mu;
        std::shared_ptr<const Snapshot> snap;
        std::size_t remaining = 0;
    };
    std::map<std::uint64_t, std::unique_ptr<SharedPrefix>> groups;
    std::vector<SharedPrefix *> prefix_of(jobs.size(), nullptr);
    if (warmStart_) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (!jobs[i].sources || jobs[i].cfg.warmupInsts == 0)
                continue;
            auto &group = groups[jobs[i].prefixKey()];
            if (!group)
                group = std::make_unique<SharedPrefix>();
            group->remaining += 1;
            prefix_of[i] = group.get();
        }
        for (auto &[key, group] : groups)
            if (group->remaining < 2)
                for (auto &entry : prefix_of)
                    if (entry == group.get())
                        entry = nullptr;
    }

    auto run_one = [&](std::size_t i) {
        SharedPrefix *group = prefix_of[i];
        if (!group)
            return jobs[i].run();
        std::shared_ptr<const Snapshot> snap;
        {
            // The first job of the group to arrive simulates the
            // shared warmup under the group lock; the rest block here
            // and then restore. Determinism is unaffected: restoring
            // is byte-equivalent to having warmed up privately.
            const std::lock_guard<std::mutex> lock(group->mu);
            if (!group->snap)
                group->snap = std::make_shared<const Snapshot>(
                    jobs[i].runWarmup());
            snap = group->snap;
        }
        const RunResult res = jobs[i].runMeasured(*snap);
        {
            // Drop the group's reference once every member has its
            // own, so big checkpoints don't outlive their usefulness.
            const std::lock_guard<std::mutex> lock(group->mu);
            if (--group->remaining == 0)
                group->snap.reset();
        }
        return res;
    };

    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mu;  // guards on_start, firstError/errorIndex
    std::exception_ptr first_error;
    std::size_t error_index = jobs.size();

    auto work = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size() ||
                cancelled.load(std::memory_order_relaxed))
                return;
            if (on_start) {
                const std::lock_guard<std::mutex> lock(mu);
                on_start(jobs[i]);
            }
            try {
                // Each slot is written by exactly one worker and read
                // only after the join, so no lock is needed here.
                results[i] = run_one(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mu);
                if (i < error_index) {
                    error_index = i;
                    first_error = std::current_exception();
                }
                cancelled.store(true, std::memory_order_relaxed);
            }
        }
    };

    const std::size_t pool =
        std::min<std::size_t>(workers_, jobs.size());
    if (pool <= 1) {
        work();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t w = 0; w < pool; ++w)
            threads.emplace_back(work);
        for (auto &t : threads)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

std::uint32_t
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::uint32_t
envJobs()
{
    if (const char *env = std::getenv("MTDAE_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 0xffffffffUL)
            return std::uint32_t(v);
        warn("ignoring bad MTDAE_JOBS value '", env, "'");
    }
    return defaultJobs();
}

std::uint64_t
envSeed()
{
    if (const char *env = std::getenv("MTDAE_SEED")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0')
            return v;
        warn("ignoring bad MTDAE_SEED value '", env, "'");
    }
    return SimConfig().seed;
}

} // namespace mtdae
