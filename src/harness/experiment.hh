/**
 * @file
 * Experiment harness: canonical paper configurations, single-run drivers
 * and environment plumbing shared by the figure benchmarks, the examples
 * and the integration tests. Multi-point experiments are declared as
 * SweepSpec grids and executed on the worker pool (harness/sweep.hh);
 * the runBenchmark/runSuiteMix drivers here are the serial single-point
 * equivalents used by tests and the simplest examples.
 */

#ifndef MTDAE_HARNESS_EXPERIMENT_HH
#define MTDAE_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/simulator.hh"

namespace mtdae {

/** The L2 latencies the paper sweeps (Figures 1 and 4). */
const std::vector<std::uint32_t> &paperLatencies();

/**
 * The paper's Figure 2 machine.
 *
 * @param threads      hardware contexts
 * @param decoupled    false disables the instruction queues (the paper's
 *                     non-decoupled baseline)
 * @param l2_latency   L2 hit latency in cycles
 * @param scale_queues scale queues/registers with the latency (paper §2)
 */
SimConfig paperConfig(std::uint32_t threads, bool decoupled,
                      std::uint32_t l2_latency, bool scale_queues = true);

/**
 * Run one benchmark on thread 0 of the given machine (single-threaded
 * machines for Figure 1; every thread runs the same benchmark when the
 * machine is multithreaded).
 */
RunResult runBenchmark(const SimConfig &cfg, const std::string &bench,
                       std::uint64_t measure_insts);

/**
 * Run the paper's Section 3 workload: every thread executes the full
 * SPEC FP95 suite in a thread-specific rotation.
 */
RunResult runSuiteMix(const SimConfig &cfg, std::uint64_t measure_insts);

/**
 * Per-run instruction budget: @p fallback unless the environment
 * variable MTDAE_MEASURE_INSTS overrides it (for full-length runs).
 */
std::uint64_t instsBudget(std::uint64_t fallback);

/** Directory for CSV output ("results", honouring MTDAE_RESULTS_DIR). */
std::string resultsDir();

} // namespace mtdae

#endif // MTDAE_HARNESS_EXPERIMENT_HH
