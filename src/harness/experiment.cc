#include "harness/experiment.hh"

#include <cstdlib>
#include <sys/stat.h>

#include "common/log.hh"
#include "workload/spec_fp95.hh"

namespace mtdae {

const std::vector<std::uint32_t> &
paperLatencies()
{
    static const std::vector<std::uint32_t> lats = {1, 16, 32, 64, 128,
                                                    256};
    return lats;
}

SimConfig
paperConfig(std::uint32_t threads, bool decoupled,
            std::uint32_t l2_latency, bool scale_queues)
{
    SimConfig cfg;  // defaults are the paper's Figure 2 machine
    cfg.numThreads = threads;
    cfg.decoupled = decoupled;
    if (scale_queues)
        cfg = cfg.scaledForLatency(l2_latency);
    else
        cfg.l2Latency = l2_latency;
    return cfg;
}

RunResult
runBenchmark(const SimConfig &cfg, const std::string &bench,
             std::uint64_t measure_insts)
{
    Simulator sim(cfg,
                  makeBenchmarkFactory(bench)->make(cfg.numThreads,
                                                    cfg.seed));
    return sim.run(measure_insts);
}

RunResult
runSuiteMix(const SimConfig &cfg, std::uint64_t measure_insts)
{
    Simulator sim(cfg,
                  makeSuiteMixFactory()->make(cfg.numThreads, cfg.seed));
    return sim.run(measure_insts);
}

std::uint64_t
instsBudget(std::uint64_t fallback)
{
    if (const char *env = std::getenv("MTDAE_MEASURE_INSTS")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
        warn("ignoring bad MTDAE_MEASURE_INSTS value '", env, "'");
    }
    return fallback;
}

std::string
resultsDir()
{
    std::string dir = "results";
    if (const char *env = std::getenv("MTDAE_RESULTS_DIR"))
        dir = env;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

} // namespace mtdae
