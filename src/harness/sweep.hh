/**
 * @file
 * The parallel sweep engine: every experiment the paper defines is a
 * grid of *independent* simulation points, so the harness decomposes a
 * sweep into share-nothing SimJobs and executes them on a worker pool.
 *
 * The three pieces:
 *
 *  - SimJob    — one self-contained point: a SimConfig (with a
 *                per-job derived seed), a cloneable trace-source
 *                factory it owns, and an instruction budget. Running a
 *                job touches no state outside the job, so any number
 *                of jobs can run concurrently.
 *  - SweepSpec — the declarative grid: an ordered list of jobs. The
 *                order *is* the result order; consumers format rows
 *                exactly as they would have from a serial loop.
 *  - JobRunner — executes a spec's jobs on N std::threads and returns
 *                the RunResults ordered by job index. Results are a
 *                pure function of the spec: bit-identical at any
 *                worker count (per-job seeds are derived from grid
 *                position, never from scheduling).
 *
 * This is the seam the scaling roadmap builds on: anything that can
 * phrase itself as "run these points" (figure sweeps, ablations,
 * parameter searches, distributed shards) goes through SweepSpec and
 * inherits parallelism and determinism for free. Every SimConfig
 * axis is sweepable by construction — the ablate-policy experiment
 * grids SimConfig::fetchPolicy x issuePolicy, and ablate-gating
 * crosses the stall/flush fetch-gating policies with L2 size; both
 * rely on the policies' own determinism contract
 * (src/policy/policy.hh, docs/POLICIES.md) to keep results
 * byte-identical at any worker count.
 */

#ifndef MTDAE_HARNESS_SWEEP_HH
#define MTDAE_HARNESS_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/simulator.hh"
#include "core/snapshot.hh"
#include "workload/dsl/interp.hh"
#include "workload/trace_source.hh"

namespace mtdae {

/**
 * One self-contained simulation point of a sweep.
 *
 * A job owns everything its simulation needs — configuration, workload
 * recipe and instruction budget — and builds its own trace sources when
 * run, so concurrently executing jobs share no mutable state. Jobs are
 * copyable: copying clones the owned factory.
 */
struct SimJob
{
    /** Position in the sweep grid; results are ordered by this. */
    std::size_t index = 0;

    /** Human-readable point description ("2T decoupled L2=64"). */
    std::string label;

    /** Machine to simulate; cfg.seed is the per-job derived seed. */
    SimConfig cfg;

    /** Instructions to measure (after cfg.warmupInsts of warm-up). */
    std::uint64_t measureInsts = 0;

    /**
     * Collect the per-stage wall-clock breakdown while running
     * (Simulator::setProfiling). Deliberately *not* part of SimConfig:
     * profiling never changes simulated behaviour, so it must not
     * perturb configFingerprint()/prefixKey() either.
     */
    bool profile = false;

    /** Workload recipe; owned, cloned on job copy. */
    std::unique_ptr<TraceSourceFactory> sources;

    SimJob() = default;
    SimJob(SimJob &&) = default;
    SimJob &operator=(SimJob &&) = default;
    SimJob(const SimJob &o)
        : index(o.index), label(o.label), cfg(o.cfg),
          measureInsts(o.measureInsts), profile(o.profile),
          sources(o.sources ? o.sources->clone() : nullptr)
    {}
    SimJob &
    operator=(const SimJob &o)
    {
        if (this != &o) {
            index = o.index;
            label = o.label;
            cfg = o.cfg;
            measureInsts = o.measureInsts;
            profile = o.profile;
            sources = o.sources ? o.sources->clone() : nullptr;
        }
        return *this;
    }

    /**
     * Execute this point: build fresh sources from the factory, run a
     * private Simulator, return its results. Const and share-nothing —
     * safe to call from any thread, any number of times.
     */
    RunResult run() const;

    /**
     * Run only the warm-up phase of this point and checkpoint the
     * state. Jobs with equal prefixKey() produce byte-identical
     * snapshots, so one warmup can fan out to all of them.
     */
    Snapshot runWarmup() const;

    /**
     * Execute this point warm-started from @p prefix (a snapshot
     * produced by runWarmup() on a job with the same prefixKey()).
     * run() == runMeasured(runWarmup()) byte for byte: run() is the
     * composition of the same two loops on the same simulator.
     */
    RunResult runMeasured(const Snapshot &prefix) const;

    /**
     * Canonical warm-start prefix key: the hash of the full serialized
     * configuration (which includes the per-job seed and warmupInsts)
     * chained with the workload factory's fingerprint. Jobs with equal
     * keys reach byte-identical states after warm-up regardless of
     * their measure budgets, so they may share one checkpoint.
     */
    std::uint64_t prefixKey() const;
};

/**
 * A declarative sweep grid: an ordered list of SimJobs.
 *
 * Builders append points in the same nested-loop order a serial driver
 * would run them; the add*() helpers derive each job's seed from the
 * configured base seed and the job's grid index (see deriveSeed in
 * common/rng.hh), which makes results independent of execution order.
 */
class SweepSpec
{
  public:
    /**
     * Seed-stream sentinel: derive the job's seed from its grid index
     * (the default, giving every point an independent random stream).
     * Pass an explicit stream id instead to give several points the
     * *same* derived seed — the warm-start fan-out needs grid
     * neighbours that share (config, seed, workload) so their warmup
     * prefixes coincide (SimJob::prefixKey()).
     */
    static constexpr std::uint64_t kSeedFromIndex = ~std::uint64_t(0);

    /**
     * Append one point. @p cfg.seed is treated as the base seed and
     * rewritten to deriveSeed(base, seed_stream) on the stored job
     * (stream = the job's grid index under the kSeedFromIndex
     * default); the configuration is validated here, on the caller's
     * thread, so a bad point fatal()s before any worker starts.
     *
     * @return the stored job; the reference is invalidated by the
     *         next add*() call (it points into the grid vector)
     */
    SimJob &add(const SimConfig &cfg,
                std::unique_ptr<TraceSourceFactory> sources,
                std::uint64_t measure_insts, std::string label = "",
                std::uint64_t seed_stream = kSeedFromIndex);

    /** Append a suite-mix point (the paper's Section 3 workload). */
    SimJob &addSuiteMix(const SimConfig &cfg,
                        std::uint64_t measure_insts,
                        std::string label = "",
                        std::uint64_t seed_stream = kSeedFromIndex);

    /** Append a single-benchmark point (the Figure 1 workload shape). */
    SimJob &addBenchmark(const SimConfig &cfg, const std::string &bench,
                         std::uint64_t measure_insts,
                         std::string label = "",
                         std::uint64_t seed_stream = kSeedFromIndex);

    /**
     * Append a DSL-kernel point: @p kernel_text is compiled (with
     * @p params overriding its declared defaults) into a factory that
     * binds the kernel to every context, the same workload shape as
     * addBenchmark. Throws DslError, on the caller's thread, when the
     * text does not compile.
     */
    SimJob &addDsl(const SimConfig &cfg, const std::string &kernel_text,
                   const dsl::ParamOverrides &params,
                   std::uint64_t measure_insts, std::string label = "",
                   std::uint64_t seed_stream = kSeedFromIndex);

    /** The grid, in result order. */
    const std::vector<SimJob> &jobs() const { return jobs_; }

    /**
     * Request the per-stage wall-clock profile (SimJob::profile) on
     * every job already in the grid. Profiling never changes simulated
     * results, only RunResult::profile.
     */
    void
    setProfile(bool on)
    {
        for (SimJob &job : jobs_)
            job.profile = on;
    }

    /** Number of points. */
    std::size_t size() const { return jobs_.size(); }

    /** True when the grid is empty. */
    bool empty() const { return jobs_.empty(); }

  private:
    std::vector<SimJob> jobs_;
};

/**
 * Executes a SweepSpec's jobs on a pool of worker threads.
 *
 * Results are collected into a vector ordered by job index, so the
 * output is bit-identical no matter how many workers run the sweep or
 * how the scheduler interleaves them. An exception thrown by a job is
 * captured, the remaining unstarted jobs are cancelled, and the
 * lowest-index captured error is rethrown on the calling thread after
 * every in-flight job has drained.
 */
class JobRunner
{
  public:
    /** Serialized per-job callback, invoked as a worker starts a job. */
    using Progress = std::function<void(const SimJob &)>;

    /**
     * @param workers    pool size; 0 means defaultJobs()
     * @param warm_start share warmup prefixes: jobs with equal
     *        SimJob::prefixKey() (and a non-zero warmup) fan out from
     *        one lazily created checkpoint instead of each
     *        re-simulating the prefix. Results are byte-identical
     *        either way (the checkpoint restore-equivalence contract,
     *        tests/test_checkpoint.cc); only wall time changes.
     */
    explicit JobRunner(std::uint32_t workers = 0, bool warm_start = true);

    /** The resolved pool size (>= 1). */
    std::uint32_t workers() const { return workers_; }

    /** True when warm-start prefix sharing is enabled. */
    bool warmStart() const { return warmStart_; }

    /**
     * Run every job of @p spec; @p on_start (when set) is called under
     * a lock as each job begins, for progress reporting.
     *
     * @return one RunResult per job, ordered by SimJob::index
     */
    std::vector<RunResult> run(const SweepSpec &spec,
                               const Progress &on_start = {}) const;

  private:
    std::uint32_t workers_;
    bool warmStart_;
};

/** Worker count matching the hardware: hardware_concurrency, >= 1. */
std::uint32_t defaultJobs();

/**
 * Worker count for flag-less drivers (bench binaries, examples):
 * the MTDAE_JOBS environment variable when set, else defaultJobs().
 */
std::uint32_t envJobs();

/**
 * Base seed for flag-less drivers: the MTDAE_SEED environment variable
 * when set, else SimConfig's default seed.
 */
std::uint64_t envSeed();

} // namespace mtdae

#endif // MTDAE_HARNESS_SWEEP_HH
