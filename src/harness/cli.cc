#include "harness/cli.hh"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>
#include <sys/stat.h>

#include "common/log.hh"
#include "common/table.hh"
#include "core/slot_stats.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workload/dsl/interp.hh"
#include "workload/spec_fp95.hh"

namespace mtdae::cli {

namespace {

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    // strtoull accepts leading whitespace and '-' (wrapping negatives
    // to huge values); only bare digit strings are valid here.
    if (s.empty() || s[0] < '0' || s[0] > '9')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string &s, std::uint32_t &out)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v) || v > 0xffffffffull)
        return false;
    out = std::uint32_t(v);
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "1" || s == "true" || s == "yes" || s == "on") {
        out = true;
        return true;
    }
    if (s == "0" || s == "false" || s == "no" || s == "off") {
        out = false;
        return true;
    }
    return false;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> parts;
    std::istringstream is(s);
    std::string part;
    while (std::getline(is, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

bool
parseU32List(const std::string &s, std::vector<std::uint32_t> &out,
             std::string &error)
{
    out.clear();
    for (const auto &part : splitCommas(s)) {
        std::uint32_t v = 0;
        if (!parseU32(part, v)) {
            error = "bad number '" + part + "' in list '" + s + "'";
            return false;
        }
        out.push_back(v);
    }
    if (out.empty()) {
        error = "empty list '" + s + "'";
        return false;
    }
    return true;
}

/**
 * Parse one --kernel-param value: a number with an optional binary
 * K/M/G suffix, matching the DSL's own numeric literals.
 */
bool
parseParamValue(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str())
        return false;
    double mult = 1.0;
    if (*end == 'K') {
        mult = 1024.0;
        ++end;
    } else if (*end == 'M') {
        mult = 1024.0 * 1024.0;
        ++end;
    } else if (*end == 'G') {
        mult = 1024.0 * 1024.0 * 1024.0;
        ++end;
    }
    if (*end != '\0')
        return false;
    out = v * mult;
    return true;
}

/** Shortest decimal form that parses back to the same double. */
std::string
paramText(double v)
{
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/**
 * The --kernel-param overrides as single values (`run --bench=dsl`):
 * comma lists are grid axes and only ablate-dsl crosses them.
 *
 * @throws dsl::DslError on a malformed value (runCli reports it as a
 *         usage error)
 */
dsl::ParamOverrides
singleKernelOverrides(const Options &opts)
{
    dsl::ParamOverrides ov;
    for (const auto &[name, value] : opts.kernelParams) {
        double v = 0.0;
        if (!parseParamValue(value, v))
            throw dsl::DslError(
                0, 0,
                "bad --kernel-param value '" + value + "' for '" +
                    name +
                    "' (one number; comma lists are ablate-dsl grid "
                    "axes)");
        ov.emplace_back(name, v);
    }
    return ov;
}

/** One ablate-dsl sweep axis: a param name and its grid values. */
struct KernelAxis
{
    std::string name;
    std::vector<double> values;
};

/**
 * The --kernel-param flags as sweep axes, in flag order.
 *
 * @throws dsl::DslError on a malformed value
 */
std::vector<KernelAxis>
kernelAxes(const Options &opts)
{
    std::vector<KernelAxis> axes;
    for (const auto &[name, value] : opts.kernelParams) {
        KernelAxis axis;
        axis.name = name;
        for (const auto &part : splitCommas(value)) {
            double v = 0.0;
            if (!parseParamValue(part, v))
                throw dsl::DslError(0, 0,
                                    "bad --kernel-param value '" +
                                        part + "' for '" + name + "'");
            axis.values.push_back(v);
        }
        if (axis.values.empty())
            throw dsl::DslError(0, 0,
                                "empty --kernel-param value for '" +
                                    name + "'");
        axes.push_back(std::move(axis));
    }
    return axes;
}

/** One SimConfig override knob: apply a string value to a config. */
struct Knob
{
    std::function<bool(SimConfig &, const std::string &)> set;
};

const std::map<std::string, Knob> &
knobs()
{
    auto u32 = [](std::uint32_t SimConfig::*field) {
        return Knob{[field](SimConfig &c, const std::string &v) {
            return parseU32(v, c.*field);
        }};
    };
    auto u64 = [](std::uint64_t SimConfig::*field) {
        return Knob{[field](SimConfig &c, const std::string &v) {
            return parseU64(v, c.*field);
        }};
    };
    static const std::map<std::string, Knob> k = {
        {"threads", u32(&SimConfig::numThreads)},
        {"decoupled", Knob{[](SimConfig &c, const std::string &v) {
             return parseBool(v, c.decoupled);
         }}},
        {"ap-units", u32(&SimConfig::apUnits)},
        {"ep-units", u32(&SimConfig::epUnits)},
        {"ap-latency", u32(&SimConfig::apLatency)},
        {"ep-latency", u32(&SimConfig::epLatency)},
        {"fetch-threads", u32(&SimConfig::fetchThreadsPerCycle)},
        {"fetch-width", u32(&SimConfig::fetchWidth)},
        {"fetch-buffer", u32(&SimConfig::fetchBufferSize)},
        {"dispatch-width", u32(&SimConfig::dispatchWidth)},
        {"fetch-policy", Knob{[](SimConfig &c, const std::string &v) {
             return parsePolicy(v, c.fetchPolicy) &&
                    policyIsFetch(c.fetchPolicy);
         }}},
        {"issue-policy", Knob{[](SimConfig &c, const std::string &v) {
             return parsePolicy(v, c.issuePolicy) &&
                    policyIsIssue(c.issuePolicy);
         }}},
        {"thread-weights", Knob{[](SimConfig &c, const std::string &v) {
             std::string err;
             if (!parseU32List(v, c.threadWeights, err))
                 return false;
             for (const std::uint32_t w : c.threadWeights)
                 if (w == 0)
                     return false;
             return true;
         }}},
        {"adaptive-threshold", u32(&SimConfig::adaptiveMissThreshold)},
        {"max-branches", u32(&SimConfig::maxUnresolvedBranches)},
        {"redirect-penalty", u32(&SimConfig::redirectPenalty)},
        {"bht-entries", u32(&SimConfig::bhtEntries)},
        {"predictor", Knob{[](SimConfig &c, const std::string &v) {
             if (v == "bimodal")
                 c.predictor = SimConfig::PredictorKind::Bimodal;
             else if (v == "gshare")
                 c.predictor = SimConfig::PredictorKind::Gshare;
             else
                 return false;
             return true;
         }}},
        {"gshare-bits", u32(&SimConfig::gshareHistoryBits)},
        {"iq-entries", u32(&SimConfig::iqEntries)},
        {"apq-entries", u32(&SimConfig::apQueueEntries)},
        {"saq-entries", u32(&SimConfig::saqEntries)},
        {"rob-entries", u32(&SimConfig::robEntries)},
        {"ap-regs", u32(&SimConfig::apPhysRegs)},
        {"ep-regs", u32(&SimConfig::epPhysRegs)},
        {"graduate-width", u32(&SimConfig::graduateWidth)},
        {"l1-bytes", u32(&SimConfig::l1Bytes)},
        {"l1-line", u32(&SimConfig::l1LineBytes)},
        {"l1-ports", u32(&SimConfig::l1Ports)},
        {"mshrs", u32(&SimConfig::mshrs)},
        {"l1-hit-latency", u32(&SimConfig::l1HitLatency)},
        {"l2-latency", u32(&SimConfig::l2Latency)},
        {"bus-bytes", u32(&SimConfig::busBytesPerCycle)},
        {"perfect-l2", Knob{[](SimConfig &c, const std::string &v) {
             return parseBool(v, c.perfectL2);
         }}},
        {"l2-size", u32(&SimConfig::l2Bytes)},
        {"l2-assoc", u32(&SimConfig::l2Assoc)},
        {"l2-ports", u32(&SimConfig::l2Ports)},
        {"l2-mshrs", u32(&SimConfig::l2Mshrs)},
        {"dram-banks", u32(&SimConfig::dramBanks)},
        {"dram-row-bytes", u32(&SimConfig::dramRowBytes)},
        {"dram-cas", u32(&SimConfig::dramCas)},
        {"dram-ras", u32(&SimConfig::dramRas)},
        {"dram-precharge", u32(&SimConfig::dramPrecharge)},
        {"dram-bus-cycles", u32(&SimConfig::dramBusCycles)},
        {"seed", u64(&SimConfig::seed)},
        {"warmup", u64(&SimConfig::warmupInsts)},
        // Alias of --warmup: the checkpoint docs spell the knob out.
        {"warmup-insts", u64(&SimConfig::warmupInsts)},
        {"cycle-skip", Knob{[](SimConfig &c, const std::string &v) {
             return parseBool(v, c.cycleSkip);
         }}},
    };
    return k;
}

std::string
fmt(double v, int precision = 4)
{
    return TextTable::fmt(v, precision);
}

/** opts.insts when given, else the experiment's instsBudget default. */
std::uint64_t
budget(const Options &opts, std::uint64_t fallback)
{
    return opts.insts > 0 ? opts.insts : instsBudget(fallback);
}

/** The paper machine with the CLI's scaling choice and overrides. */
SimConfig
makeCfg(const Options &opts, std::uint32_t threads, bool decoupled,
        std::uint32_t l2_latency)
{
    SimConfig cfg = paperConfig(threads, decoupled, l2_latency,
                                opts.scaleQueues);
    std::string error;
    if (!applyOverrides(cfg, opts, error))
        MTDAE_FATAL("bad override: ", error);
    return cfg;
}

/**
 * Aggregate per-stage profile of the current experiment's sweeps,
 * summed across jobs. File-scope so the fifteen experiment builders
 * need no signature change to feed it; runExperiment() resets it
 * before dispatch and moves it onto the ResultSet afterwards.
 */
StageProfile g_profile;
bool g_profiled = false;

/**
 * Execute @p spec on the worker pool selected by --jobs, echoing each
 * job's label to @p err as it starts (unless --quiet). The returned
 * results are in grid order, so the experiment formatters below walk
 * them with the same nested loops that built the spec. Under
 * --profile every job collects its per-stage breakdown, summed into
 * g_profile; the result rows themselves are unaffected.
 */
std::vector<RunResult>
runSweep(SweepSpec &spec, const Options &opts, std::ostream &err)
{
    spec.setProfile(opts.profile);
    const JobRunner runner(opts.jobs, opts.warmStart);
    JobRunner::Progress on_start;
    if (!opts.quiet)
        on_start = [&err](const SimJob &job) {
            err << "  running " << job.label << "\n";
        };
    std::vector<RunResult> results = runner.run(spec, on_start);
    if (opts.profile) {
        for (const RunResult &r : results) {
            if (!r.profile.enabled)
                continue;
            for (std::size_t s = 0; s < kNumStages; ++s)
                g_profile.ns[s] += r.profile.ns[s];
            g_profile.totalNs += r.profile.totalNs;
            g_profile.cycles += r.profile.cycles;
            g_profile.enabled = true;
            g_profiled = true;
        }
    }
    return results;
}

std::vector<std::uint32_t>
sweepOr(const std::vector<std::uint32_t> &user,
        std::vector<std::uint32_t> fallback)
{
    return user.empty() ? fallback : user;
}

// --- Experiment implementations ---------------------------------------

ResultSet
expRun(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "run";
    rs.header = {"benchmark", "threads",     "decoupled", "l2_latency",
                 "cycles",    "insts",       "ipc",       "perceived_fp",
                 "perceived_int", "perceived_all", "load_miss",
                 "store_miss", "delayed_hit", "bus_util",  "mispredict",
                 "ap_useful", "ep_useful",   "cycles_skipped",
                 "skip_events"};
    const std::uint64_t insts = budget(opts, 300000);
    std::vector<std::string> benches = opts.benchmarks;
    if (benches.empty())
        benches = {"suite-mix"};
    const auto threads = sweepOr(opts.threads, {1});
    const auto lats = sweepOr(opts.latencies, {16});
    // The DSL workload is compiled once here so a bad kernel file
    // fails before any job is queued (runCli reports the DslError).
    std::string dsl_text;
    dsl::ParamOverrides dsl_params;
    if (std::find(benches.begin(), benches.end(), "dsl") !=
        benches.end()) {
        dsl_text = dsl::readKernelFile(opts.kernelFile);
        dsl_params = singleKernelOverrides(opts);
        (void)dsl::compileKernel(dsl_text, dsl_params);
    }
    SweepSpec spec;
    for (const auto &bench : benches) {
        for (const std::uint32_t n : threads) {
            for (const std::uint32_t lat : lats) {
                const SimConfig cfg = makeCfg(opts, n, true, lat);
                const std::string label = bench + " " +
                                          std::to_string(n) + "T L2=" +
                                          std::to_string(lat);
                if (bench == "suite-mix")
                    spec.addSuiteMix(cfg, insts * n, label);
                else if (bench == "dsl")
                    spec.addDsl(cfg, dsl_text, dsl_params, insts * n,
                                label);
                else
                    spec.addBenchmark(cfg, bench, insts * n, label);
            }
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto &bench : benches) {
        for (std::size_t i = 0; i < threads.size() * lats.size(); ++i) {
            const SimConfig &cfg = spec.jobs()[k].cfg;
            const RunResult &r = results[k];
            ++k;
            rs.rows.push_back(
                {bench, std::to_string(cfg.numThreads),
                 cfg.decoupled ? "1" : "0",
                 std::to_string(cfg.l2Latency),
                 std::to_string(r.cycles), std::to_string(r.insts),
                 fmt(r.ipc), fmt(r.perceivedFp), fmt(r.perceivedInt),
                 fmt(r.perceivedAll), fmt(r.loadMissRatio),
                 fmt(r.storeMissRatio), fmt(r.mergedRatio),
                 fmt(r.busUtilization), fmt(r.mispredictRate),
                 fmt(r.ap.fraction(SlotUse::Useful)),
                 fmt(r.ep.fraction(SlotUse::Useful)),
                 std::to_string(r.cyclesSkipped),
                 std::to_string(r.skipEvents)});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expFig1(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "fig1";
    rs.header = {"benchmark",   "l2_latency", "ipc",
                 "ipc_loss_pct", "perceived_fp", "perceived_int",
                 "load_miss",   "store_miss", "delayed_hit"};
    const std::uint64_t insts = budget(opts, 250000);
    const auto benches =
        opts.benchmarks.empty() ? specFp95Names() : opts.benchmarks;
    const auto lats = sweepOr(opts.latencies, paperLatencies());
    SweepSpec spec;
    for (const auto &bench : benches)
        for (const std::uint32_t lat : lats)
            spec.addBenchmark(makeCfg(opts, 1, true, lat), bench, insts,
                              bench + " L2=" + std::to_string(lat));
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto &bench : benches) {
        double base_ipc = 0.0;
        for (const std::uint32_t lat : lats) {
            const RunResult &r = results.at(k++);
            if (base_ipc == 0.0)
                base_ipc = r.ipc;
            const double loss =
                base_ipc > 0 ? 100.0 * (1.0 - r.ipc / base_ipc) : 0.0;
            rs.rows.push_back({bench, std::to_string(lat), fmt(r.ipc),
                               fmt(loss, 2), fmt(r.perceivedFp, 2),
                               fmt(r.perceivedInt, 2),
                               fmt(r.loadMissRatio),
                               fmt(r.storeMissRatio),
                               fmt(r.mergedRatio)});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expFig3(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "fig3";
    rs.header = {"threads", "ipc",  "unit", "useful", "wait_mem",
                 "wait_fu", "idle", "other"};
    const std::uint64_t insts = budget(opts, 300000);
    const auto threads = sweepOr(opts.threads, {1, 2, 3, 4, 5, 6});
    const std::uint32_t lat =
        opts.latencies.empty() ? 16 : opts.latencies.front();
    SweepSpec spec;
    for (const std::uint32_t n : threads)
        spec.addSuiteMix(makeCfg(opts, n, true, lat), insts * n,
                         std::to_string(n) + "T suite mix");
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t n : threads) {
        const RunResult &r = results.at(k++);
        for (const bool is_ap : {true, false}) {
            const SlotBreakdown &bd = is_ap ? r.ap : r.ep;
            rs.rows.push_back({std::to_string(n), fmt(r.ipc),
                               is_ap ? "AP" : "EP",
                               fmt(bd.fraction(SlotUse::Useful)),
                               fmt(bd.fraction(SlotUse::WaitMem)),
                               fmt(bd.fraction(SlotUse::WaitFu)),
                               fmt(bd.fraction(SlotUse::Idle)),
                               fmt(bd.fraction(SlotUse::Other))});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expFig4(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "fig4";
    rs.header = {"threads",       "decoupled", "l2_latency",
                 "ipc",           "ipc_loss_pct", "perceived_all"};
    const std::uint64_t insts = budget(opts, 300000);
    const auto threads = sweepOr(opts.threads, {1, 2, 3, 4});
    const auto lats = sweepOr(opts.latencies, paperLatencies());
    SweepSpec spec;
    for (const std::uint32_t n : threads)
        for (const bool dec : {true, false})
            for (const std::uint32_t lat : lats)
                spec.addSuiteMix(makeCfg(opts, n, dec, lat), insts * n,
                                 std::to_string(n) + "T " +
                                     (dec ? "decoupled"
                                          : "non-decoupled") +
                                     " L2=" + std::to_string(lat));
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t n : threads) {
        for (const bool dec : {true, false}) {
            double base_ipc = 0.0;
            for (const std::uint32_t lat : lats) {
                const RunResult &r = results.at(k++);
                if (base_ipc == 0.0)
                    base_ipc = r.ipc;
                const double loss =
                    base_ipc > 0 ? 100.0 * (1.0 - r.ipc / base_ipc)
                                 : 0.0;
                rs.rows.push_back({std::to_string(n), dec ? "1" : "0",
                                   std::to_string(lat), fmt(r.ipc),
                                   fmt(loss, 2), fmt(r.perceivedAll, 2)});
            }
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expFig5(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "fig5";
    rs.header = {"l2_latency", "threads", "decoupled", "ipc",
                 "bus_util"};
    const std::uint64_t insts = budget(opts, 200000);
    // Default: the paper's two sweeps — L2=16 to 7T, L2=64 to 16T.
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>
        sweeps;
    if (opts.latencies.empty() && opts.threads.empty()) {
        sweeps.push_back({16, {1, 2, 3, 4, 5, 6, 7}});
        sweeps.push_back(
            {64, {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16}});
    } else {
        const auto lats = sweepOr(opts.latencies, {16, 64});
        const auto threads =
            sweepOr(opts.threads, {1, 2, 3, 4, 5, 6, 7, 8});
        for (const std::uint32_t lat : lats)
            sweeps.push_back({lat, threads});
    }
    SweepSpec spec;
    for (const auto &[lat, threads] : sweeps)
        for (const std::uint32_t n : threads)
            for (const bool dec : {true, false})
                spec.addSuiteMix(makeCfg(opts, n, dec, lat), insts * n,
                                 std::to_string(n) + "T " +
                                     (dec ? "decoupled"
                                          : "non-decoupled") +
                                     " L2=" + std::to_string(lat));
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto &[lat, threads] : sweeps) {
        for (const std::uint32_t n : threads) {
            for (const bool dec : {true, false}) {
                const RunResult &r = results.at(k++);
                rs.rows.push_back({std::to_string(lat),
                                   std::to_string(n), dec ? "1" : "0",
                                   fmt(r.ipc), fmt(r.busUtilization)});
            }
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expAblateWidth(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_width";
    rs.header = {"ap_units", "ep_units", "ipc", "ap_useful",
                 "ep_useful"};
    const std::uint64_t insts = budget(opts, 200000);
    const std::uint32_t n =
        opts.threads.empty() ? 4 : opts.threads.front();
    const std::uint32_t lat =
        opts.latencies.empty() ? 16 : opts.latencies.front();
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> splits =
        {{2, 6}, {3, 5}, {4, 4}, {5, 3}, {6, 2}};
    SweepSpec spec;
    for (const auto &[ap, ep] : splits) {
        SimConfig cfg = makeCfg(opts, n, true, lat);
        cfg.apUnits = ap;
        cfg.epUnits = ep;
        spec.addSuiteMix(cfg, insts * n,
                         std::to_string(ap) + "+" + std::to_string(ep) +
                             " units");
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto &[ap, ep] : splits) {
        const RunResult &r = results.at(k++);
        rs.rows.push_back({std::to_string(ap), std::to_string(ep),
                           fmt(r.ipc),
                           fmt(r.ap.fraction(SlotUse::Useful)),
                           fmt(r.ep.fraction(SlotUse::Useful))});
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expAblatePredictor(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_predictor";
    rs.header = {"predictor", "max_branches", "ipc", "mispredict",
                 "ap_idle"};
    const std::uint64_t insts = budget(opts, 200000);
    const std::uint32_t n =
        opts.threads.empty() ? 4 : opts.threads.front();
    const std::uint32_t lat =
        opts.latencies.empty() ? 16 : opts.latencies.front();
    SweepSpec spec;
    for (const auto kind : {SimConfig::PredictorKind::Bimodal,
                            SimConfig::PredictorKind::Gshare}) {
        for (const std::uint32_t depth : {1u, 4u, 16u}) {
            const char *name =
                kind == SimConfig::PredictorKind::Bimodal ? "bimodal"
                                                          : "gshare";
            SimConfig cfg = makeCfg(opts, n, true, lat);
            cfg.predictor = kind;
            cfg.maxUnresolvedBranches = depth;
            spec.addSuiteMix(cfg, insts * n,
                             std::string(name) + " depth " +
                                 std::to_string(depth));
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto kind : {SimConfig::PredictorKind::Bimodal,
                            SimConfig::PredictorKind::Gshare}) {
        for (const std::uint32_t depth : {1u, 4u, 16u}) {
            const char *name =
                kind == SimConfig::PredictorKind::Bimodal ? "bimodal"
                                                          : "gshare";
            const RunResult &r = results.at(k++);
            rs.rows.push_back({name, std::to_string(depth), fmt(r.ipc),
                               fmt(r.mispredictRate),
                               fmt(r.ap.fraction(SlotUse::Idle))});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expAblateMshrs(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_mshrs";
    rs.header = {"mshrs", "threads", "ipc", "bus_util"};
    const std::uint64_t insts = budget(opts, 120000);
    const std::uint32_t lat =
        opts.latencies.empty() ? 64 : opts.latencies.front();
    const auto threads = sweepOr(opts.threads, {1, 4});
    SweepSpec spec;
    for (const std::uint32_t m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (const std::uint32_t n : threads) {
            SimConfig cfg = makeCfg(opts, n, true, lat);
            cfg.mshrs = m;
            spec.addSuiteMix(cfg, insts * n,
                             std::to_string(m) + " MSHRs " +
                                 std::to_string(n) + "T");
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (const std::uint32_t n : threads) {
            const RunResult &r = results.at(k++);
            rs.rows.push_back({std::to_string(m), std::to_string(n),
                               fmt(r.ipc), fmt(r.busUtilization)});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expAblatePorts(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_ports";
    rs.header = {"ports", "threads", "ipc"};
    const std::uint64_t insts = budget(opts, 120000);
    const std::uint32_t lat =
        opts.latencies.empty() ? 64 : opts.latencies.front();
    const auto threads = sweepOr(opts.threads, {1, 4});
    SweepSpec spec;
    for (const std::uint32_t p : {1u, 2u, 4u, 8u}) {
        for (const std::uint32_t n : threads) {
            SimConfig cfg = makeCfg(opts, n, true, lat);
            cfg.l1Ports = p;
            spec.addSuiteMix(cfg, insts * n,
                             std::to_string(p) + " ports " +
                                 std::to_string(n) + "T");
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t p : {1u, 2u, 4u, 8u}) {
        for (const std::uint32_t n : threads) {
            const RunResult &r = results.at(k++);
            rs.rows.push_back(
                {std::to_string(p), std::to_string(n), fmt(r.ipc)});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expAblateIq(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_iq";
    rs.header = {"iq_entries", "threads", "ipc", "perceived"};
    const std::uint64_t insts = budget(opts, 120000);
    const std::uint32_t lat =
        opts.latencies.empty() ? 64 : opts.latencies.front();
    const auto threads = sweepOr(opts.threads, {1, 4});
    SweepSpec spec;
    for (const std::uint32_t depth :
         {1u, 2u, 4u, 8u, 16u, 32u, 48u, 96u, 192u, 384u}) {
        for (const std::uint32_t n : threads) {
            SimConfig cfg = makeCfg(opts, n, true, lat);
            cfg.iqEntries = depth;
            spec.addSuiteMix(cfg, insts * n,
                             "IQ " + std::to_string(depth) + " " +
                                 std::to_string(n) + "T");
        }
    }
    // iq_entries = 0 marks the non-decoupled reference machine.
    for (const std::uint32_t n : threads)
        spec.addSuiteMix(makeCfg(opts, n, false, lat), insts * n,
                         "non-decoupled " + std::to_string(n) + "T");
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t depth :
         {1u, 2u, 4u, 8u, 16u, 32u, 48u, 96u, 192u, 384u}) {
        for (const std::uint32_t n : threads) {
            const RunResult &r = results.at(k++);
            rs.rows.push_back({std::to_string(depth), std::to_string(n),
                               fmt(r.ipc), fmt(r.perceivedAll)});
        }
    }
    for (const std::uint32_t n : threads) {
        const RunResult &r = results.at(k++);
        rs.rows.push_back({"0", std::to_string(n), fmt(r.ipc),
                           fmt(r.perceivedAll)});
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

ResultSet
expAblateL2(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_l2";
    rs.header = {"l2_kb",    "threads",      "ipc",
                 "l1_miss",  "l2_miss",      "avg_fill",
                 "dram_row_hit", "dram_bus_util"};
    const std::uint64_t insts = budget(opts, 120000);
    const std::uint32_t lat =
        opts.latencies.empty() ? 16 : opts.latencies.front();
    const auto threads = sweepOr(opts.threads, {1, 4});
    const std::vector<std::uint32_t> sizes_kb = {64,  128,  256,
                                                 512, 1024, 2048};
    SweepSpec spec;
    for (const std::uint32_t kb : sizes_kb) {
        for (const std::uint32_t n : threads) {
            // Real backend by default, but user overrides still win
            // (--perfect-l2 turns the sweep into its reference run);
            // only the swept knob itself is pinned afterwards.
            SimConfig cfg = paperConfig(n, true, lat, opts.scaleQueues);
            cfg.perfectL2 = false;
            std::string error;
            if (!applyOverrides(cfg, opts, error))
                MTDAE_FATAL("bad override: ", error);
            cfg.l2Bytes = kb * 1024;
            spec.addSuiteMix(cfg, insts * n,
                             "L2 " + std::to_string(kb) + "KB " +
                                 std::to_string(n) + "T");
        }
    }
    // l2_kb = 0 marks the paper's perfect-L2 reference machine: the
    // gap against it is the cost of a real memory system.
    for (const std::uint32_t n : threads)
        spec.addSuiteMix(makeCfg(opts, n, true, lat), insts * n,
                         "perfect L2 " + std::to_string(n) + "T");
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t kb : sizes_kb) {
        for (const std::uint32_t n : threads) {
            const RunResult &r = results.at(k++);
            rs.rows.push_back({std::to_string(kb), std::to_string(n),
                               fmt(r.ipc), fmt(r.missRatio),
                               fmt(r.l2MissRatio),
                               fmt(r.avgFillLatency, 1),
                               fmt(r.dramRowHitRatio),
                               fmt(r.dramBusUtilization)});
        }
    }
    for (const std::uint32_t n : threads) {
        const RunResult &r = results.at(k++);
        rs.rows.push_back({"0", std::to_string(n), fmt(r.ipc),
                           fmt(r.missRatio), fmt(r.l2MissRatio),
                           fmt(r.avgFillLatency, 1),
                           fmt(r.dramRowHitRatio),
                           fmt(r.dramBusUtilization)});
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

/**
 * The fig4 latency-tolerance sweep against the real backend: instead of
 * dialling an abstract L2 latency, successive points slow the *DRAM*
 * down (CAS/RAS/precharge scaled by dram_scale), and the tolerated
 * latency is the emergent avg_fill the machine actually experienced.
 * Structures scale with the backend slowdown exactly as the paper
 * scales them with L2 latency (factor dram_scale, unless --no-scale).
 */
ResultSet
expFig4Dram(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "fig4_dram";
    rs.header = {"threads",    "decoupled",    "dram_scale",
                 "ipc",        "ipc_loss_pct", "avg_fill",
                 "perceived_all", "l2_miss",   "dram_bus_util"};
    const std::uint64_t insts = budget(opts, 300000);
    const auto threads = sweepOr(opts.threads, {1, 2, 3, 4});
    // --latencies overrides the DRAM slowdown factors, not L2 cycles.
    const auto scales = sweepOr(opts.latencies, {1, 2, 4, 8});
    SweepSpec spec;
    for (const std::uint32_t n : threads) {
        for (const bool dec : {true, false}) {
            for (const std::uint32_t s : scales) {
                SimConfig cfg =
                    paperConfig(n, dec, 16 * s, opts.scaleQueues);
                cfg.l2Latency = 16;  // the real L2 hit cost stays put
                cfg.perfectL2 = false;
                std::string error;
                if (!applyOverrides(cfg, opts, error))
                    MTDAE_FATAL("bad override: ", error);
                // The swept slowdown scales the (possibly overridden)
                // base DRAM timings last.
                cfg.dramCas *= s;
                cfg.dramRas *= s;
                cfg.dramPrecharge *= s;
                spec.addSuiteMix(cfg, insts * n,
                                 std::to_string(n) + "T " +
                                     (dec ? "decoupled"
                                          : "non-decoupled") +
                                     " DRAMx" + std::to_string(s));
            }
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t n : threads) {
        for (const bool dec : {true, false}) {
            double base_ipc = 0.0;
            for (const std::uint32_t s : scales) {
                const RunResult &r = results.at(k++);
                if (base_ipc == 0.0)
                    base_ipc = r.ipc;
                const double loss =
                    base_ipc > 0 ? 100.0 * (1.0 - r.ipc / base_ipc)
                                 : 0.0;
                rs.rows.push_back(
                    {std::to_string(n), dec ? "1" : "0",
                     std::to_string(s), fmt(r.ipc), fmt(loss, 2),
                     fmt(r.avgFillLatency, 1), fmt(r.perceivedAll, 2),
                     fmt(r.l2MissRatio), fmt(r.dramBusUtilization)});
            }
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

/**
 * The thread-arbitration policy grid: every fetch policy crossed with
 * every dispatch/issue policy, at each swept thread count. The
 * icount/round-robin row is the paper's machine; the spread across the
 * other rows is what the scheduler choice is worth. Policies matter
 * most when threads compete for long-latency memory, so the default
 * point is the L2=64 machine.
 */
ResultSet
expAblatePolicy(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_policy";
    rs.header = {"fetch_policy", "issue_policy", "threads",
                 "ipc",          "perceived_all", "mispredict",
                 "ap_useful",    "ep_useful"};
    const std::uint64_t insts = budget(opts, 120000);
    const std::uint32_t lat =
        opts.latencies.empty() ? 64 : opts.latencies.front();
    const auto threads = sweepOr(opts.threads, {1, 4});
    SweepSpec spec;
    for (const PolicyKind fp : fetchPolicies()) {
        for (const PolicyKind ip : issuePolicies()) {
            for (const std::uint32_t n : threads) {
                SimConfig cfg = makeCfg(opts, n, true, lat);
                // The policy pair is the swept knob: it wins over any
                // --fetch-policy/--issue-policy override.
                cfg.fetchPolicy = fp;
                cfg.issuePolicy = ip;
                spec.addSuiteMix(cfg, insts * n,
                                 std::string(policyName(fp)) + "/" +
                                     policyName(ip) + " " +
                                     std::to_string(n) + "T");
            }
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const PolicyKind fp : fetchPolicies()) {
        for (const PolicyKind ip : issuePolicies()) {
            for (const std::uint32_t n : threads) {
                const RunResult &r = results.at(k++);
                rs.rows.push_back(
                    {policyName(fp), policyName(ip), std::to_string(n),
                     fmt(r.ipc), fmt(r.perceivedAll, 2),
                     fmt(r.mispredictRate),
                     fmt(r.ap.fraction(SlotUse::Useful)),
                     fmt(r.ep.fraction(SlotUse::Useful))});
            }
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

/**
 * The fetch-gating grid: the STALL/FLUSH gating policies against the
 * plain ICOUNT baseline, crossed with L2 size and thread count, on the
 * finite L2 + DRAM backend — the regime where miss pressure is real
 * and gating the AP's runahead has something to trade. `--latencies`
 * overrides the swept L2 sizes (in KiB), mirroring fig4-dram's reuse
 * of the flag for its swept axis.
 */
ResultSet
expAblateGating(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_gating";
    rs.header = {"fetch_policy", "l2_kb",    "threads",
                 "ipc",          "perceived_all", "l1_miss",
                 "l2_miss",      "avg_fill"};
    const std::uint64_t insts = budget(opts, 120000);
    const std::vector<PolicyKind> gating = {
        PolicyKind::Icount, PolicyKind::Stall, PolicyKind::Flush};
    const auto sizes_kb = sweepOr(opts.latencies, {64, 256, 1024});
    const auto threads = sweepOr(opts.threads, {2, 4});
    SweepSpec spec;
    for (const PolicyKind fp : gating) {
        for (const std::uint32_t kb : sizes_kb) {
            for (const std::uint32_t n : threads) {
                // Real backend by default; user overrides still win,
                // then the swept knobs are pinned (the ablate-l2
                // pattern).
                SimConfig cfg = paperConfig(n, true, 16,
                                            opts.scaleQueues);
                cfg.perfectL2 = false;
                std::string error;
                if (!applyOverrides(cfg, opts, error))
                    MTDAE_FATAL("bad override: ", error);
                cfg.l2Bytes = kb * 1024;
                cfg.fetchPolicy = fp;
                spec.addSuiteMix(cfg, insts * n,
                                 std::string(policyName(fp)) + " L2 " +
                                     std::to_string(kb) + "KB " +
                                     std::to_string(n) + "T");
            }
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const PolicyKind fp : gating) {
        for (const std::uint32_t kb : sizes_kb) {
            for (const std::uint32_t n : threads) {
                const RunResult &r = results.at(k++);
                rs.rows.push_back({policyName(fp), std::to_string(kb),
                                   std::to_string(n), fmt(r.ipc),
                                   fmt(r.perceivedAll, 2),
                                   fmt(r.missRatio), fmt(r.l2MissRatio),
                                   fmt(r.avgFillLatency, 1)});
            }
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

/**
 * The QoS grid: thread-weight vectors crossed with arbitration-policy
 * pairs and L2 size on the finite L2 + DRAM backend, reporting the
 * fairness metrics (weighted speedup, harmonic-mean and max-min
 * fairness, per-thread slowdowns) alongside raw throughput — the
 * evidence for whether a weighted or adaptive policy actually converts
 * priority into proportional progress. `--latencies` overrides the
 * swept L2 sizes in KiB (the ablate-gating convention); `--threads`
 * overrides the thread count (first value only; the weight vectors
 * tile across it).
 */
ResultSet
expAblateQos(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_qos";
    rs.header = {"weights",    "fetch_policy", "issue_policy",
                 "l2_kb",      "ipc",          "wspeedup",
                 "fair_hmean", "fair_maxmin",  "slow_t0",
                 "slow_max"};
    const std::uint64_t insts = budget(opts, 60000);
    const std::uint32_t n =
        opts.threads.empty() ? 4 : opts.threads.front();
    const std::vector<std::vector<std::uint32_t>> weight_vectors = {
        {1, 1}, {4, 1}, {16, 1}};
    const std::vector<std::pair<PolicyKind, PolicyKind>> pairs = {
        {PolicyKind::Icount, PolicyKind::RoundRobin},
        {PolicyKind::Weighted, PolicyKind::Weighted},
        {PolicyKind::Adaptive, PolicyKind::RoundRobin},
        {PolicyKind::Adaptive, PolicyKind::Weighted},
    };
    const auto sizes_kb = sweepOr(opts.latencies, {256, 1024});
    // ':'-separated so the label survives the CSV untouched.
    const auto wlabel = [](const std::vector<std::uint32_t> &ws) {
        std::string s;
        for (std::size_t i = 0; i < ws.size(); ++i) {
            if (i)
                s += ':';
            s += std::to_string(ws[i]);
        }
        return s;
    };
    SweepSpec spec;
    for (const auto &ws : weight_vectors) {
        for (const auto &[fp, ip] : pairs) {
            for (const std::uint32_t kb : sizes_kb) {
                SimConfig cfg = paperConfig(n, true, 16,
                                            opts.scaleQueues);
                cfg.perfectL2 = false;
                std::string error;
                if (!applyOverrides(cfg, opts, error))
                    MTDAE_FATAL("bad override: ", error);
                cfg.l2Bytes = kb * 1024;
                cfg.fetchPolicy = fp;
                cfg.issuePolicy = ip;
                cfg.threadWeights = ws;
                spec.addSuiteMix(cfg, insts * n,
                                 wlabel(ws) + " " +
                                     std::string(policyName(fp)) + "/" +
                                     policyName(ip) + " L2 " +
                                     std::to_string(kb) + "KB");
            }
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto &ws : weight_vectors) {
        for (const auto &[fp, ip] : pairs) {
            for (const std::uint32_t kb : sizes_kb) {
                const RunResult &r = results.at(k++);
                double slow_max = 0.0;
                for (const double s : r.threadSlowdown)
                    if (s > slow_max)
                        slow_max = s;
                rs.rows.push_back(
                    {wlabel(ws), policyName(fp), policyName(ip),
                     std::to_string(kb), fmt(r.ipc),
                     fmt(r.weightedSpeedup), fmt(r.fairnessHmean),
                     fmt(r.fairnessMaxMin),
                     fmt(r.threadSlowdown.empty()
                             ? 0.0
                             : r.threadSlowdown.front()),
                     fmt(slow_max)});
            }
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

/**
 * The warm-start fan-out grid: per thread count, three points that
 * differ only in measure budget, all on one explicit seed stream so
 * the group shares a warmup prefix (SimJob::prefixKey()). With
 * --warm-start=1 (the default) each group simulates its warmup once
 * and fans the checkpoint out; with --warm-start=0 every point runs
 * cold. The rows are byte-identical either way — that contract is
 * what scripts/bench_checkpoint.sh times and verifies.
 */
ResultSet
expAblateCheckpoint(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_checkpoint";
    rs.header = {"threads", "measure_x", "ipc", "cycles", "insts"};
    const std::uint64_t insts = budget(opts, 60000);
    const std::uint32_t lat =
        opts.latencies.empty() ? 16 : opts.latencies.front();
    const auto threads = sweepOr(opts.threads, {1, 2, 4});
    const std::vector<std::uint64_t> mults = {1, 2, 4};
    SweepSpec spec;
    std::uint64_t stream = 0;
    for (const std::uint32_t n : threads) {
        const SimConfig cfg = makeCfg(opts, n, true, lat);
        for (const std::uint64_t m : mults)
            spec.addSuiteMix(cfg, insts * n * m,
                             std::to_string(n) + "T x" +
                                 std::to_string(m),
                             stream);
        ++stream;
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const std::uint32_t n : threads) {
        for (const std::uint64_t m : mults) {
            const RunResult &r = results.at(k++);
            rs.rows.push_back({std::to_string(n), std::to_string(m),
                               fmt(r.ipc), std::to_string(r.cycles),
                               std::to_string(r.insts)});
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

/**
 * ablate-dsl: a DSL kernel file as a first-class sweep axis. Every
 * comma-listed --kernel-param becomes a grid dimension (crossed in flag
 * order, first flag outermost), swept against the thread counts; the
 * kernel is recompiled per point with that point's param values, so the
 * text file plays the role the ten C++ benchmark models play in the
 * figure sweeps.
 */
ResultSet
expAblateDsl(const Options &opts, std::ostream &err)
{
    ResultSet rs;
    rs.name = "ablate_dsl";
    const std::string text = dsl::readKernelFile(opts.kernelFile);
    const std::string kname = dsl::compileKernel(text).name;
    const auto axes = kernelAxes(opts);
    const auto threads = sweepOr(opts.threads, {1, 4});
    const std::uint32_t lat =
        opts.latencies.empty() ? 16 : opts.latencies.front();
    const std::uint64_t insts = budget(opts, 150000);

    rs.header = {"kernel"};
    for (const auto &axis : axes)
        rs.header.push_back(axis.name);
    for (const char *h : {"threads", "l2_latency", "ipc",
                          "perceived_fp", "perceived_int", "load_miss",
                          "bus_util", "cycles", "insts"})
        rs.header.push_back(h);

    // The full cross product of the param axes, first flag outermost:
    // the row order is the nested-loop order, like every other sweep.
    std::vector<std::vector<double>> combos = {{}};
    for (const auto &axis : axes) {
        std::vector<std::vector<double>> next;
        for (const auto &combo : combos) {
            for (const double v : axis.values) {
                next.push_back(combo);
                next.back().push_back(v);
            }
        }
        combos = std::move(next);
    }

    SweepSpec spec;
    for (const auto &combo : combos) {
        dsl::ParamOverrides params;
        std::string point = kname;
        for (std::size_t i = 0; i < axes.size(); ++i) {
            params.emplace_back(axes[i].name, combo[i]);
            point += " " + axes[i].name + "=" + paramText(combo[i]);
        }
        for (const std::uint32_t n : threads) {
            const SimConfig cfg = makeCfg(opts, n, true, lat);
            spec.addDsl(cfg, text, params, insts * n,
                        point + " " + std::to_string(n) + "T");
        }
    }
    const auto results = runSweep(spec, opts, err);
    std::size_t k = 0;
    for (const auto &combo : combos) {
        for (const std::uint32_t n : threads) {
            const RunResult &r = results.at(k++);
            std::vector<std::string> row = {kname};
            for (const double v : combo)
                row.push_back(paramText(v));
            const std::string tail[] = {
                std::to_string(n), std::to_string(lat), fmt(r.ipc),
                fmt(r.perceivedFp), fmt(r.perceivedInt),
                fmt(r.loadMissRatio), fmt(r.busUtilization),
                std::to_string(r.cycles), std::to_string(r.insts)};
            for (const std::string &cell : tail)
                row.push_back(cell);
            rs.rows.push_back(std::move(row));
        }
    }
    MTDAE_ASSERT(k == results.size(),
                 "row formatter out of sync with the sweep grid");
    return rs;
}

using ExperimentFn = ResultSet (*)(const Options &, std::ostream &);

struct Entry
{
    Experiment info;
    ExperimentFn fn;
};

const std::vector<Entry> &
registry()
{
    static const std::vector<Entry> entries = {
        {{"run", "single configuration run (suite mix or --bench=...)"},
         expRun},
        {{"fig1", "latency hiding, 1T decoupled, per-benchmark L2 sweep"},
         expFig1},
        {{"fig3", "AP/EP issue-slot breakdown vs. hardware contexts"},
         expFig3},
        {{"fig4", "latency tolerance of 1-4T (non-)decoupled machines"},
         expFig4},
        {{"fig5", "IPC vs. contexts at L2=16/64 with bus utilisation"},
         expFig5},
        {{"fig4-dram",
          "latency tolerance against the finite L2 + DRAM backend"},
         expFig4Dram},
        {{"ablate-width", "AP/EP issue-width split at total width 8"},
         expAblateWidth},
        {{"ablate-predictor",
          "bimodal vs. gshare and speculation depth"},
         expAblatePredictor},
        {{"ablate-mshrs", "MSHR count sweep (lockup-free-ness)"},
         expAblateMshrs},
        {{"ablate-ports", "L1 data-cache port sweep"}, expAblatePorts},
        {{"ablate-iq", "EP instruction-queue depth sweep"}, expAblateIq},
        {{"ablate-l2", "L2 size sweep on the DRAM backend"},
         expAblateL2},
        {{"ablate-policy",
          "fetch x issue thread-arbitration policy grid"},
         expAblatePolicy},
        {{"ablate-gating",
          "fetch gating (stall/flush) x L2 size on the DRAM backend"},
         expAblateGating},
        {{"ablate-qos",
          "thread-weight x policy x L2 fairness grid (QoS metrics)"},
         expAblateQos},
        {{"ablate-checkpoint",
          "warm-start fan-out grid (shared warmup checkpoints)"},
         expAblateCheckpoint},
        {{"ablate-dsl",
          "DSL kernel-file param grid (--kernel-file, --kernel-param)"},
         expAblateDsl},
    };
    return entries;
}

/** mkdir -p: create every component of @p path; true when it exists. */
bool
makeDirs(const std::string &path)
{
    std::string partial;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial.push_back(path[i]);
            continue;
        }
        if (!partial.empty() && partial != ".")
            ::mkdir(partial.c_str(), 0755);
        if (i < path.size())
            partial.push_back('/');
    }
    struct ::stat st = {};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    (void)std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && end != s.c_str();
}

} // namespace

bool
applyOverride(SimConfig &cfg, const std::string &key,
              const std::string &value, std::string &error)
{
    const auto it = knobs().find(key);
    if (it == knobs().end()) {
        error = "unknown config key '--" + key + "'";
        return false;
    }
    if (!it->second.set(cfg, value)) {
        error = "bad value '" + value + "' for --" + key;
        return false;
    }
    return true;
}

bool
applyOverrides(SimConfig &cfg, const Options &opts, std::string &error)
{
    for (const auto &[key, value] : opts.overrides)
        if (!applyOverride(cfg, key, value, error))
            return false;
    return true;
}

const std::vector<std::string> &
overrideKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> k;
        for (const auto &[key, knob] : knobs())
            k.push_back(key);
        return k;
    }();
    return keys;
}

bool
parseArgs(const std::vector<std::string> &args, Options &opts,
          std::string &error)
{
    SimConfig scratch;  // overrides are validated at parse time
    for (const std::string &a : args) {
        if (a == "--help" || a == "-h") {
            opts.experiment = "help";
            continue;
        }
        if (a.rfind("--", 0) != 0) {
            if (opts.experiment.empty()) {
                opts.experiment = a;
                continue;
            }
            error = "unexpected argument '" + a + "'";
            return false;
        }
        const std::string flag = a.substr(2);
        const auto eq = flag.find('=');
        const std::string key = flag.substr(0, eq);
        const bool has_value = eq != std::string::npos;
        const std::string value =
            has_value ? flag.substr(eq + 1) : std::string();

        if (key == "json" && !has_value) {
            opts.format = Options::Format::Json;
        } else if (key == "perfect-l2" && !has_value) {
            // Bare escape hatch: --perfect-l2 == --perfect-l2=true.
            opts.overrides.emplace_back("perfect-l2", "1");
        } else if (key == "csv" && !has_value) {
            opts.format = Options::Format::Csv;
        } else if (key == "quiet" && !has_value) {
            opts.quiet = true;
        } else if (key == "no-scale" && !has_value) {
            opts.scaleQueues = false;
        } else if (key == "format") {
            if (value == "csv")
                opts.format = Options::Format::Csv;
            else if (value == "json")
                opts.format = Options::Format::Json;
            else {
                error = "bad --format '" + value + "' (csv or json)";
                return false;
            }
        } else if (key == "out") {
            if (value.empty()) {
                error = "--out needs a directory";
                return false;
            }
            opts.outDir = value;
        } else if (key == "insts") {
            if (!parseU64(value, opts.insts) || opts.insts == 0) {
                error = "bad --insts '" + value + "'";
                return false;
            }
        } else if (key == "bench") {
            opts.benchmarks = splitCommas(value);
            if (opts.benchmarks.empty()) {
                error = "--bench needs a benchmark list";
                return false;
            }
        } else if (key == "kernel-file") {
            if (value.empty()) {
                error = "--kernel-file needs a path";
                return false;
            }
            opts.kernelFile = value;
        } else if (key == "kernel-param") {
            const auto peq = value.find('=');
            if (peq == std::string::npos || peq == 0 ||
                peq + 1 == value.size()) {
                error = "bad --kernel-param '" + value +
                        "' (need NAME=VALUE)";
                return false;
            }
            opts.kernelParams.emplace_back(value.substr(0, peq),
                                           value.substr(peq + 1));
        } else if (key == "threads-list") {
            if (!parseU32List(value, opts.threads, error))
                return false;
        } else if (key == "latencies") {
            if (!parseU32List(value, opts.latencies, error))
                return false;
        } else if (key == "jobs") {
            if (!parseU32(value, opts.jobs) || opts.jobs == 0) {
                error = "bad --jobs '" + value +
                        "' (need a worker count >= 1)";
                return false;
            }
        } else if (key == "profile" && !has_value) {
            opts.profile = true;
        } else if (key == "warm-start") {
            if (!has_value) {
                opts.warmStart = true;
            } else if (!parseBool(value, opts.warmStart)) {
                error = "bad --warm-start '" + value + "'";
                return false;
            }
        } else if (has_value) {
            if (!applyOverride(scratch, key, value, error))
                return false;
            opts.overrides.emplace_back(key, value);
        } else {
            error = "unknown flag '" + a + "'";
            return false;
        }
    }
    return true;
}

const std::vector<Experiment> &
experiments()
{
    static const std::vector<Experiment> infos = [] {
        std::vector<Experiment> v;
        for (const auto &e : registry())
            v.push_back(e.info);
        return v;
    }();
    return infos;
}

bool
isExperiment(const std::string &name)
{
    for (const auto &e : registry())
        if (e.info.name == name)
            return true;
    return false;
}

ResultSet
runExperiment(const Options &opts, std::ostream &err)
{
    for (const auto &e : registry()) {
        if (e.info.name != opts.experiment)
            continue;
        g_profile.reset();
        g_profiled = false;
        ResultSet rs = e.fn(opts, err);
        rs.profile = g_profile;
        rs.profiled = g_profiled;
        return rs;
    }
    MTDAE_FATAL("unknown experiment '", opts.experiment, "'");
}

void
writeJson(const ResultSet &rs, std::ostream &os)
{
    os << "{\n  \"experiment\": \"" << jsonEscape(rs.name)
       << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rs.rows.size(); ++i) {
        os << "    {";
        const auto &row = rs.rows[i];
        for (std::size_t c = 0; c < rs.header.size() && c < row.size();
             ++c) {
            if (c)
                os << ", ";
            os << '"' << jsonEscape(rs.header[c]) << "\": ";
            if (looksNumeric(row[c]))
                os << row[c];
            else
                os << '"' << jsonEscape(row[c]) << '"';
        }
        os << (i + 1 < rs.rows.size() ? "},\n" : "}\n");
    }
    os << "  ]";
    // The profile block exists only under --profile, so default JSON
    // output is unchanged byte for byte.
    if (rs.profiled) {
        os << ",\n  \"profile\": {\n    \"cycles\": "
           << rs.profile.cycles << ",\n    \"total_ns\": "
           << rs.profile.totalNs << ",\n    \"stages_ns\": {";
        for (std::size_t s = 0; s < kNumStages; ++s) {
            if (s)
                os << ", ";
            os << '"' << stageName(Stage(s))
               << "\": " << rs.profile.ns[s];
        }
        os << "}\n  }";
    }
    os << "\n}\n";
}

void
printHelp(std::ostream &os)
{
    os << "usage: mtdae <experiment> [options] [--<config-key>=<value>]\n"
          "\n"
          "experiments:\n";
    for (const auto &e : experiments())
        os << "  " << e.name << std::string(18 - e.name.size(), ' ')
           << e.summary << "\n";
    os << "  list              print this experiment list\n"
          "  help              print this help\n"
          "\n"
          "options:\n"
          "  --insts=N         instructions to measure per run\n"
          "  --bench=A,B       benchmark subset (fig1/run); 'suite-mix'"
          " allowed for run\n"
          "  --kernel-file=F   kernel DSL file (docs/KERNEL_DSL.md)"
          " for\n"
          "                    --bench=dsl and ablate-dsl\n"
          "  --kernel-param=K=V  override a DSL param (repeatable);"
          " a comma-\n"
          "                    listed value is an ablate-dsl grid"
          " axis\n"
          "  --threads-list=L  override the swept thread counts\n"
          "  --latencies=L     override the swept L2 latencies\n"
          "                    (for fig4-dram: the DRAM slowdown"
          " factors;\n"
          "                    for ablate-gating: the L2 sizes in"
          " KiB)\n"
          "  --perfect-l2      force the paper's never-missing L2"
          " (default for\n"
          "                    every experiment except fig4-dram and"
          " ablate-l2)\n"
          "  --fetch-policy=P  thread fetch arbitration: icount"
          " (default),\n"
          "                    round-robin, brcount, misscount,"
          " weighted, the\n"
          "                    gating policies stall, flush (suspend"
          " fetch on\n"
          "                    an outstanding L1 load miss; flush also\n"
          "                    squashes the fetch buffer for replay),"
          " or\n"
          "                    adaptive (stall-style gating only past"
          " the\n"
          "                    trailing-window miss threshold)\n"
          "  --issue-policy=P  dispatch/issue arbitration: round-robin"
          " (default),\n"
          "                    icount, brcount, misscount, weighted, or"
          " split\n"
          "                    (per-unit: AP by misscount, EP by"
          " windowed\n"
          "                    IQ occupancy)\n"
          "  --thread-weights=W  comma-listed QoS priority weights,"
          " tiled\n"
          "                    across threads (default all 1; consumed"
          " by the\n"
          "                    weighted policies and fairness metrics)\n"
          "  --adaptive-threshold=T  adaptive gating engages once the\n"
          "                    64-cycle miss window reaches T*64"
          " (default 1)\n"
          "  --jobs=N          sweep worker threads (default: hardware"
          " concurrency);\n"
          "                    results are identical at any N\n"
          "  --warm-start[=B]  share warmup checkpoints between sweep"
          " points with\n"
          "                    identical prefixes (default: on);"
          " --warm-start=0\n"
          "                    re-simulates every warmup; results are\n"
          "                    byte-identical either way\n"
          "  --seed=S          base RNG seed; each sweep point derives"
          " its own\n"
          "                    deterministic seed from S and its grid"
          " position\n"
          "  --profile         collect the per-stage wall-clock"
          " breakdown of the\n"
          "                    simulator's cycle loop (reported on"
          " stderr and in\n"
          "                    the JSON 'profile' object; result rows"
          " unchanged)\n"
          "  --format=csv|json result encoding (also --csv / --json)\n"
          "  --out=DIR         result directory (default: results)\n"
          "  --no-scale        disable paper-style queue scaling with"
          " L2 latency\n"
          "  --quiet           suppress the stdout table\n"
          "\n"
          "config keys (applied to every swept machine):\n  ";
    std::size_t col = 2;
    for (const auto &key : overrideKeys()) {
        if (col + key.size() + 2 > 76) {
            os << "\n  ";
            col = 2;
        }
        os << "--" << key << " ";
        col += key.size() + 3;
    }
    os << "\n\nexamples:\n"
          "  mtdae fig1 --insts=50000\n"
          "  mtdae fig4 --jobs=8 --seed=42\n"
          "  mtdae fig4 --threads-list=1,4 --latencies=1,32 --json\n"
          "  mtdae fig4-dram --latencies=1,4 --dram-banks=4\n"
          "  mtdae ablate-l2 --threads-list=4 --json\n"
          "  mtdae ablate-policy --threads-list=1,4 --latencies=64\n"
          "  mtdae ablate-gating --threads-list=2,4 --latencies=64\n"
          "  mtdae ablate-qos --thread-weights=4,1"
          " --latencies=256\n"
          "  mtdae ablate-checkpoint --warmup-insts=20000"
          " --warm-start=1\n"
          "  mtdae fig5 --issue-policy=misscount --quiet\n"
          "  mtdae fig5 --fetch-policy=stall --issue-policy=split\n"
          "  mtdae run --bench=tomcatv --threads=4 --l2-latency=64\n"
          "  mtdae run --bench=dsl"
          " --kernel-file=examples/kernels/pointer_chase.mk\n"
          "  mtdae ablate-dsl"
          " --kernel-file=examples/kernels/pointer_chase.mk \\\n"
          "        --kernel-param=footprint=64K,4M"
          " --threads-list=1,4\n";
}

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    Options opts;
    std::string error;
    if (!parseArgs(args, opts, error)) {
        err << "mtdae: " << error << "\n"
            << "run 'mtdae help' for usage\n";
        return 2;
    }
    if (opts.experiment.empty()) {
        printHelp(err);
        return 2;
    }
    if (opts.experiment == "help") {
        printHelp(out);
        return 0;
    }
    if (opts.experiment == "list") {
        for (const auto &e : experiments())
            out << e.name << "\t" << e.summary << "\n";
        return 0;
    }
    if (!isExperiment(opts.experiment)) {
        err << "mtdae: unknown experiment '" << opts.experiment
            << "'\nrun 'mtdae list' for the experiment list\n";
        return 2;
    }
    if (opts.profile && !kProfileBuilt) {
        err << "mtdae: --profile needs the profiling instrumentation; "
               "rebuild with -DMTDAE_PROFILE=ON\n";
        return 2;
    }
    if (opts.experiment == "ablate-dsl" && opts.kernelFile.empty()) {
        err << "mtdae: ablate-dsl needs --kernel-file=PATH\n";
        return 2;
    }
    for (const auto &bench : opts.benchmarks) {
        const auto &names = specFp95Names();
        if (bench == "dsl") {
            // The DSL workload rides only on `run`, and needs a file.
            if (opts.experiment != "run") {
                err << "mtdae: --bench=dsl is only supported by the "
                       "run experiment\n";
                return 2;
            }
            if (opts.kernelFile.empty()) {
                err << "mtdae: --bench=dsl needs --kernel-file=PATH\n";
                return 2;
            }
            continue;
        }
        // Only `run` knows how to drive the suite-mix workload; the
        // figure sweeps need a concrete benchmark model.
        const bool mix_ok =
            bench == "suite-mix" && opts.experiment == "run";
        if (!mix_ok && std::find(names.begin(), names.end(), bench) ==
                           names.end()) {
            err << "mtdae: unknown benchmark '" << bench << "' (have: ";
            for (std::size_t i = 0; i < names.size(); ++i)
                err << (i ? ", " : "") << names[i];
            err << (opts.experiment == "run" ? ", suite-mix)\n" : ")\n");
            return 2;
        }
    }

    // Resolve the CSV directory before the (possibly long) run so a
    // bad --out fails fast instead of discarding the results.
    std::string dir;
    if (opts.format == Options::Format::Csv) {
        dir = opts.outDir.empty() ? resultsDir() : opts.outDir;
        if (!makeDirs(dir)) {
            err << "mtdae: cannot create output directory '" << dir
                << "'\n";
            return 2;
        }
    }

    ResultSet rs;
    try {
        rs = runExperiment(opts, err);
    } catch (const dsl::DslError &e) {
        // A kernel file that fails to read or compile is user input,
        // not a simulator fault: report the position and exit as a
        // usage error.
        err << "mtdae: ";
        if (e.line > 0) {
            // Positioned compile error: file:line:col: message.
            if (!opts.kernelFile.empty())
                err << opts.kernelFile << ":";
            err << e.what();
        } else {
            // Positionless (bad file, bad override): message only.
            err << e.message;
        }
        err << "\n";
        return 2;
    }

    if (!opts.quiet) {
        TextTable t;
        t.addRow(rs.header);
        for (const auto &row : rs.rows)
            t.addRow(row);
        // In JSON mode stdout must stay machine-parseable, so the
        // human-readable table joins the progress lines on stderr.
        std::ostream &tbl =
            opts.format == Options::Format::Json ? err : out;
        tbl << "\n== " << opts.experiment << " ==\n";
        t.print(tbl);
    }

    // The per-stage breakdown goes to stderr next to the progress
    // lines: stdout (JSON) and the CSV file stay byte-identical with
    // or without --profile.
    if (rs.profiled && !opts.quiet) {
        err << "profile: " << rs.profile.cycles << " cycles in "
            << rs.profile.totalNs << " ns\n";
        for (std::size_t s = 0; s < kNumStages; ++s) {
            const double pct =
                rs.profile.totalNs
                    ? 100.0 * double(rs.profile.ns[s]) /
                          double(rs.profile.totalNs)
                    : 0.0;
            err << "  " << stageName(Stage(s)) << ": "
                << rs.profile.ns[s] << " ns (" << fmt(pct, 1)
                << "%)\n";
        }
    }

    if (opts.format == Options::Format::Json) {
        writeJson(rs, out);
    } else {
        const std::string path = dir + "/" + rs.name + ".csv";
        CsvWriter csv(path);
        csv.row(rs.header);
        for (const auto &row : rs.rows)
            csv.row(row);
        err << "wrote " << path << "\n";
    }
    return 0;
}

} // namespace mtdae::cli
