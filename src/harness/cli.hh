/**
 * @file
 * The unified experiment CLI: subcommand registry, option parsing and
 * result emission behind the `mtdae` driver binary. Lives in the
 * harness so the argument-parsing and experiment-dispatch logic is unit
 * testable without spawning a process.
 */

#ifndef MTDAE_HARNESS_CLI_HH
#define MTDAE_HARNESS_CLI_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "core/profile.hh"

namespace mtdae::cli {

/** Parsed command line for one `mtdae <experiment> [--key=value]` run. */
struct Options
{
    /** Subcommand (experiment name, "list", or "help"). */
    std::string experiment;

    /** Output encoding for the result rows. */
    enum class Format : std::uint8_t { Csv, Json };
    Format format = Format::Csv;

    /** Result directory; empty means harness resultsDir(). */
    std::string outDir;

    /** Instruction budget override; 0 keeps the experiment default. */
    std::uint64_t insts = 0;

    /** Restrict fig1/run to these benchmarks (empty = all ten). */
    std::vector<std::string> benchmarks;

    /** Override the swept thread counts (empty = experiment default). */
    std::vector<std::uint32_t> threads;

    /** Override the swept L2 latencies (empty = experiment default).
     *  fig4-dram reinterprets these as DRAM slowdown factors. */
    std::vector<std::uint32_t> latencies;

    /** Disable the paper's §2 queue/register scaling with L2 latency. */
    bool scaleQueues = true;

    /**
     * Sweep worker threads (--jobs=N); 0 means the hardware default
     * (see defaultJobs() in harness/sweep.hh). Results are identical
     * at any worker count.
     */
    std::uint32_t jobs = 0;

    /**
     * Warm-start prefix sharing (--warm-start[=bool]): sweep points
     * with identical warmup prefixes fan out from one checkpoint
     * (JobRunner, docs/CHECKPOINT.md). Results are byte-identical
     * either way; --warm-start=0 forces every job to simulate its own
     * warmup, for timing comparisons.
     */
    bool warmStart = true;

    /**
     * Collect the per-stage wall-clock breakdown (--profile): every
     * swept job runs with Simulator::setProfiling(true) and the summed
     * breakdown is reported next to (never inside) the result rows, so
     * CSV output stays byte-identical with or without the flag.
     * Requires a build with the MTDAE_PROFILE CMake option (the
     * default); otherwise the driver exits with a usage error.
     */
    bool profile = false;

    /**
     * Kernel DSL file (--kernel-file): the workload for `run
     * --bench=dsl` and for the ablate-dsl experiment
     * (docs/KERNEL_DSL.md).
     */
    std::string kernelFile;

    /**
     * DSL param overrides (--kernel-param=NAME=VALUE, repeatable), in
     * flag order. ablate-dsl treats a comma-listed VALUE as a sweep
     * axis and crosses the axes; everywhere else a VALUE must be a
     * single number (with an optional binary K/M/G suffix).
     */
    std::vector<std::pair<std::string, std::string>> kernelParams;

    /** Suppress the human-readable table on stdout. */
    bool quiet = false;

    /** SimConfig overrides, applied in order to every swept config. */
    std::vector<std::pair<std::string, std::string>> overrides;
};

/**
 * Set @p key (CLI spelling, e.g. "iq-entries") to @p value on @p cfg.
 *
 * @return false with @p error set on an unknown key or a bad value.
 */
bool applyOverride(SimConfig &cfg, const std::string &key,
                   const std::string &value, std::string &error);

/** Apply every recorded override; fatal-free, returns false on error. */
bool applyOverrides(SimConfig &cfg, const Options &opts,
                    std::string &error);

/** The CLI override keys, for `--help` and the tests. */
const std::vector<std::string> &overrideKeys();

/**
 * Parse @p args (argv[1:]) into @p opts.
 *
 * @return false with @p error set on a malformed flag. Unknown
 *         experiment names parse fine and are rejected by runCli().
 */
bool parseArgs(const std::vector<std::string> &args, Options &opts,
               std::string &error);

/** One registered experiment subcommand. */
struct Experiment
{
    std::string name;     ///< Subcommand, e.g. "fig4".
    std::string summary;  ///< One-line description for `mtdae list`.
};

/** Registry of every experiment subcommand, in display order. */
const std::vector<Experiment> &experiments();

/** True when @p name names a registered experiment. */
bool isExperiment(const std::string &name);

/**
 * A result table in long format: one header, uniform rows. Every
 * experiment produces exactly one of these; the driver renders it as a
 * pretty table, a CSV file and/or JSON.
 */
struct ResultSet
{
    std::string name;  ///< Basename for the CSV file ("fig4").
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /**
     * Per-stage wall-clock breakdown summed over every job of the
     * sweep; only populated (profiled == true) under --profile. Kept
     * out of header/rows so the CSV encoding never changes shape.
     */
    StageProfile profile;
    bool profiled = false;
};

/**
 * Run experiment @p opts.experiment and return its rows.
 * Requires isExperiment(opts.experiment); fatal() otherwise.
 * Progress lines go to @p err unless opts.quiet.
 */
ResultSet runExperiment(const Options &opts, std::ostream &err);

/** Serialise @p rs as a JSON object {"experiment", "rows": [...]}. */
void writeJson(const ResultSet &rs, std::ostream &os);

/**
 * Full driver: parse, dispatch, emit. This is main() minus argv
 * plumbing, so the tests can cover the error paths.
 *
 * @return process exit code (0 ok, 2 usage error).
 */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

/** Print usage text. */
void printHelp(std::ostream &os);

} // namespace mtdae::cli

#endif // MTDAE_HARNESS_CLI_HH
