/**
 * @file
 * The finite, set-associative, write-back L2 cache between the
 * lockup-free L1 and the DRAM backend. It has its own pipelined ports,
 * its own MSHRs bounding outstanding DRAM fills, LRU replacement, and
 * it generates write-back traffic of its own when dirty victims leave.
 *
 * Like the L1, timing is analytic: an access computes its completion
 * cycle immediately from port, array, MSHR and DRAM reservations
 * (docs/MEMORY.md §3). Lines are installed in the tag array at miss
 * time with a readyAt timestamp; an access that finds a line whose fill
 * is still in flight is a *delayed hit* and completes when the fill
 * lands — the analytic equivalent of merging into an L2 MSHR.
 */

#ifndef MTDAE_MEMORY_L2_CACHE_HH
#define MTDAE_MEMORY_L2_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "memory/dram.hh"

namespace mtdae {

/**
 * L2 statistics. The miss ratio counts demand fills from the L1;
 * delayed hits (merged into an in-flight fill) count as hits, matching
 * the L1's lockup-free accounting.
 */
struct L2Stats
{
    RatioStat miss;                  ///< num = misses, den = L1 fills.
    std::uint64_t delayedHits = 0;   ///< Hits on still-in-flight fills.
    std::uint64_t writebacks = 0;    ///< Dirty L2 victims sent to DRAM.
    std::uint64_t wbAbsorbed = 0;    ///< L1 write-backs that hit the L2.
    std::uint64_t wbForwarded = 0;   ///< L1 write-backs missing the L2,
                                     ///< forwarded to DRAM unallocated.

    void
    reset()
    {
        miss.reset();
        delayedHits = 0;
        writebacks = 0;
        wbAbsorbed = 0;
        wbForwarded = 0;
    }
};

/**
 * The unified L2. Owned by MemorySystem; bypassed entirely when
 * SimConfig::perfectL2 is set.
 */
class L2Cache
{
  public:
    /** @param dram the backend; must outlive this cache */
    L2Cache(const SimConfig &cfg, Dram &dram);

    /**
     * Service an L1 fill request for @p line_addr.
     *
     * @param earliest cycle the request leaves the L1 (miss cycle)
     * @return the cycle the line is available at the L2's output,
     *         ready to cross the L1-L2 bus
     */
    Cycle read(std::uint64_t line_addr, Cycle earliest);

    /**
     * Absorb a dirty L1 victim. @p earliest is the cycle the line has
     * fully crossed the L1-L2 bus. Hits mark the L2 line dirty; misses
     * forward the line to DRAM as a write (no allocation — the L1 held
     * the only copy). Nothing waits on the result.
     */
    void writeback(std::uint64_t line_addr, Cycle earliest);

    /** Aggregate statistics. */
    const L2Stats &stats() const { return stats_; }

    /** Reset statistics (start of the measured interval). */
    void resetStats();

    /** Set index of a line address (for tests). */
    std::uint32_t setOf(std::uint64_t line_addr) const
    {
        return static_cast<std::uint32_t>(line_addr & setMask_);
    }

    /**
     * Earliest cycle strictly after @p now at which an L2 port or MSHR
     * reservation expires; kNoCycle when none is pending. Deliberately
     * does not scan the (large) tag array: per-line readyAt values are
     * analytic — only read by later accesses — and every in-flight fill
     * holds an MSHR reservation, so the MSHR scan bounds them.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Serialize tags, LRU, port/MSHR reservations and statistics. */
    void save(ByteWriter &w) const;

    /** Restore state saved by save(). */
    void restore(ByteReader &r);

  private:
    struct Way
    {
        std::uint64_t lineAddr = 0;  ///< Full line address (tag).
        bool valid = false;
        bool dirty = false;
        Cycle readyAt = 0;    ///< Fill completion; hits before this
                              ///< cycle are delayed hits.
        std::uint64_t lruTick = 0;  ///< Last-touch counter for LRU.
    };

    /** Earliest cycle a pipelined port accepts a request at @p t. */
    Cycle acquirePort(Cycle t);

    /** Earliest cycle an MSHR is free at @p t; reserve it to @p until
     *  by the caller updating the returned slot. */
    std::size_t earliestMshr() const;

    Way *lookup(std::uint64_t line_addr);
    Way &victimIn(std::uint32_t set);

    std::uint32_t assoc_;
    std::uint32_t latency_;
    std::uint64_t setMask_;

    std::vector<Way> ways_;          ///< sets * assoc, set-major.
    std::vector<Cycle> portFreeAt_;  ///< One slot per port.
    std::vector<Cycle> mshrFreeAt_;  ///< One slot per MSHR.
    std::uint64_t lruClock_ = 0;

    Dram &dram_;
    L2Stats stats_;
};

} // namespace mtdae

#endif // MTDAE_MEMORY_L2_CACHE_HH
