#include "memory/dram.hh"

#include "common/log.hh"

namespace mtdae {

Dram::Dram(const SimConfig &cfg)
    : linesPerRow_(cfg.dramRowBytes / cfg.l1LineBytes),
      cas_(cfg.dramCas),
      ras_(cfg.dramRas),
      precharge_(cfg.dramPrecharge),
      busCycles_(cfg.dramBusCycles),
      banks_(cfg.dramBanks)
{
    MTDAE_ASSERT(linesPerRow_ > 0,
                 "DRAM row must hold at least one cache line");
}

std::uint32_t
Dram::bankOf(std::uint64_t line_addr) const
{
    // Page interleaving: a whole row lives in one bank and consecutive
    // rows rotate across banks, so streaming accesses enjoy row-buffer
    // hits while independent streams land in different banks.
    return static_cast<std::uint32_t>((line_addr / linesPerRow_) %
                                      banks_.size());
}

std::uint64_t
Dram::rowOf(std::uint64_t line_addr) const
{
    return (line_addr / linesPerRow_) / banks_.size();
}

std::uint32_t
Dram::accessLatency(Bank &bank, std::uint64_t row)
{
    std::uint32_t lat;
    if (bank.rowOpen && bank.openRow == row) {
        lat = cas_;
        stats_.rowHit.event(true);
    } else if (bank.rowOpen) {
        lat = precharge_ + ras_ + cas_;
        stats_.rowHit.event(false);
    } else {
        lat = ras_ + cas_;
        stats_.rowHit.event(false);
    }
    bank.rowOpen = true;
    bank.openRow = row;
    return lat;
}

Cycle
Dram::read(std::uint64_t line_addr, Cycle earliest)
{
    Bank &bank = banks_[bankOf(line_addr)];
    const Cycle start = earliest > bank.freeAt ? earliest : bank.freeAt;
    stats_.bankConflictCycles += start - earliest;
    const std::uint32_t lat = accessLatency(bank, rowOf(line_addr));
    // The bank is busy until the line is at its pins; the shared data
    // bus then carries it FIFO with every other transfer.
    bank.freeAt = start + lat;
    stats_.reads += 1;
    return bus_.reserve(start + lat, busCycles_);
}

Cycle
Dram::write(std::uint64_t line_addr, Cycle earliest)
{
    // The line crosses the shared data bus to the device first, then
    // the bank absorbs it under the same row-buffer rules as a read.
    const Cycle arrived = bus_.reserve(earliest, busCycles_);
    Bank &bank = banks_[bankOf(line_addr)];
    const Cycle start = arrived > bank.freeAt ? arrived : bank.freeAt;
    stats_.bankConflictCycles += start - arrived;
    const std::uint32_t lat = accessLatency(bank, rowOf(line_addr));
    bank.freeAt = start + lat;
    stats_.writes += 1;
    return start + lat;
}

void
Dram::resetStats(Cycle now)
{
    stats_.reset();
    bus_.resetStats(now);
}

Cycle
Dram::nextEventCycle(Cycle now) const
{
    Cycle next = kNoCycle;
    for (const Bank &bank : banks_)
        if (bank.freeAt > now && bank.freeAt < next)
            next = bank.freeAt;
    if (bus_.freeAt() > now && bus_.freeAt() < next)
        next = bus_.freeAt();
    return next;
}

void
Dram::save(ByteWriter &w) const
{
    w.u64(banks_.size());
    for (const Bank &b : banks_) {
        w.u64(b.openRow);
        w.b(b.rowOpen);
        w.u64(b.freeAt);
    }
    bus_.save(w);
    w.u64(stats_.rowHit.num);
    w.u64(stats_.rowHit.den);
    w.u64(stats_.reads);
    w.u64(stats_.writes);
    w.u64(stats_.bankConflictCycles);
}

void
Dram::restore(ByteReader &r)
{
    if (r.u64() != banks_.size())
        throw SnapshotError("DRAM bank count mismatch in snapshot");
    for (Bank &b : banks_) {
        b.openRow = r.u64();
        b.rowOpen = r.b();
        b.freeAt = r.u64();
    }
    bus_.restore(r);
    stats_.rowHit.num = r.u64();
    stats_.rowHit.den = r.u64();
    stats_.reads = r.u64();
    stats_.writes = r.u64();
    stats_.bankConflictCycles = r.u64();
}

} // namespace mtdae
