/**
 * @file
 * A single shared bus with FIFO reservations. Used twice: as the L1-L2
 * bus — the only serialising resource on the miss path under the
 * paper's perfect ("infinite, multibanked") L2, whose utilisation is
 * the headline Figure 5 bandwidth statistic — and as the DRAM data bus
 * of the finite backend (memory/dram.hh).
 */

#ifndef MTDAE_MEMORY_BUS_HH
#define MTDAE_MEMORY_BUS_HH

#include <cstdint>

#include "common/serialize.hh"
#include "common/types.hh"

namespace mtdae {

/**
 * A single bus with back-to-back FIFO reservations.
 */
class Bus
{
  public:
    /**
     * Reserve @p cycles consecutive bus cycles starting no earlier than
     * @p earliest.
     * @return the cycle at which the transfer completes
     */
    Cycle
    reserve(Cycle earliest, std::uint32_t cycles)
    {
        const Cycle start = earliest > freeAt_ ? earliest : freeAt_;
        freeAt_ = start + cycles;
        busy_ += cycles;
        return freeAt_;
    }

    /** First cycle at which the bus is free. */
    Cycle freeAt() const { return freeAt_; }

    /** Total busy cycles since construction. */
    std::uint64_t busyCycles() const { return busy_; }

    /** Begin a statistics interval at cycle @p now. */
    void
    resetStats(Cycle now)
    {
        statsStart_ = now;
        busyAtStart_ = busy_;
    }

    /**
     * Bus utilisation over the statistics interval ending at @p now.
     * Counts reserved cycles; can slightly exceed 1.0 transiently when
     * reservations extend beyond @p now.
     */
    double
    utilization(Cycle now) const
    {
        if (now <= statsStart_)
            return 0.0;
        return double(busy_ - busyAtStart_) / double(now - statsStart_);
    }

    /** Serialize the full bus state (reservation edge + counters). */
    void
    save(ByteWriter &w) const
    {
        w.u64(freeAt_);
        w.u64(busy_);
        w.u64(statsStart_);
        w.u64(busyAtStart_);
    }

    /** Restore state saved by save(). */
    void
    restore(ByteReader &r)
    {
        freeAt_ = r.u64();
        busy_ = r.u64();
        statsStart_ = r.u64();
        busyAtStart_ = r.u64();
    }

  private:
    Cycle freeAt_ = 0;
    std::uint64_t busy_ = 0;
    Cycle statsStart_ = 0;
    std::uint64_t busyAtStart_ = 0;
};

} // namespace mtdae

#endif // MTDAE_MEMORY_BUS_HH
