/**
 * @file
 * The data memory hierarchy of the simulated machine: a direct-mapped,
 * write-back, write-allocate, lockup-free L1 with a fixed number of MSHRs
 * and ports, backed over a shared bus by either the paper's perfect L2
 * (never misses, fixed l2Latency) or — when SimConfig::perfectL2 is
 * false — a finite, set-associative, write-back L2 (memory/l2_cache.hh)
 * in front of a banked DRAM with row buffers (memory/dram.hh).
 *
 * Timing model (documented cycle by cycle in docs/MEMORY.md §2): an L1
 * miss costs the backend's fill latency plus L1-L2 bus queueing plus
 * the line transfer (lineBytes / busBytesPerCycle cycles); a dirty
 * eviction occupies the bus for one further line transfer. With the
 * perfect L2 the fill latency is exactly l2Latency; with the finite
 * backend it emerges from L2 ports/MSHRs/contents and DRAM timing
 * (docs/MEMORY.md §3-4).
 */

#ifndef MTDAE_MEMORY_MEMORY_SYSTEM_HH
#define MTDAE_MEMORY_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "memory/bus.hh"
#include "memory/dram.hh"
#include "memory/l2_cache.hh"

namespace mtdae {

/**
 * Outcome of one L1 access attempt.
 */
struct MemResult
{
    bool accepted = false;  ///< False: structural reject, retry later.
    bool hit = false;       ///< Valid when accepted.
    bool merged = false;    ///< Secondary miss merged into a pending fill.
    Cycle readyAt = 0;      ///< Cycle the data is available (loads).

    /** Accepted and missed in the L1 (primary or merged). */
    bool miss() const { return accepted && !hit; }
};

/** Why an access was not accepted this cycle. */
enum class MemReject : std::uint8_t {
    None,     ///< Accepted.
    NoPort,   ///< All L1 ports used this cycle.
    NoMshr,   ///< Lockup-free miss capacity exhausted.
    Conflict, ///< Line frame busy with a pending fill of another tag.
};

/**
 * Aggregate memory-system statistics. The miss ratios count *primary*
 * misses only; secondary misses merged into a pending MSHR fill are
 * tracked as mergedMisses (delayed hits) and excluded from the ratios,
 * following the usual lockup-free-cache accounting.
 */
struct MemStats
{
    RatioStat loadMiss;    ///< num = load misses, den = load accesses.
    RatioStat storeMiss;   ///< num = store misses, den = store accesses.
    std::uint64_t mergedMisses = 0;  ///< Secondary misses merged in MSHRs.
    std::uint64_t writebacks = 0;    ///< Dirty lines written to L2.
    std::uint64_t rejects = 0;       ///< Structural rejections (retries).
    /** Sum over primary misses of (fill completion - access cycle):
     *  the emergent end-to-end miss latency numerator. */
    std::uint64_t fillLatencySum = 0;

    /** Combined load+store miss ratio. */
    double
    missRatio() const
    {
        const std::uint64_t den = loadMiss.den + storeMiss.den;
        return den ? double(loadMiss.num + storeMiss.num) / den : 0.0;
    }

    /** Average L1-miss fill latency in cycles (0 without misses). */
    double
    avgFillLatency() const
    {
        const std::uint64_t misses = loadMiss.num + storeMiss.num;
        return misses ? double(fillLatencySum) / double(misses) : 0.0;
    }

    void
    reset()
    {
        loadMiss.reset();
        storeMiss.reset();
        mergedMisses = 0;
        writebacks = 0;
        rejects = 0;
        fillLatencySum = 0;
    }
};

/**
 * The full data-side memory hierarchy. The core calls beginCycle() once
 * per cycle, then issues loads (at AP issue time) and stores (at
 * graduation) against the shared ports.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const SimConfig &cfg);

    /** Start a new cycle: recycle ports and completed MSHRs. */
    void beginCycle(Cycle now);

    /** Attempt a load at cycle @p now. */
    MemResult load(Addr addr, Cycle now) { return access(addr, false, now); }

    /** Attempt a store at cycle @p now (write-allocate). */
    MemResult store(Addr addr, Cycle now) { return access(addr, true, now); }

    /** Reason the most recent non-accepted access was rejected. */
    MemReject lastReject() const { return lastReject_; }

    /** Number of MSHRs currently in flight. */
    std::uint32_t mshrsInUse() const { return mshrsInUse_; }

    /** Aggregate L1 statistics. */
    const MemStats &stats() const { return stats_; }

    /** L2 statistics (all-zero while the perfect L2 is in force). */
    const L2Stats &l2Stats() const { return l2_.stats(); }

    /** DRAM statistics (all-zero while the perfect L2 is in force). */
    const DramStats &dramStats() const { return dram_.stats(); }

    /** True when the paper's perfect L2 backs the L1. */
    bool perfectL2() const { return perfectL2_; }

    /** L1-L2 bus utilisation over the current statistics interval. */
    double busUtilization(Cycle now) const { return bus_.utilization(now); }

    /** DRAM data bus utilisation over the statistics interval. */
    double
    dramBusUtilization(Cycle now) const
    {
        return dram_.busUtilization(now);
    }

    /** Reset statistics (start of the measured interval). */
    void resetStats(Cycle now);

    /**
     * Earliest cycle strictly after @p now at which anything in the
     * hierarchy changes state: the next L1 MSHR fill landing
     * (nextFillAt_), an L1-L2 bus reservation expiring, and — with the
     * finite backend — the next L2 port/MSHR or DRAM bank/bus
     * reservation expiring. kNoCycle when the hierarchy is fully
     * drained. The idle fast-forward engine treats this as a
     * conservative wake source: it must never be later than the first
     * memory event the core could observe (the never-under-report
     * contract, tests/test_skip.cc) — reporting earlier only costs a
     * re-check.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Serialize the entire hierarchy's mutable state. */
    void save(ByteWriter &w) const;

    /** Restore state saved by save(). */
    void restore(ByteReader &r);

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::int32_t pendingMshr = -1;  ///< MSHR filling this frame, or -1.
    };

    struct Mshr
    {
        bool valid = false;
        std::uint64_t lineAddr = 0;  ///< addr / lineBytes.
        Cycle readyAt = 0;
        bool makeDirty = false;      ///< A store merged into this fill.
        std::uint32_t frame = 0;     ///< Cache frame being filled.
    };

    MemResult access(Addr addr, bool is_store, Cycle now);

    std::uint64_t lineOf(Addr a) const { return a / lineBytes_; }
    std::uint32_t frameOf(std::uint64_t line) const
    {
        return static_cast<std::uint32_t>(line & frameMask_);
    }
    std::uint64_t tagOf(std::uint64_t line) const
    {
        return line >> frameBits_;
    }

    Mshr *findMshr(std::uint64_t line);
    Mshr *allocMshr();

    std::uint32_t lineBytes_;
    std::uint32_t frameBits_;
    std::uint64_t frameMask_;
    std::uint32_t ports_;
    std::uint32_t l1HitLatency_;
    std::uint32_t l2Latency_;
    std::uint32_t transferCycles_;
    bool perfectL2_;

    std::vector<Line> lines_;
    std::vector<Mshr> mshrs_;
    std::uint32_t mshrsInUse_ = 0;
    std::uint32_t portsUsed_ = 0;
    Cycle currentCycle_ = 0;
    /** Earliest readyAt of any in-flight MSHR fill (kNoCycle when none):
     *  beginCycle skips the recycle scan until a fill is actually due.
     *  Derived state — recomputed on restore, never serialized. */
    Cycle nextFillAt_ = kNoCycle;

    Bus bus_;
    Dram dram_;
    L2Cache l2_;
    MemStats stats_;
    MemReject lastReject_ = MemReject::None;
};

} // namespace mtdae

#endif // MTDAE_MEMORY_MEMORY_SYSTEM_HH
