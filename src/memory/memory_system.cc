#include "memory/memory_system.hh"

#include <bit>

#include "common/log.hh"

namespace mtdae {

MemorySystem::MemorySystem(const SimConfig &cfg)
    : lineBytes_(cfg.l1LineBytes),
      ports_(cfg.l1Ports),
      l1HitLatency_(cfg.l1HitLatency),
      l2Latency_(cfg.l2Latency),
      transferCycles_(cfg.lineTransferCycles()),
      perfectL2_(cfg.perfectL2),
      lines_(cfg.l1Bytes / cfg.l1LineBytes),
      mshrs_(cfg.mshrs),
      dram_(cfg),
      l2_(cfg, dram_)
{
    const std::uint32_t frames = cfg.l1Bytes / cfg.l1LineBytes;
    MTDAE_ASSERT((frames & (frames - 1)) == 0,
                 "direct-mapped L1 needs a power-of-two frame count");
    frameBits_ = std::countr_zero(frames);
    frameMask_ = frames - 1;
}

void
MemorySystem::beginCycle(Cycle now)
{
    currentCycle_ = now;
    portsUsed_ = 0;
    // Recycle MSHRs whose fills completed; the frame becomes a normal
    // valid (and possibly dirty) line. The earliest-fill watermark makes
    // the common no-fill-due cycle a single comparison instead of a
    // full MSHR scan.
    if (now < nextFillAt_)
        return;
    Cycle next = kNoCycle;
    for (auto &m : mshrs_) {
        if (!m.valid)
            continue;
        if (m.readyAt <= now) {
            Line &line = lines_[m.frame];
            MTDAE_ASSERT(line.pendingMshr >= 0, "fill without pending line");
            line.pendingMshr = -1;
            line.valid = true;
            line.tag = tagOf(m.lineAddr);
            if (m.makeDirty)
                line.dirty = true;
            m.valid = false;
            MTDAE_ASSERT(mshrsInUse_ > 0, "MSHR accounting underflow");
            --mshrsInUse_;
        } else if (m.readyAt < next) {
            next = m.readyAt;
        }
    }
    nextFillAt_ = next;
}

MemorySystem::Mshr *
MemorySystem::findMshr(std::uint64_t line)
{
    for (auto &m : mshrs_)
        if (m.valid && m.lineAddr == line)
            return &m;
    return nullptr;
}

MemorySystem::Mshr *
MemorySystem::allocMshr()
{
    for (auto &m : mshrs_)
        if (!m.valid)
            return &m;
    return nullptr;
}

MemResult
MemorySystem::access(Addr addr, bool is_store, Cycle now)
{
    MTDAE_ASSERT(now == currentCycle_, "access outside beginCycle interval");
    MemResult res;
    lastReject_ = MemReject::None;

    if (portsUsed_ >= ports_) {
        lastReject_ = MemReject::NoPort;
        stats_.rejects += 1;
        return res;
    }

    const std::uint64_t line = lineOf(addr);
    const std::uint32_t frame = frameOf(line);
    Line &l1 = lines_[frame];

    // Hit on a resident line.
    if (l1.valid && l1.pendingMshr < 0 && l1.tag == tagOf(line)) {
        ++portsUsed_;
        res.accepted = true;
        res.hit = true;
        res.readyAt = now + l1HitLatency_;
        if (is_store) {
            l1.dirty = true;
            stats_.storeMiss.event(false);
        } else {
            stats_.loadMiss.event(false);
        }
        return res;
    }

    // Secondary miss: merge into the pending fill of the same line.
    // Counted as a delayed hit for the miss-ratio statistics.
    if (Mshr *m = findMshr(line)) {
        ++portsUsed_;
        res.accepted = true;
        res.hit = false;
        res.merged = true;
        res.readyAt = m->readyAt;
        if (is_store) {
            m->makeDirty = true;
            stats_.storeMiss.event(false);
        } else {
            stats_.loadMiss.event(false);
        }
        stats_.mergedMisses += 1;
        return res;
    }

    // A different line is being filled into this frame: the frame is
    // busy until the fill lands; retry later.
    if (l1.pendingMshr >= 0) {
        lastReject_ = MemReject::Conflict;
        stats_.rejects += 1;
        return res;
    }

    // Primary miss: needs a free MSHR.
    Mshr *m = allocMshr();
    if (!m) {
        lastReject_ = MemReject::NoMshr;
        stats_.rejects += 1;
        return res;
    }

    ++portsUsed_;

    // Dirty victim: schedule its write-back transfer on the shared bus
    // ahead of the fill (the victim leaves before the new line arrives).
    if (l1.valid && l1.dirty) {
        const Cycle wb_crossed = bus_.reserve(now, transferCycles_);
        if (!perfectL2_)
            l2_.writeback((l1.tag << frameBits_) | frame, wb_crossed);
        stats_.writebacks += 1;
    }

    // Fill. Perfect L2 (the paper's model): the line is produced after
    // exactly the L2 access latency. Finite backend: the L2 services
    // the request — possibly all the way out to DRAM — and hands the
    // line over when it reaches the L2's output. Either way the L1-L2
    // bus then carries it, FIFO with other transfers.
    const Cycle backend_ready =
        perfectL2_ ? now + l2Latency_ : l2_.read(line, now);
    const Cycle fill_done = bus_.reserve(backend_ready, transferCycles_);
    stats_.fillLatencySum += fill_done - now;

    m->valid = true;
    m->lineAddr = line;
    m->readyAt = fill_done;
    m->makeDirty = is_store;
    m->frame = frame;
    ++mshrsInUse_;
    if (fill_done < nextFillAt_)
        nextFillAt_ = fill_done;

    l1.pendingMshr = static_cast<std::int32_t>(m - mshrs_.data());
    l1.valid = false;
    l1.dirty = false;

    res.accepted = true;
    res.hit = false;
    res.readyAt = fill_done;
    if (is_store)
        stats_.storeMiss.event(true);
    else
        stats_.loadMiss.event(true);
    return res;
}

Cycle
MemorySystem::nextEventCycle(Cycle now) const
{
    Cycle next = nextFillAt_ > now ? nextFillAt_ : kNoCycle;
    if (bus_.freeAt() > now && bus_.freeAt() < next)
        next = bus_.freeAt();
    if (!perfectL2_) {
        const Cycle l2 = l2_.nextEventCycle(now);
        if (l2 < next)
            next = l2;
        const Cycle dram = dram_.nextEventCycle(now);
        if (dram < next)
            next = dram;
    }
    return next;
}

void
MemorySystem::resetStats(Cycle now)
{
    stats_.reset();
    bus_.resetStats(now);
    l2_.resetStats();
    dram_.resetStats(now);
}

void
MemorySystem::save(ByteWriter &w) const
{
    w.u64(lines_.size());
    for (const Line &l : lines_) {
        w.u64(l.tag);
        w.b(l.valid);
        w.b(l.dirty);
        w.i32(l.pendingMshr);
    }
    w.u64(mshrs_.size());
    for (const Mshr &m : mshrs_) {
        w.b(m.valid);
        w.u64(m.lineAddr);
        w.u64(m.readyAt);
        w.b(m.makeDirty);
        w.u32(m.frame);
    }
    w.u32(mshrsInUse_);
    w.u32(portsUsed_);
    w.u64(currentCycle_);
    bus_.save(w);
    dram_.save(w);
    l2_.save(w);
    w.u64(stats_.loadMiss.num);
    w.u64(stats_.loadMiss.den);
    w.u64(stats_.storeMiss.num);
    w.u64(stats_.storeMiss.den);
    w.u64(stats_.mergedMisses);
    w.u64(stats_.writebacks);
    w.u64(stats_.rejects);
    w.u64(stats_.fillLatencySum);
    w.u8(std::uint8_t(lastReject_));
}

void
MemorySystem::restore(ByteReader &r)
{
    if (r.u64() != lines_.size())
        throw SnapshotError("L1 frame count mismatch in snapshot");
    for (Line &l : lines_) {
        l.tag = r.u64();
        l.valid = r.b();
        l.dirty = r.b();
        l.pendingMshr = r.i32();
    }
    if (r.u64() != mshrs_.size())
        throw SnapshotError("L1 MSHR count mismatch in snapshot");
    for (Mshr &m : mshrs_) {
        m.valid = r.b();
        m.lineAddr = r.u64();
        m.readyAt = r.u64();
        m.makeDirty = r.b();
        m.frame = r.u32();
    }
    mshrsInUse_ = r.u32();
    portsUsed_ = r.u32();
    currentCycle_ = r.u64();
    // Rebuild the derived earliest-fill watermark from the MSHR state.
    nextFillAt_ = kNoCycle;
    for (const Mshr &m : mshrs_)
        if (m.valid && m.readyAt < nextFillAt_)
            nextFillAt_ = m.readyAt;
    bus_.restore(r);
    dram_.restore(r);
    l2_.restore(r);
    stats_.loadMiss.num = r.u64();
    stats_.loadMiss.den = r.u64();
    stats_.storeMiss.num = r.u64();
    stats_.storeMiss.den = r.u64();
    stats_.mergedMisses = r.u64();
    stats_.writebacks = r.u64();
    stats_.rejects = r.u64();
    stats_.fillLatencySum = r.u64();
    lastReject_ = MemReject(r.u8());
}

} // namespace mtdae
