/**
 * @file
 * The DRAM main memory behind the L2: multiple banks, each with an open
 * row (page) buffer, sharing one data bus. Latency is no longer a knob
 * here — it *emerges* from row-buffer locality, bank conflicts and data
 * bus queueing, so co-scheduled threads genuinely contend.
 *
 * Timing model (docs/MEMORY.md §4): a read arriving at cycle t waits
 * for its bank, pays CAS on a row-buffer hit, RAS+CAS on an empty row
 * buffer, or precharge+RAS+CAS on a row conflict, then queues the line
 * on the shared data bus for dramBusCycles. Writes (L2 write-backs)
 * cross the data bus first, then occupy the bank with the same
 * row-buffer rules; nothing waits on their completion but they steal
 * bank time and bus slots from demand reads.
 */

#ifndef MTDAE_MEMORY_DRAM_HH
#define MTDAE_MEMORY_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "memory/bus.hh"

namespace mtdae {

/**
 * DRAM statistics. The row-buffer hit ratio is the headline locality
 * signal; reads are demand fills, writes are L2 write-back traffic.
 */
struct DramStats
{
    RatioStat rowHit;             ///< num = row hits, den = all accesses.
    std::uint64_t reads = 0;      ///< Demand line reads (L2 fills).
    std::uint64_t writes = 0;     ///< Write-backs from the L2.
    std::uint64_t bankConflictCycles = 0;  ///< Cycles spent waiting for
                                           ///< a busy bank.

    void
    reset()
    {
        rowHit.reset();
        reads = 0;
        writes = 0;
        bankConflictCycles = 0;
    }
};

/**
 * The DRAM device array: dramBanks independent banks sharing one data
 * bus. Like the rest of the hierarchy, timing is computed analytically
 * at request time (bank/bus reservations), so the model is
 * share-nothing and deterministic.
 */
class Dram
{
  public:
    explicit Dram(const SimConfig &cfg);

    /**
     * Read one line for an L2 fill.
     *
     * @param line_addr line address (byte address / line size)
     * @param earliest  cycle the request reaches the DRAM controller
     * @return the cycle the line has fully crossed the data bus
     */
    Cycle read(std::uint64_t line_addr, Cycle earliest);

    /**
     * Write one line (an L2 write-back). The line crosses the data bus,
     * then occupies its bank; the caller does not wait on the result.
     *
     * @return the cycle the bank completes the write
     */
    Cycle write(std::uint64_t line_addr, Cycle earliest);

    /** Aggregate statistics. */
    const DramStats &stats() const { return stats_; }

    /** Data bus utilisation over the current statistics interval. */
    double busUtilization(Cycle now) const { return bus_.utilization(now); }

    /** Reset statistics (start of the measured interval). */
    void resetStats(Cycle now);

    /** Bank index of a line address (for tests). */
    std::uint32_t bankOf(std::uint64_t line_addr) const;

    /** Row index within its bank of a line address (for tests). */
    std::uint64_t rowOf(std::uint64_t line_addr) const;

    /**
     * Earliest cycle strictly after @p now at which a pending DRAM
     * reservation expires (a bank or the data bus becomes free);
     * kNoCycle when nothing is in flight. Conservative wake source for
     * the idle fast-forward engine: DRAM timing is computed at request
     * time, so nothing the core can observe changes before this cycle.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Serialize bank/row-buffer, bus and statistics state. */
    void save(ByteWriter &w) const;

    /** Restore state saved by save(). */
    void restore(ByteReader &r);

  private:
    struct Bank
    {
        std::uint64_t openRow = 0;  ///< Row latched in the row buffer.
        bool rowOpen = false;       ///< False until the first activate.
        Cycle freeAt = 0;           ///< Bank busy until this cycle.
    };

    /** Bank access latency at @p start, updating the row buffer. */
    std::uint32_t accessLatency(Bank &bank, std::uint64_t row);

    std::uint32_t linesPerRow_;
    std::uint32_t cas_;
    std::uint32_t ras_;
    std::uint32_t precharge_;
    std::uint32_t busCycles_;

    std::vector<Bank> banks_;
    Bus bus_;
    DramStats stats_;
};

} // namespace mtdae

#endif // MTDAE_MEMORY_DRAM_HH
