#include "memory/l2_cache.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace mtdae {

L2Cache::L2Cache(const SimConfig &cfg, Dram &dram)
    : assoc_(cfg.l2Assoc),
      latency_(cfg.l2Latency),
      // With the perfect L2 in force MemorySystem never routes an
      // access here, so don't pay for the (possibly large) tag array.
      ways_(cfg.perfectL2 ? 0
                          : std::size_t(cfg.l2Bytes / cfg.l1LineBytes)),
      portFreeAt_(cfg.l2Ports, 0),
      mshrFreeAt_(cfg.l2Mshrs, 0),
      dram_(dram)
{
    const std::uint32_t sets =
        cfg.l2Bytes / (cfg.l1LineBytes * cfg.l2Assoc);
    MTDAE_ASSERT((sets & (sets - 1)) == 0,
                 "L2 set count must be a power of two");
    setMask_ = sets - 1;
}

Cycle
L2Cache::acquirePort(Cycle t)
{
    // Pipelined ports: each accepts one new access per cycle. Take the
    // earliest-free slot; the access starts when both the request and
    // the port are ready.
    auto slot = std::min_element(portFreeAt_.begin(), portFreeAt_.end());
    const Cycle start = std::max(t, *slot);
    *slot = start + 1;
    return start;
}

std::size_t
L2Cache::earliestMshr() const
{
    return std::size_t(std::min_element(mshrFreeAt_.begin(),
                                        mshrFreeAt_.end()) -
                       mshrFreeAt_.begin());
}

L2Cache::Way *
L2Cache::lookup(std::uint64_t line_addr)
{
    Way *base = &ways_[std::size_t(setOf(line_addr)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    return nullptr;
}

L2Cache::Way &
L2Cache::victimIn(std::uint32_t set)
{
    Way *base = &ways_[std::size_t(set) * assoc_];
    Way *victim = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lruTick < victim->lruTick)
            victim = &base[w];
    }
    return *victim;
}

Cycle
L2Cache::read(std::uint64_t line_addr, Cycle earliest)
{
    const Cycle start = acquirePort(earliest);
    const Cycle tag_done = start + latency_;

    if (Way *way = lookup(line_addr)) {
        // Hit — possibly on a line whose DRAM fill is still in flight
        // (the analytic form of merging into the L2's MSHR).
        way->lruTick = ++lruClock_;
        stats_.miss.event(false);
        if (way->readyAt > tag_done) {
            stats_.delayedHits += 1;
            return way->readyAt;
        }
        return tag_done;
    }

    // Miss: wait for a free MSHR, evict the LRU victim (writing it back
    // to DRAM if dirty), and fetch the line from DRAM.
    stats_.miss.event(true);
    const std::size_t slot = earliestMshr();
    const Cycle miss_start = std::max(tag_done, mshrFreeAt_[slot]);

    Way &victim = victimIn(setOf(line_addr));
    if (victim.valid && victim.dirty) {
        dram_.write(victim.lineAddr, miss_start);
        stats_.writebacks += 1;
    }

    const Cycle fill_done = dram_.read(line_addr, miss_start);
    mshrFreeAt_[slot] = fill_done;

    victim.lineAddr = line_addr;
    victim.valid = true;
    victim.dirty = false;
    victim.readyAt = fill_done;
    victim.lruTick = ++lruClock_;
    return fill_done;
}

void
L2Cache::writeback(std::uint64_t line_addr, Cycle earliest)
{
    const Cycle start = acquirePort(earliest);
    if (Way *way = lookup(line_addr)) {
        way->dirty = true;
        way->lruTick = ++lruClock_;
        stats_.wbAbsorbed += 1;
        return;
    }
    // The L1 held the only copy (the L2 evicted its own since): forward
    // the line straight to DRAM without allocating.
    dram_.write(line_addr, start + latency_);
    stats_.wbForwarded += 1;
}

void
L2Cache::resetStats()
{
    stats_.reset();
}

Cycle
L2Cache::nextEventCycle(Cycle now) const
{
    Cycle next = kNoCycle;
    for (const Cycle t : portFreeAt_)
        if (t > now && t < next)
            next = t;
    for (const Cycle t : mshrFreeAt_)
        if (t > now && t < next)
            next = t;
    return next;
}

void
L2Cache::save(ByteWriter &w) const
{
    w.u64(ways_.size());
    for (const Way &way : ways_) {
        w.u64(way.lineAddr);
        w.b(way.valid);
        w.b(way.dirty);
        w.u64(way.readyAt);
        w.u64(way.lruTick);
    }
    w.u64(portFreeAt_.size());
    for (const Cycle c : portFreeAt_)
        w.u64(c);
    w.u64(mshrFreeAt_.size());
    for (const Cycle c : mshrFreeAt_)
        w.u64(c);
    w.u64(lruClock_);
    w.u64(stats_.miss.num);
    w.u64(stats_.miss.den);
    w.u64(stats_.delayedHits);
    w.u64(stats_.writebacks);
    w.u64(stats_.wbAbsorbed);
    w.u64(stats_.wbForwarded);
}

void
L2Cache::restore(ByteReader &r)
{
    if (r.u64() != ways_.size())
        throw SnapshotError("L2 way count mismatch in snapshot");
    for (Way &way : ways_) {
        way.lineAddr = r.u64();
        way.valid = r.b();
        way.dirty = r.b();
        way.readyAt = r.u64();
        way.lruTick = r.u64();
    }
    if (r.u64() != portFreeAt_.size())
        throw SnapshotError("L2 port count mismatch in snapshot");
    for (Cycle &c : portFreeAt_)
        c = r.u64();
    if (r.u64() != mshrFreeAt_.size())
        throw SnapshotError("L2 MSHR count mismatch in snapshot");
    for (Cycle &c : mshrFreeAt_)
        c = r.u64();
    lruClock_ = r.u64();
    stats_.miss.num = r.u64();
    stats_.miss.den = r.u64();
    stats_.delayedHits = r.u64();
    stats_.writebacks = r.u64();
    stats_.wbAbsorbed = r.u64();
    stats_.wbForwarded = r.u64();
}

} // namespace mtdae
