#include "core/snapshot.hh"

#include "core/simulator.hh"

namespace mtdae {

void
serializeConfig(const SimConfig &cfg, ByteWriter &w)
{
    w.u32(cfg.numThreads);
    w.b(cfg.decoupled);
    w.u32(cfg.apUnits);
    w.u32(cfg.epUnits);
    w.u32(cfg.apLatency);
    w.u32(cfg.epLatency);
    w.u32(cfg.fetchThreadsPerCycle);
    w.u32(cfg.fetchWidth);
    w.u32(cfg.fetchBufferSize);
    w.u32(cfg.dispatchWidth);
    w.u8(std::uint8_t(cfg.fetchPolicy));
    w.u8(std::uint8_t(cfg.issuePolicy));
    w.u64(cfg.threadWeights.size());
    for (const std::uint32_t tw : cfg.threadWeights)
        w.u32(tw);
    w.u32(cfg.adaptiveMissThreshold);
    w.u32(cfg.maxUnresolvedBranches);
    w.u32(cfg.redirectPenalty);
    w.u32(cfg.bhtEntries);
    w.u8(std::uint8_t(cfg.predictor));
    w.u32(cfg.gshareHistoryBits);
    w.u32(cfg.iqEntries);
    w.u32(cfg.apQueueEntries);
    w.u32(cfg.saqEntries);
    w.u32(cfg.robEntries);
    w.u32(cfg.apPhysRegs);
    w.u32(cfg.epPhysRegs);
    w.u32(cfg.graduateWidth);
    w.u32(cfg.l1Bytes);
    w.u32(cfg.l1LineBytes);
    w.u32(cfg.l1Ports);
    w.u32(cfg.mshrs);
    w.u32(cfg.l1HitLatency);
    w.u32(cfg.l2Latency);
    w.u32(cfg.busBytesPerCycle);
    w.b(cfg.perfectL2);
    w.u32(cfg.l2Bytes);
    w.u32(cfg.l2Assoc);
    w.u32(cfg.l2Ports);
    w.u32(cfg.l2Mshrs);
    w.u32(cfg.dramBanks);
    w.u32(cfg.dramRowBytes);
    w.u32(cfg.dramCas);
    w.u32(cfg.dramRas);
    w.u32(cfg.dramPrecharge);
    w.u32(cfg.dramBusCycles);
    w.u64(cfg.seed);
    w.u64(cfg.warmupInsts);
    // cfg.cycleSkip is deliberately not serialized: like SimJob::profile
    // it is an execution strategy with byte-identical results, so it
    // must not perturb configFingerprint()/prefixKey() — a skip-on run
    // may warm-start from a skip-off checkpoint and vice versa.
}

std::uint64_t
configFingerprint(const SimConfig &cfg)
{
    ByteWriter w;
    serializeConfig(cfg, w);
    return fnv1a(w.data());
}

std::vector<std::uint8_t>
Snapshot::toBytes() const
{
    ByteWriter w;
    w.u32(kSnapshotMagic);
    w.u32(kSnapshotVersion);
    w.u64(configHash);
    w.u64(payload.size());
    for (const std::uint8_t byte : payload)
        w.u8(byte);
    w.u64(fnv1a(payload));
    return w.take();
}

Snapshot
Snapshot::fromBytes(const std::vector<std::uint8_t> &bytes)
{
    ByteReader r(bytes);
    if (r.u32() != kSnapshotMagic)
        throw SnapshotError("not an mtdae snapshot (bad magic)");
    const std::uint32_t version = r.u32();
    if (version != kSnapshotVersion)
        throw SnapshotError(
            "unsupported snapshot version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kSnapshotVersion) + ")");
    Snapshot snap;
    snap.configHash = r.u64();
    const std::uint64_t len = r.u64();
    if (len > r.remaining())
        throw SnapshotError("snapshot payload truncated");
    snap.payload.resize(std::size_t(len));
    for (std::uint8_t &byte : snap.payload)
        byte = r.u8();
    const std::uint64_t checksum = r.u64();
    if (!r.atEnd())
        throw SnapshotError("trailing bytes after snapshot container");
    if (checksum != fnv1a(snap.payload))
        throw SnapshotError("snapshot payload checksum mismatch");
    return snap;
}

Snapshot
Simulator::saveSnapshot() const
{
    ByteWriter w;
    w.u64(now_);
    mem_.save(w);
    w.u64(contexts_.size());
    for (const auto &ctxp : contexts_)
        ctxp->save(w);

    // The completion heap is serialized as its raw array (see
    // Simulator::EventQueue): restoring it verbatim reproduces the
    // exact same-cycle pop order the uninterrupted run would see.
    const std::vector<Event> &heap = events_.heap();
    w.u64(heap.size());
    for (const Event &ev : heap) {
        w.u64(ev.at);
        w.u32(ev.tid);
        w.u64(contexts_[ev.tid]->robIndexOf(ev.inst));
    }

    fetchPolicy_->save(w);
    issuePolicy_->save(w);

    for (const std::uint64_t count : slotsAp_.counts)
        w.u64(count);
    for (const std::uint64_t count : slotsEp_.counts)
        w.u64(count);
    w.u64(totalGraduated_);
    w.u64(measureStart_);
    w.u64(instsBase_);
    w.u64(mispredicts_);
    w.u64(condBranches_);
    w.u64(forwardedLoads_);
    w.u64(lastGraduation_);

    Snapshot snap;
    snap.configHash = configFingerprint(cfg_);
    snap.payload = w.take();
    return snap;
}

void
Simulator::restoreSnapshot(const Snapshot &snap)
{
    if (snap.configHash != configFingerprint(cfg_))
        throw SnapshotError(
            "snapshot belongs to a different configuration "
            "(config hash mismatch)");

    ByteReader r(snap.payload);
    now_ = r.u64();
    mem_.restore(r);
    if (r.u64() != contexts_.size())
        throw SnapshotError("context count mismatch in snapshot");
    for (auto &ctxp : contexts_)
        ctxp->restore(r);

    std::vector<Event> &heap = events_.heap();
    heap.resize(r.u64());
    for (Event &ev : heap) {
        ev.at = r.u64();
        ev.tid = r.u32();
        if (ev.tid >= contexts_.size())
            throw SnapshotError("event thread id out of range in snapshot");
        const std::uint64_t idx = r.u64();
        Context &ctx = *contexts_[ev.tid];
        if (idx >= ctx.rob.size())
            throw SnapshotError("event ROB index out of range in snapshot");
        ev.inst = &ctx.rob[std::size_t(idx)];
    }

    fetchPolicy_->restore(r);
    issuePolicy_->restore(r);

    for (std::uint64_t &count : slotsAp_.counts)
        count = r.u64();
    for (std::uint64_t &count : slotsEp_.counts)
        count = r.u64();
    totalGraduated_ = r.u64();
    measureStart_ = r.u64();
    instsBase_ = r.u64();
    mispredicts_ = r.u64();
    condBranches_ = r.u64();
    forwardedLoads_ = r.u64();
    lastGraduation_ = r.u64();

    if (!r.atEnd())
        throw SnapshotError("trailing bytes in snapshot payload");
}

} // namespace mtdae
