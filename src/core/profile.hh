/**
 * @file
 * Per-stage wall-clock profiling of the simulator hot loop.
 *
 * Built when MTDAE_PROFILE is non-zero (the default; configure with
 * -DMTDAE_PROFILE=OFF to compile the instrumentation out entirely).
 * Even when built, profiling is off until Simulator::setProfiling(true)
 * — the only disabled-path cost is one predictable branch per step().
 *
 * The accounting invariant: every nanosecond of a profiled step() lands
 * in exactly one stage bucket, so the buckets sum to totalNs exactly
 * (tests/test_profile.cc asserts this). Time spent rebuilding
 * ThreadState snapshots is carved out of whichever stage triggered the
 * rebuild and credited to Stage::Snapshot, making the cost the
 * incremental-snapshot cache avoids directly visible.
 *
 * The profile is wall-clock measurement state, not simulated state: it
 * is excluded from checkpoints (snapshot.cc) and from every byte-
 * identity contract.
 */

#ifndef MTDAE_CORE_PROFILE_HH
#define MTDAE_CORE_PROFILE_HH

#include <array>
#include <cstddef>
#include <cstdint>

#ifndef MTDAE_PROFILE
#define MTDAE_PROFILE 1
#endif

namespace mtdae {

/** One bucket per pipeline stage of Simulator::step(). */
enum class Stage : std::uint8_t {
    Complete,  ///< memory beginCycle + completion-event drain
    Issue,     ///< issue arbitration + unit issue on both clusters
    Dispatch,  ///< rename/dispatch from the fetch buffers
    Fetch,     ///< flush checks + fetch arbitration + predictor
    Graduate,  ///< in-order retirement from the ROBs
    Snapshot,  ///< ThreadState rebuilds for the policy layer
    Other,     ///< IQ-window sampling, policy endCycle, loop overhead
    Skipped,   ///< fast-forwarded quiescent spans (trySkipIdle)
};

inline constexpr std::size_t kNumStages = 8;

/** Stable lowercase stage name (CLI/JSON/bench output). */
inline const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::Complete: return "complete";
    case Stage::Issue: return "issue";
    case Stage::Dispatch: return "dispatch";
    case Stage::Fetch: return "fetch";
    case Stage::Graduate: return "graduate";
    case Stage::Snapshot: return "snapshot";
    case Stage::Other: return "other";
    case Stage::Skipped: return "skipped";
    }
    return "?";
}

/** True when the instrumentation is compiled into this build. */
inline constexpr bool kProfileBuilt = MTDAE_PROFILE != 0;

/**
 * Accumulated per-stage wall time for one run. Cleared by
 * Simulator::resetStats(), so after run() it covers exactly the
 * measure phase.
 */
struct StageProfile {
    std::array<std::uint64_t, kNumStages> ns{};  ///< per-stage wall ns
    std::uint64_t totalNs = 0;  ///< sum of ns[] (the whole stepped loop)
    std::uint64_t cycles = 0;   ///< profiled cycles
    bool enabled = false;       ///< was profiling on for this run?

    void
    reset()
    {
        ns.fill(0);
        totalNs = 0;
        cycles = 0;
    }

    std::uint64_t
    operator[](Stage s) const
    {
        return ns[static_cast<std::size_t>(s)];
    }
};

} // namespace mtdae

#endif // MTDAE_CORE_PROFILE_HH
