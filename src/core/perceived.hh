/**
 * @file
 * Perceived load-miss latency, the paper's latency-hiding metric: the
 * number of cycles an instruction that uses load data cannot issue —
 * while a free issue slot exists — because the load miss is outstanding.
 * Accumulated per miss and averaged over all misses (hits excluded;
 * fully-hidden misses contribute zero).
 */

#ifndef MTDAE_CORE_PERCEIVED_HH
#define MTDAE_CORE_PERCEIVED_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/serialize.hh"

namespace mtdae {

/**
 * Tracks outstanding load misses of one thread and the issue-head stall
 * cycles attributed to each.
 */
class PerceivedTracker
{
  public:
    /** Token meaning "no miss being tracked". */
    static constexpr std::uint32_t kNoToken = 0xffffffffu;

    /**
     * Begin tracking a load miss.
     * @param is_int true for integer loads, false for FP loads
     * @return token to attribute stalls with
     */
    std::uint32_t
    open(bool is_int)
    {
        std::uint32_t tok;
        if (!free_.empty()) {
            tok = free_.back();
            free_.pop_back();
        } else {
            tok = std::uint32_t(slots_.size());
            slots_.push_back({});
        }
        slots_[tok] = {0, is_int, true};
        outstanding_ += 1;
        return tok;
    }

    /** Attribute one stall cycle to the miss behind @p token. */
    void
    stall(std::uint32_t token)
    {
        MTDAE_ASSERT(token < slots_.size() && slots_[token].active,
                     "stall on a closed perceived-latency token");
        slots_[token].stalls += 1;
    }

    /**
     * Attribute @p n stall cycles to the miss behind @p token in one
     * step. Used by the idle fast-forward engine: per-cycle stall
     * attribution is order-independent (every stalled issue head gets
     * exactly one stall per unit per cycle), so a quiescent span of n
     * cycles adds exactly n per {unit, head} pair.
     */
    void
    stall(std::uint32_t token, std::uint64_t n)
    {
        MTDAE_ASSERT(token < slots_.size() && slots_[token].active,
                     "stall on a closed perceived-latency token");
        slots_[token].stalls += n;
    }

    /** The miss completed: fold its stalls into the per-class average. */
    void
    close(std::uint32_t token)
    {
        MTDAE_ASSERT(token < slots_.size() && slots_[token].active,
                     "double close of a perceived-latency token");
        MTDAE_ASSERT(outstanding_ > 0, "outstanding-miss underflow");
        outstanding_ -= 1;
        Slot &s = slots_[token];
        s.active = false;
        if (s.isInt) {
            intStalls_ += s.stalls;
            intMisses_ += 1;
        } else {
            fpStalls_ += s.stalls;
            fpMisses_ += 1;
        }
        free_.push_back(token);
    }

    /** Accumulated stall cycles attributed to integer-load misses. */
    std::uint64_t intStalls() const { return intStalls_; }
    /** Accumulated stall cycles attributed to FP-load misses. */
    std::uint64_t fpStalls() const { return fpStalls_; }
    /** Completed integer-load misses. */
    std::uint64_t intMisses() const { return intMisses_; }
    /** Completed FP-load misses. */
    std::uint64_t fpMisses() const { return fpMisses_; }

    /** Load misses currently in flight (the misscount policy key);
     *  unaffected by resetStats(), like the open tokens themselves. */
    std::uint32_t outstanding() const { return outstanding_; }

    /** Average perceived latency of integer-load misses. */
    double
    intPerceived() const
    {
        return intMisses_ ? double(intStalls_) / double(intMisses_) : 0.0;
    }

    /** Average perceived latency of FP-load misses. */
    double
    fpPerceived() const
    {
        return fpMisses_ ? double(fpStalls_) / double(fpMisses_) : 0.0;
    }

    /** Zero the accumulated statistics (open misses keep tracking). */
    void
    resetStats()
    {
        intStalls_ = fpStalls_ = 0;
        intMisses_ = fpMisses_ = 0;
    }

    /**
     * Serialize the complete tracker state. The slot array and free
     * list are written verbatim (not compacted): token values live in
     * DynInst::missToken and MSHR frames across the checkpoint, and
     * the free-list order decides which token open() hands out next.
     */
    void
    save(ByteWriter &w) const
    {
        w.u64(slots_.size());
        for (const Slot &s : slots_) {
            w.u64(s.stalls);
            w.b(s.isInt);
            w.b(s.active);
        }
        w.u64(free_.size());
        for (const std::uint32_t tok : free_)
            w.u32(tok);
        w.u32(outstanding_);
        w.u64(intStalls_);
        w.u64(fpStalls_);
        w.u64(intMisses_);
        w.u64(fpMisses_);
    }

    /** Restore state saved by save(). */
    void
    restore(ByteReader &r)
    {
        slots_.resize(r.u64());
        for (Slot &s : slots_) {
            s.stalls = r.u64();
            s.isInt = r.b();
            s.active = r.b();
        }
        free_.resize(r.u64());
        for (std::uint32_t &tok : free_)
            tok = r.u32();
        outstanding_ = r.u32();
        intStalls_ = r.u64();
        fpStalls_ = r.u64();
        intMisses_ = r.u64();
        fpMisses_ = r.u64();
    }

  private:
    struct Slot
    {
        std::uint64_t stalls = 0;
        bool isInt = false;
        bool active = false;
    };

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;
    std::uint32_t outstanding_ = 0;
    std::uint64_t intStalls_ = 0;
    std::uint64_t fpStalls_ = 0;
    std::uint64_t intMisses_ = 0;
    std::uint64_t fpMisses_ = 0;
};

} // namespace mtdae

#endif // MTDAE_CORE_PERCEIVED_HH
