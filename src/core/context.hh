/**
 * @file
 * Per-thread (hardware context) state: rename map tables, physical
 * register files with scoreboards, fetch buffer, unit queues, Store
 * Address Queue and reorder buffer. The paper replicates all of these
 * per context; the issue logic, functional units and caches are shared.
 */

#ifndef MTDAE_CORE_CONTEXT_HH
#define MTDAE_CORE_CONTEXT_HH

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branch/predictor.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "core/dyn_inst.hh"
#include "core/perceived.hh"
#include "isa/reg.hh"
#include "policy/policy.hh"
#include "workload/trace_source.hh"

namespace mtdae {

/** What produces the value of a physical register. */
struct Producer
{
    /** Producer category, used for issue-stall classification. */
    enum class Kind : std::uint8_t {
        None,  ///< Architectural initial value (always ready).
        Fu,    ///< A functional-unit instruction.
        Load,  ///< A load (memory).
    };

    Kind kind = Kind::None;
    /** Perceived-latency token when the producing load missed. */
    std::uint32_t missToken = PerceivedTracker::kNoToken;
};

/**
 * One renamed physical register file with free list and scoreboard.
 */
class RegFile
{
  public:
    /**
     * @param arch_regs architectural registers (initially mapped 1:1)
     * @param phys_regs total physical registers (> arch_regs)
     */
    RegFile(std::uint32_t arch_regs, std::uint32_t phys_regs);

    /** True when a rename can allocate a destination. */
    bool hasFree() const { return !freeList_.empty(); }

    /** Free physical registers remaining. */
    std::size_t freeCount() const { return freeList_.size(); }

    /** Current mapping of architectural register @p arch. */
    PhysReg map(std::uint8_t arch) const { return map_[arch]; }

    /**
     * Rename @p arch to a fresh physical register.
     * @param[out] old_phys the previous mapping (to free at graduation)
     * @return the new physical register
     */
    PhysReg rename(std::uint8_t arch, PhysReg &old_phys);

    /** Return @p r to the free list. */
    void release(PhysReg r);

    /** Scoreboard: is @p r ready? (Hot path: unchecked indexing; the
     *  register numbers are internal invariants, and the sanitizer CI
     *  job keeps the indexing honest.) */
    bool ready(PhysReg r) const { return ready_[r]; }

    /** Mark @p r ready. */
    void setReady(PhysReg r) { ready_[r] = true; }

    /** Producer record of @p r. */
    Producer &producer(PhysReg r) { return producer_[r]; }

    /** Producer record of @p r (const). */
    const Producer &producer(PhysReg r) const { return producer_[r]; }

    /** Total physical registers. */
    std::size_t size() const { return ready_.size(); }

    /** Serialize scoreboard, producers, free list and map table. */
    void save(ByteWriter &w) const;

    /** Restore state saved by save(). */
    void restore(ByteReader &r);

  private:
    std::vector<std::uint8_t> ready_;
    std::vector<Producer> producer_;
    std::vector<PhysReg> freeList_;
    std::vector<PhysReg> map_;
};

/**
 * A Store Address Queue entry: the address is deposited when the store
 * issues on the AP (address generation); younger loads forward from or
 * bypass it. The entry is released when the store graduates.
 */
struct SaqEntry
{
    DynInst *inst = nullptr;
    InstSeq seq = 0;
    bool addrValid = false;
    Addr addr = 0;
};

/**
 * A fetched instruction awaiting dispatch. The sequence number is
 * assigned at fetch (nothing is ever squashed in trace-driven mode, so
 * fetch order is program order).
 */
struct FetchedInst
{
    TraceInst ti;
    InstSeq seq = 0;
    bool mispredicted = false;
};

/**
 * All replicated per-context state.
 */
struct Context
{
    /**
     * @param id     hardware context id
     * @param cfg    machine configuration
     * @param src    the thread's trace (owned)
     */
    Context(ThreadId id, const SimConfig &cfg,
            std::unique_ptr<TraceSource> src);

    ThreadId tid;
    std::unique_ptr<TraceSource> source;

    // Front end.
    std::deque<FetchedInst> fetchBuf; ///< Fetched, pending dispatch.
    /**
     * Instructions squashed from the fetch buffer by a flush-gating
     * policy, oldest first; fetch replays them — re-running branch
     * prediction — before consuming the trace again
     * (Simulator::flushFetchBuffer / nextInst).
     */
    std::deque<TraceInst> replayQ;
    TraceInst pendingInst;            ///< One-instruction lookahead.
    bool hasPending = false;
    bool traceDone = false;
    std::uint32_t unresolvedBranches = 0;
    bool fetchBlocked = false;        ///< Gated on a mispredicted branch.
    InstSeq blockingBranchSeq = 0;
    Cycle fetchResumeAt = 0;          ///< Earliest fetch cycle after redirect.
    std::unique_ptr<BranchPredictor> predictor;

    // Rename and scoreboard.
    RegFile intRegs;                  ///< AP physical file.
    RegFile fpRegs;                   ///< EP physical file.

    // Windows.
    std::deque<DynInst> rob;          ///< In-flight instructions, in order.
    std::deque<DynInst *> apQ;        ///< AP pending-issue queue.
    std::deque<DynInst *> iq;         ///< EP Instruction Queue (decoupling).
    std::deque<SaqEntry> saq;         ///< Store Address Queue.

    /**
     * Deposited-word index over the SAQ: 8-byte-word address -> number
     * of address-valid entries writing it. Because all memory
     * instructions issue on the AP in strict per-thread program order,
     * every deposited store is older than any load that is issuing, so
     * "an older deposited store writes this word" reduces to a count
     * lookup (saqForwardsFast) instead of the linear saqForwards walk
     * — the SAQ scales to hundreds of entries at high L2 latencies.
     * Derived state: rebuilt from the SAQ on restore, never serialized.
     */
    std::unordered_map<Addr, std::uint32_t> saqWords;

    // Sequencing.
    InstSeq nextSeq = 0;              ///< Next fetch sequence number.
    InstSeq nextIssueSeq = 0;         ///< Non-decoupled program-order gate.

    // Per-thread statistics.
    PerceivedTracker perceived;
    std::uint64_t graduated = 0;
    /**
     * graduated as of the last statistics reset
     * (Simulator::resetStats): graduated - graduatedBase is the
     * thread's measure-interval instruction count, the basis of the
     * per-thread slowdown/fairness metrics in RunResult. Serialized
     * (unlike the interval-only skip counters) because it feeds result
     * rows: a warm-started run must compute the same per-thread
     * metrics as a cold one.
     */
    std::uint64_t graduatedBase = 0;

    /**
     * Invalidation flag for the simulator's cached ThreadState
     * (Simulator::snapshotThreads). Set by every mutation of a field
     * policyState() reads; cleared when the cache recomputes. Derived
     * state: never serialized — Context::restore() just sets it.
     */
    bool policyDirty = true;

    /** Cycles in the trailing statistic windows (the split policy's
     *  EP drain-rate key and the adaptive policy's phase key;
     *  ThreadState::iqOccupancyWindow / ::missWindow). */
    static constexpr std::uint32_t kIqWindow = kPolicyWindowCycles;
    std::array<std::uint32_t, kIqWindow> iqSamples{};  ///< Ring buffer.
    std::uint32_t iqSampleAt = 0;   ///< Next ring slot to overwrite.
    std::uint32_t iqWindowSum = 0;  ///< Running sum of the ring.

    /** Trailing outstanding-L1-load-miss window, same length and
     *  sampling points as the IQ window (ThreadState::missWindow). */
    std::array<std::uint32_t, kIqWindow> missSamples{};
    std::uint32_t missSampleAt = 0;
    std::uint32_t missWindowSum = 0;

    /**
     * Uniformity tracker for the miss window
     * (ThreadState::missWindowUniform): missSlotsAtCur counts the ring
     * slots equal to missCountedFor, which sampleWindows() keeps
     * synced to perceived.outstanding(). The sum alone cannot prove
     * the window is frozen — a mixed ring can coincidentally sum to
     * outstanding * kIqWindow and still decay as it slides — so the
     * idle fast-forward stability probe needs the exact slot count.
     * Derived state: never serialized, recounted by restore().
     */
    std::uint32_t missSlotsAtCur = kIqWindow;
    std::uint32_t missCountedFor = 0;

    /**
     * Record this cycle's IQ-occupancy and outstanding-miss samples
     * into the trailing windows. Called exactly once per cycle, at the
     * end of Simulator::step(), so every policy consultation within a
     * cycle sees the same window values.
     */
    void sampleWindows();

    /**
     * Advance both trailing windows by @p n cycles in O(min(n, 64)):
     * byte-identical to calling sampleWindows() n times with an
     * unchanging iq.size() and outstanding-miss count — which is
     * exactly the situation during a quiescent fast-forwarded span (no
     * dispatch, no issue, no fill landing).
     */
    void advanceWindows(std::uint64_t n);

    /** Register file holding registers of @p cls. */
    RegFile &file(RegClass cls)
    {
        return cls == RegClass::Int ? intRegs : fpRegs;
    }

    /** Register file holding registers of @p cls (const). */
    const RegFile &file(RegClass cls) const
    {
        return cls == RegClass::Int ? intRegs : fpRegs;
    }

    /** True when every source of @p di is ready. */
    bool operandsReady(const DynInst &di) const;

    /** True when the address sources of a store are ready. */
    bool storeAddrReady(const DynInst &di) const;

    /** True when the data source of a store is ready (graduation). */
    bool storeDataReady(const DynInst &di) const;

    /**
     * Find the first unready source of @p di and classify its producer.
     * @param[out] tok the perceived token when a missed load produces it
     * @return Producer::Kind::Fu or Load; Kind::None when all ready
     */
    Producer::Kind stallSource(const DynInst &di, std::uint32_t &tok) const;

    /**
     * Search the SAQ for the youngest older store writing the same
     * 8-byte word as @p load_addr (reference linear walk; the issue
     * stage uses saqForwardsFast, and tests assert they agree).
     * @return true when such a store exists (forwarding)
     */
    bool saqForwards(InstSeq load_seq, Addr load_addr) const;

    /** saqForwards via the deposited-word index (see saqWords). */
    bool
    saqForwardsFast(Addr load_addr) const
    {
        return !saqWords.empty() &&
               saqWords.find(load_addr >> 3) != saqWords.end();
    }

    /** Record a store's address deposit in the word index. */
    void
    saqDeposit(Addr addr)
    {
        ++saqWords[addr >> 3];
    }

    /** Remove a graduating store's deposit from the word index. */
    void
    saqWithdraw(Addr addr)
    {
        const auto it = saqWords.find(addr >> 3);
        MTDAE_ASSERT(it != saqWords.end() && it->second > 0,
                     "SAQ word index out of sync at graduation");
        if (--it->second == 0)
            saqWords.erase(it);
    }

    /**
     * Snapshot the occupancy/blocked state the arbitration policies
     * are allowed to see (src/policy/policy.hh). Taken at the start of
     * each consulting pipeline stage.
     *
     * @param cfg the configuration in force (fetch-buffer capacity)
     * @param now current cycle (redirect-gate check)
     */
    ThreadState policyState(const SimConfig &cfg, Cycle now) const;

    /**
     * Serialize the context's complete mutable state. The apQ/iq/saq
     * queues and any in-flight events reference DynInsts by pointer
     * into the ROB deque; they are serialized as ROB *indices* and the
     * pointers are rebuilt on restore (the ROB deque only ever grows
     * at the back and shrinks at the front, so indices are stable
     * identifiers within one serialized image).
     */
    void save(ByteWriter &w) const;

    /** Restore state saved by save() onto an identically built context. */
    void restore(ByteReader &r);

    /** ROB index of @p di, for pointer fixup (MTDAE_ASSERTs presence). */
    std::size_t robIndexOf(const DynInst *di) const;
};

} // namespace mtdae

#endif // MTDAE_CORE_CONTEXT_HH
