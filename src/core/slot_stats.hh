/**
 * @file
 * Issue-slot accounting in the paper's Figure 3 categories.
 */

#ifndef MTDAE_CORE_SLOT_STATS_HH
#define MTDAE_CORE_SLOT_STATS_HH

#include <array>
#include <cstdint>

namespace mtdae {

/** What one unit issue slot did in one cycle (paper Figure 3). */
enum class SlotUse : std::uint8_t {
    Useful,   ///< Issued an instruction.
    WaitMem,  ///< Head stalled on an operand coming from a load.
    WaitFu,   ///< Head stalled on an operand coming from an FU.
    Idle,     ///< No instruction available (wrong path or idle front end).
    Other,    ///< Structural: ports, MSHRs, issue-order gating, ...
};

/** Number of SlotUse categories. */
inline constexpr std::size_t kNumSlotUses = 5;

/** Per-unit accumulated slot usage. */
struct SlotBreakdown
{
    std::array<std::uint64_t, kNumSlotUses> counts = {};

    /** Record @p n slots of use @p u. */
    void
    add(SlotUse u, std::uint64_t n = 1)
    {
        counts[static_cast<std::size_t>(u)] += n;
    }

    /** Slots recorded in category @p u. */
    std::uint64_t
    count(SlotUse u) const
    {
        return counts[static_cast<std::size_t>(u)];
    }

    /** Total slots recorded. */
    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto c : counts)
            t += c;
        return t;
    }

    /** Fraction of slots in category @p u (0 when empty). */
    double
    fraction(SlotUse u) const
    {
        const std::uint64_t t = total();
        return t ? double(count(u)) / double(t) : 0.0;
    }

    /** Zero all categories. */
    void reset() { counts = {}; }
};

/** Display label of a category. */
inline const char *
slotUseName(SlotUse u)
{
    switch (u) {
      case SlotUse::Useful:  return "useful";
      case SlotUse::WaitMem: return "wait-mem";
      case SlotUse::WaitFu:  return "wait-fu";
      case SlotUse::Idle:    return "idle/wrong-path";
      case SlotUse::Other:   return "other";
    }
    return "?";
}

} // namespace mtdae

#endif // MTDAE_CORE_SLOT_STATS_HH
