#include "core/simulator.hh"

#include <chrono>

#include "common/log.hh"

namespace mtdae {

Simulator::Simulator(const SimConfig &cfg,
                     std::vector<std::unique_ptr<TraceSource>> sources)
    : cfg_(cfg),
      mem_(cfg),
      fetchPolicy_(makeFetchPolicy(cfg)),
      issuePolicy_(makeArbitrationPolicy(cfg))
{
    cfg_.validate();
    MTDAE_ASSERT(sources.size() == cfg_.numThreads,
                 "need exactly one trace source per hardware context (",
                 sources.size(), " given, ", cfg_.numThreads, " threads)");
    for (ThreadId t = 0; t < cfg_.numThreads; ++t)
        contexts_.push_back(
            std::make_unique<Context>(t, cfg_, std::move(sources[t])));
    threadStates_.resize(cfg_.numThreads);
    threadStateAt_.resize(cfg_.numThreads, 0);
    reasonsScratch_.reserve(cfg_.numThreads);
}

void
Simulator::refreshThreadStates()
{
    for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
        Context &ctx = *contexts_[t];
        // A clean entry is reusable when it was stamped this very cycle
        // or when its only time-dependent input — the fetch-redirect
        // gate `now >= fetchResumeAt` — was already open at stamp time
        // (it can then never close without a field mutation, which
        // would have set policyDirty).
        if (!ctx.policyDirty && (threadStateAt_[t] == now_ ||
                                 ctx.fetchResumeAt <= threadStateAt_[t]))
            continue;
        threadStates_[t] = ctx.policyState(cfg_, now_);
        threadStateAt_[t] = now_;
        ctx.policyDirty = false;
    }
}

const std::vector<ThreadState> &
Simulator::snapshotThreads()
{
#if MTDAE_PROFILE
    if (profileEnabled_) {
        const auto t0 = std::chrono::steady_clock::now();
        refreshThreadStates();
        snapNs_ += std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        return threadStates_;
    }
#endif
    refreshThreadStates();
    return threadStates_;
}

bool
Simulator::threadStateCacheCoherent() const
{
    for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
        const Context &ctx = *contexts_[t];
        if (ctx.policyDirty)
            continue;  // would recompute: nothing cached to check
        if (threadStateAt_[t] != now_ &&
            ctx.fetchResumeAt > threadStateAt_[t])
            continue;  // would recompute (redirect gate may reopen)
        if (!(threadStates_[t] == ctx.policyState(cfg_, now_)))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Completion (writeback)
// ---------------------------------------------------------------------

void
Simulator::processCompletions()
{
    while (!events_.empty() && events_.top().at <= now_) {
        const Event ev = events_.top();
        events_.pop();
        DynInst *di = ev.inst;
        Context &ctx = *contexts_[ev.tid];

        MTDAE_ASSERT(di->state == InstState::Issued,
                     "completion of a non-issued instruction");
        di->state = InstState::Completed;

        if (di->ti.dst.valid())
            ctx.file(di->ti.dst.cls).setReady(di->physDst);

        if (di->loadMissed) {
            ctx.perceived.close(di->missToken);
            ctx.policyDirty = true;  // outstandingMisses changed
        }

        if (di->isCondBr()) {
            MTDAE_ASSERT(ctx.unresolvedBranches > 0,
                         "branch resolution underflow");
            ctx.unresolvedBranches -= 1;
            if (di->mispredicted && ctx.fetchBlocked &&
                ctx.blockingBranchSeq == di->seq) {
                ctx.fetchBlocked = false;
                ctx.fetchResumeAt = now_ + cfg_.redirectPenalty;
            }
            ctx.policyDirty = true;  // branch count / fetch gate changed
        }
    }
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
Simulator::tryIssue(Context &ctx, DynInst &di)
{
    // Non-decoupled mode: the instruction queues are disabled, so a
    // thread issues in strict program order across both units.
    if (!cfg_.decoupled && di.seq != ctx.nextIssueSeq)
        return false;

    if (di.isStoreOp) {
        // A store issues on the AP when its *address* operands are
        // ready; the data may arrive later (possibly from the EP).
        if (!ctx.storeAddrReady(di))
            return false;
    } else {
        if (!ctx.operandsReady(di))
            return false;
    }

    Cycle ready_at;
    if (di.isLoadOp) {
        if (ctx.saqForwardsFast(di.ti.addr)) {
            // Forwarded from an older store in the SAQ: no cache access.
            di.forwarded = true;
            ready_at = now_ + 1;
            forwardedLoads_ += 1;
        } else {
            const MemResult r = mem_.load(di.ti.addr, now_);
            if (!r.accepted)
                return false;  // no port / no MSHR / frame conflict
            ready_at = r.readyAt;
            if (r.miss()) {
                di.loadMissed = true;
                di.missToken =
                    ctx.perceived.open(di.ti.op == Opcode::LdI);
                ctx.file(di.ti.dst.cls).producer(di.physDst).missToken =
                    di.missToken;
                ctx.policyDirty = true;  // outstandingMisses changed
            }
        }
    } else if (di.isStoreOp) {
        // Address generation; the store's SAQ entry (back-pointer set
        // at dispatch) becomes visible to loads.
        SaqEntry *e = di.saqEntry;
        MTDAE_ASSERT(e && e->inst == &di,
                     "store issued without a SAQ entry");
        e->addrValid = true;
        e->addr = di.ti.addr;
        ctx.saqDeposit(di.ti.addr);
        ready_at = now_ + cfg_.apLatency;
    } else {
        const std::uint32_t lat =
            di.unit == Unit::AP ? cfg_.apLatency : cfg_.epLatency;
        ready_at = now_ + lat;
    }

    di.state = InstState::Issued;
    di.readyAt = ready_at;
    events_.push(Event{ready_at, ctx.tid, &di});
    if (!cfg_.decoupled)
        ctx.nextIssueSeq = di.seq + 1;
    return true;
}

std::uint32_t
Simulator::issueUnit(Unit unit, const std::vector<ThreadId> &order,
                     std::uint32_t &slots)
{
    std::uint32_t issued = 0;
    for (std::size_t i = 0; i < order.size() && slots > 0; ++i) {
        Context &ctx = *contexts_[order[i]];
        auto &queue = unit == Unit::AP ? ctx.apQ : ctx.iq;
        while (slots > 0 && !queue.empty()) {
            DynInst *di = queue.front();
            if (!tryIssue(ctx, *di))
                break;
            queue.pop_front();
            ctx.policyDirty = true;  // unit-queue occupancy changed
            slots -= 1;
            issued += 1;
        }
    }
    return issued;
}

void
Simulator::accountSlots(Unit unit, const std::vector<ThreadId> &order,
                        std::uint32_t free_slots)
{
    SlotBreakdown &bd = unit == Unit::AP ? slotsAp_ : slotsEp_;
    const std::uint32_t width =
        unit == Unit::AP ? cfg_.apUnits : cfg_.epUnits;
    bd.add(SlotUse::Useful, width - free_slots);
    if (free_slots == 0)
        return;

    // A policy returning an empty visit order would make the spreading
    // loop below divide by zero; the contract (policy.hh) requires a
    // full permutation, so fail loudly rather than skew Figure 3.
    MTDAE_ASSERT(!order.empty(),
                 "slot accounting with an empty policy visit order");

    // Classify each thread's head-of-queue stall, then spread the
    // unused slots over the classifications (paper Figure 3), walking
    // the *same* visit order the issue stage just used so the
    // attribution can never drift from the arbitration.
    std::vector<SlotUse> &reasons = reasonsScratch_;
    reasons.clear();
    for (const ThreadId t : order) {
        Context &ctx = *contexts_[t];
        auto &queue = unit == Unit::AP ? ctx.apQ : ctx.iq;
        if (queue.empty()) {
            // Nothing available: an idle or wrong-path-gated front end.
            reasons.push_back(SlotUse::Idle);
            continue;
        }
        DynInst *di = queue.front();
        if (!cfg_.decoupled && di->seq != ctx.nextIssueSeq) {
            // Gated by program order (the other unit holds the oldest).
            reasons.push_back(SlotUse::Other);
            continue;
        }
        std::uint32_t tok = PerceivedTracker::kNoToken;
        const Producer::Kind k = ctx.stallSource(*di, tok);
        if (k == Producer::Kind::Load) {
            reasons.push_back(SlotUse::WaitMem);
            // A free slot existed and the head could not issue because
            // of an outstanding load miss: one perceived stall cycle.
            if (tok != PerceivedTracker::kNoToken)
                ctx.perceived.stall(tok);
        } else if (k == Producer::Kind::Fu) {
            reasons.push_back(SlotUse::WaitFu);
        } else {
            // Operands ready but not issued: structural (cache port,
            // MSHR, frame conflict) or same-cycle dependence.
            reasons.push_back(SlotUse::Other);
        }
    }
    for (std::uint32_t s = 0; s < free_slots; ++s)
        bd.add(reasons[s % reasons.size()]);
}

void
Simulator::issueStage()
{
    // Both units' visit orders come from one pre-stage snapshot and
    // hold for the whole cycle (both passes and the slot accounting).
    const auto &threads = snapshotThreads();
    issuePolicy_->issueOrder(Unit::AP, threads, orderAp_);
    issuePolicy_->issueOrder(Unit::EP, threads, orderEp_);

    std::uint32_t slots_ap = cfg_.apUnits;
    std::uint32_t slots_ep = cfg_.epUnits;
    // Two passes so that, in non-decoupled mode, an AP instruction
    // unblocked by an EP issue this cycle (or vice versa) can still
    // dual-issue, as an in-order superscalar would.
    for (int pass = 0; pass < 2; ++pass) {
        std::uint32_t issued = 0;
        issued += issueUnit(Unit::AP, orderAp_, slots_ap);
        issued += issueUnit(Unit::EP, orderEp_, slots_ep);
        if (issued == 0)
            break;
    }
    accountSlots(Unit::AP, orderAp_, slots_ap);
    accountSlots(Unit::EP, orderEp_, slots_ep);
}

// ---------------------------------------------------------------------
// Dispatch (rename & steer)
// ---------------------------------------------------------------------

bool
Simulator::tryDispatch(Context &ctx)
{
    MTDAE_ASSERT(!ctx.fetchBuf.empty(), "dispatch from an empty buffer");
    const FetchedInst &fi = ctx.fetchBuf.front();
    const TraceInst &ti = fi.ti;
    const Unit unit = ti.unit();

    if (ctx.rob.size() >= cfg_.robEntries)
        return false;
    if (ti.op != Opcode::Nop) {
        auto &queue = unit == Unit::AP ? ctx.apQ : ctx.iq;
        const std::size_t cap =
            unit == Unit::AP ? cfg_.apQueueEntries : cfg_.iqEntries;
        if (queue.size() >= cap)
            return false;
    }
    const bool is_store = isStore(ti.op);
    if (is_store && ctx.saq.size() >= cfg_.saqEntries)
        return false;
    if (ti.dst.valid() && !ctx.file(ti.dst.cls).hasFree())
        return false;

    ctx.rob.emplace_back();
    DynInst &di = ctx.rob.back();
    di.ti = ti;
    di.seq = fi.seq;
    di.unit = unit;
    di.isLoadOp = isLoad(ti.op);
    di.isStoreOp = is_store;
    di.dispatchedAt = now_;
    di.mispredicted = fi.mispredicted;

    for (int i = 0; i < 3; ++i)
        if (ti.src[i].valid())
            di.physSrc[i] = ctx.file(ti.src[i].cls).map(ti.src[i].idx);

    if (ti.dst.valid()) {
        RegFile &rf = ctx.file(ti.dst.cls);
        di.physDst = rf.rename(ti.dst.idx, di.oldPhysDst);
        rf.producer(di.physDst).kind = di.isLoadOp
            ? Producer::Kind::Load : Producer::Kind::Fu;
    }

    if (ti.op == Opcode::Nop) {
        // Nops retire without issuing.
        di.state = InstState::Completed;
    } else {
        auto &queue = unit == Unit::AP ? ctx.apQ : ctx.iq;
        queue.push_back(&di);
        if (is_store) {
            // Deque references are stable under push_back/pop_front, so
            // the store can keep a direct pointer to its entry for the
            // address deposit at issue (no SAQ walk).
            ctx.saq.push_back(SaqEntry{&di, di.seq, false, 0});
            di.saqEntry = &ctx.saq.back();
        }
    }

    ctx.fetchBuf.pop_front();
    ctx.policyDirty = true;  // fetch-buffer / queue / ROB occupancy
    return true;
}

void
Simulator::dispatchStage()
{
    issuePolicy_->dispatchOrder(snapshotThreads(), orderDispatch_);
    std::uint32_t budget = cfg_.dispatchWidth;
    for (std::size_t i = 0; i < orderDispatch_.size() && budget > 0;
         ++i) {
        Context &ctx = *contexts_[orderDispatch_[i]];
        while (budget > 0 && !ctx.fetchBuf.empty()) {
            if (!tryDispatch(ctx))
                break;
            budget -= 1;
        }
    }
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

bool
Simulator::ensurePending(Context &ctx)
{
    if (ctx.hasPending)
        return true;
    if (ctx.traceDone)
        return false;
    if (!ctx.source->next(ctx.pendingInst)) {
        ctx.traceDone = true;
        return false;
    }
    ctx.hasPending = true;
    return true;
}

const TraceInst *
Simulator::nextInst(Context &ctx)
{
    // Flushed instructions are older than the trace lookahead (they
    // were fetched before it), so the replay queue drains first.
    if (!ctx.replayQ.empty())
        return &ctx.replayQ.front();
    if (!ensurePending(ctx))
        return nullptr;
    return &ctx.pendingInst;
}

void
Simulator::consumeNext(Context &ctx)
{
    if (!ctx.replayQ.empty())
        ctx.replayQ.pop_front();
    else
        ctx.hasPending = false;
}

void
Simulator::flushFetchBuffer(Context &ctx)
{
    MTDAE_ASSERT(!ctx.fetchBuf.empty(), "flush of an empty fetch buffer");
    const InstSeq first = ctx.fetchBuf.front().seq;
    // Youngest first, so push_front keeps program order and lands the
    // block ahead of any earlier flush's not-yet-replayed leftovers.
    for (auto it = ctx.fetchBuf.rbegin(); it != ctx.fetchBuf.rend();
         ++it) {
        if (isCondBranch(it->ti.op)) {
            // Unwind the fetch-time speculation accounting; the branch
            // re-predicts (against the updated predictor) at replay.
            MTDAE_ASSERT(ctx.unresolvedBranches > 0,
                         "flush branch-count underflow");
            ctx.unresolvedBranches -= 1;
            if (it->mispredicted && ctx.fetchBlocked &&
                ctx.blockingBranchSeq == it->seq)
                ctx.fetchBlocked = false;  // the gate never dispatched
        }
        ctx.replayQ.push_front(it->ti);
    }
    ctx.fetchBuf.clear();
    // Replayed instructions get fresh sequence numbers; nothing
    // younger than the squashed block was ever fetched.
    ctx.nextSeq = first;
    ctx.policyDirty = true;  // buffer emptied, branch count unwound
}

void
Simulator::fetchThread(Context &ctx)
{
    // Conservative: fetching mutates the buffer, branch counts, gate
    // bits and the trace lookahead, and even a zero-instruction walk
    // can discover trace exhaustion (ensurePending sets traceDone).
    ctx.policyDirty = true;
    std::uint32_t count = 0;
    while (count < cfg_.fetchWidth &&
           ctx.fetchBuf.size() < cfg_.fetchBufferSize) {
        const TraceInst *tip = nextInst(ctx);
        if (!tip)
            break;
        const TraceInst ti = *tip;
        // Control speculation limit: cannot fetch past another
        // conditional branch while the maximum are unresolved.
        if (isCondBranch(ti.op) &&
            ctx.unresolvedBranches >= cfg_.maxUnresolvedBranches)
            break;

        FetchedInst fi;
        fi.ti = ti;
        fi.seq = ctx.nextSeq++;
        consumeNext(ctx);
        count += 1;

        bool stop = false;
        if (isCondBranch(ti.op)) {
            ctx.unresolvedBranches += 1;
            condBranches_ += 1;
            const bool predicted = ctx.predictor->predict(ti.pc);
            ctx.predictor->update(ti.pc, ti.taken);
            if (predicted != ti.taken) {
                // Trace-driven wrong path: fetch is gated until the
                // branch resolves, then redirected.
                mispredicts_ += 1;
                fi.mispredicted = true;
                ctx.fetchBlocked = true;
                ctx.blockingBranchSeq = fi.seq;
                stop = true;
            } else if (ti.taken) {
                stop = true;  // a taken branch ends the fetch block
            }
        } else if (ti.op == Opcode::Jmp) {
            stop = true;
        }

        ctx.fetchBuf.push_back(fi);
        if (stop)
            break;
    }
}

void
Simulator::fetchStage()
{
    // Gating pass, before any ordering: a flush-style policy squashes
    // the pressured threads' not-yet-dispatched buffers, handing their
    // dispatch slots to the other threads.
    bool flushed = false;
    for (const ThreadState &t : snapshotThreads()) {
        if (!contexts_[t.tid]->fetchBuf.empty() &&
            fetchPolicy_->shouldFlush(t)) {
            flushFetchBuffer(*contexts_[t.tid]);
            flushed = true;
        }
    }
    if (flushed)
        snapshotThreads();  // the squash changed the occupancies

    // The policy ranks every thread (ICOUNT by default: fewest
    // pending-dispatch instructions first over a round-robin base);
    // the first fetchThreadsPerCycle *eligible, non-vetoed* threads in
    // that order get the I-cache ports. A vetoed (gated) thread does
    // not consume a port.
    const auto &threads = threadStates_;
    fetchPolicy_->fetchOrder(threads, orderFetch_);
    std::uint32_t ports = cfg_.fetchThreadsPerCycle;
    for (const ThreadId t : orderFetch_) {
        if (ports == 0)
            break;
        if (!threads[t].fetchEligible ||
            !fetchPolicy_->mayFetch(threads[t]))
            continue;
        fetchThread(*contexts_[t]);
        ports -= 1;
    }
}

// ---------------------------------------------------------------------
// Graduation
// ---------------------------------------------------------------------

void
Simulator::graduateStage()
{
    for (auto &ctxp : contexts_) {
        Context &ctx = *ctxp;
        std::uint32_t width = cfg_.graduateWidth;
        while (width > 0 && !ctx.rob.empty()) {
            DynInst &di = ctx.rob.front();
            if (di.state != InstState::Completed)
                break;
            if (di.isStoreOp) {
                // The store leaves the SAQ and writes the cache when its
                // data is available (FP store data comes from the EP).
                if (!ctx.storeDataReady(di))
                    break;
                const MemResult r = mem_.store(di.ti.addr, now_);
                if (!r.accepted)
                    break;  // port/MSHR pressure: retry next cycle
                MTDAE_ASSERT(!ctx.saq.empty() &&
                             ctx.saq.front().inst == &di &&
                             ctx.saq.front().addrValid,
                             "SAQ out of order at graduation");
                ctx.saqWithdraw(ctx.saq.front().addr);
                di.saqEntry = nullptr;
                ctx.saq.pop_front();
            }
            if (di.oldPhysDst != kNoPhysReg)
                ctx.file(di.ti.dst.cls).release(di.oldPhysDst);
            di.state = InstState::Graduated;
            ctx.rob.pop_front();
            ctx.policyDirty = true;  // ROB occupancy changed
            ctx.graduated += 1;
            totalGraduated_ += 1;
            lastGraduation_ = now_;
            width -= 1;
        }
    }
}

// ---------------------------------------------------------------------
// Idle fast-forward
// ---------------------------------------------------------------------

bool
Simulator::canDispatch(const Context &ctx) const
{
    const FetchedInst &fi = ctx.fetchBuf.front();
    const TraceInst &ti = fi.ti;
    const Unit unit = ti.unit();

    if (ctx.rob.size() >= cfg_.robEntries)
        return false;
    if (ti.op != Opcode::Nop) {
        const auto &queue = unit == Unit::AP ? ctx.apQ : ctx.iq;
        const std::size_t cap =
            unit == Unit::AP ? cfg_.apQueueEntries : cfg_.iqEntries;
        if (queue.size() >= cap)
            return false;
    }
    if (isStore(ti.op) && ctx.saq.size() >= cfg_.saqEntries)
        return false;
    if (ti.dst.valid() && !ctx.file(ti.dst.cls).hasFree())
        return false;
    return true;
}

bool
Simulator::quiescent()
{
    // A completion due this cycle wakes the whole pipeline.
    if (!events_.empty() && events_.top().at <= now_)
        return false;

    for (const auto &ctxp : contexts_) {
        const Context &ctx = *ctxp;

        // Graduation: a Completed ROB head would graduate this cycle.
        // Even a store whose cache write would be *rejected* breaks
        // quiescence, because the attempt mutates the reject counters.
        if (!ctx.rob.empty()) {
            const DynInst &head = ctx.rob.front();
            if (head.state == InstState::Completed &&
                (!head.isStoreOp || ctx.storeDataReady(head)))
                return false;
        }

        // Issue: a unit-queue head passing its gates would issue — or,
        // for a load denied a port/MSHR, at least attempt an access and
        // mutate the memory statistics. Only the heads matter:
        // issueUnit stops a thread's unit at the first non-issuable
        // instruction, and with both heads stuck neither two-pass round
        // can unblock the other unit.
        const auto head_can_issue = [&](const DynInst *di) {
            if (!cfg_.decoupled && di->seq != ctx.nextIssueSeq)
                return false;
            return di->isStoreOp ? ctx.storeAddrReady(*di)
                                 : ctx.operandsReady(*di);
        };
        if (!ctx.apQ.empty() && head_can_issue(ctx.apQ.front()))
            return false;
        if (!ctx.iq.empty() && head_can_issue(ctx.iq.front()))
            return false;
    }

    // Front end, consulted on the same ThreadStates the real stages
    // would see. An eligible thread *vetoed* by a gating policy does
    // not break quiescence — but only while the veto is *stable*
    // (FetchPolicy::vetoStable): occupancies and outstandingMisses are
    // frozen across an idle span, but the trailing windows keep
    // evolving, so a verdict that reads them (the adaptive policy's)
    // can flip mid-span with no other state change. An unstable veto
    // breaks quiescence outright: the cycle is stepped normally, and
    // within at most kPolicyWindowCycles stepped cycles the window
    // saturates and the veto becomes stable. Crucially the unstable
    // branch must NOT peek at the thread's next instruction — the
    // stepping fetch stage never consults the trace of a vetoed
    // thread, and nextInst's lookahead caching would desynchronize the
    // trace-source state from the stepped run's.
    const auto &threads = snapshotThreads();
    for (const ThreadState &t : threads) {
        Context &ctx = *contexts_[t.tid];
        if (!ctx.fetchBuf.empty()) {
            if (fetchPolicy_->shouldFlush(t))
                return false;
            if (canDispatch(ctx))
                return false;
        }
        if (t.fetchEligible) {
            if (!fetchPolicy_->mayFetch(t)) {
                if (!fetchPolicy_->vetoStable(t))
                    return false;
                continue;
            }
            // An eligible thread still fetches nothing when the next
            // instruction is a conditional branch beyond the control
            // speculation limit — and unresolvedBranches cannot drop
            // without an issue or completion, both of which end the
            // span anyway. The peek is idempotent (it caches into
            // pendingInst exactly as the stepping fetch stage would).
            const TraceInst *tip = nextInst(ctx);
            if (tip &&
                !(isCondBranch(tip->op) &&
                  ctx.unresolvedBranches >= cfg_.maxUnresolvedBranches))
                return false;
        }
    }
    return true;
}

Cycle
Simulator::nextWakeCycle() const
{
    Cycle wake = events_.empty() ? kNoCycle : events_.top().at;

    const Cycle mem_next = mem_.nextEventCycle(now_);
    if (mem_next < wake)
        wake = mem_next;

    // A redirected thread resumes fetching at fetchResumeAt — a wake
    // source when the thread would actually have something to fetch
    // and room to put it (both frozen during quiescence). A thread the
    // gating policy would still veto wakes us only into a re-check and
    // re-skip, which conservatism permits.
    for (const auto &ctxp : contexts_) {
        const Context &ctx = *ctxp;
        if (ctx.fetchBlocked || ctx.fetchResumeAt <= now_)
            continue;
        if (ctx.replayQ.empty() && ctx.traceDone && !ctx.hasPending)
            continue;
        if (ctx.fetchBuf.size() >= cfg_.fetchBufferSize)
            continue;
        if (ctx.fetchResumeAt < wake)
            wake = ctx.fetchResumeAt;
    }
    return wake;
}

void
Simulator::idleStepStats()
{
    MTDAE_ASSERT(events_.empty() || events_.top().at > now_,
                 "completion event fired inside a fast-forwarded span");
    const auto &threads = snapshotThreads();
    issuePolicy_->issueOrder(Unit::AP, threads, orderAp_);
    issuePolicy_->issueOrder(Unit::EP, threads, orderEp_);
    // Nothing issues, so every slot is free: accountSlots classifies
    // the stalled heads and charges the perceived-latency stalls,
    // exactly as the stepped issue stage would.
    accountSlots(Unit::AP, orderAp_, cfg_.apUnits);
    accountSlots(Unit::EP, orderEp_, cfg_.epUnits);
    for (auto &ctxp : contexts_)
        ctxp->sampleWindows();
    fetchPolicy_->endCycle();
    issuePolicy_->endCycle();
    now_ += 1;
}

bool
Simulator::trySkipIdle(std::uint64_t max_cycles)
{
#if MTDAE_PROFILE
    std::chrono::steady_clock::time_point t0;
    if (profileEnabled_)
        t0 = std::chrono::steady_clock::now();
#endif
    if (!quiescent())
        return false;

    // Jump to the earliest cycle anything can happen, clamped to the
    // run-loop horizon and to the deadlock guard's firing point so a
    // wedged pipeline panics at the identical cycle either way.
    Cycle target = nextWakeCycle();
    if (max_cycles < target)
        target = max_cycles;
    const Cycle guard_at = lastGraduation_ + 1'000'001;
    if (guard_at < target)
        target = guard_at;
    if (target < now_ + 2)
        return false;  // a one-cycle jump is just a step

    MTDAE_ASSERT(events_.empty() || events_.top().at >= target,
                 "fast-forward past a pending completion event");

    const std::uint64_t total = target - now_;
    std::uint64_t n = total;

    // Phase A: the Split issue policy orders the EP by the windowed IQ
    // occupancy, which keeps evolving for up to kIqWindow cycles after
    // the last dispatch; microstep until the window saturates and the
    // visit orders become purely rotation-periodic.
    if (cfg_.issuePolicy == PolicyKind::Split) {
        std::uint64_t head =
            n < Context::kIqWindow ? n : Context::kIqWindow;
        for (; head > 0; --head, --n)
            idleStepStats();
    }

    // Phase B: with the machine state frozen, every per-cycle policy
    // consultation repeats with the rotation period (numThreads), so
    // microstep one period to measure its statistics delta, then apply
    // k more periods arithmetically.
    const std::uint64_t period = cfg_.numThreads;
    if (n >= 2 * period) {
        const std::array<std::uint64_t, kNumSlotUses> ap0 =
            slotsAp_.counts;
        const std::array<std::uint64_t, kNumSlotUses> ep0 =
            slotsEp_.counts;
        for (std::uint64_t i = 0; i < period; ++i)
            idleStepStats();
        n -= period;
        const std::uint64_t k = n / period;
        if (k > 0) {
            const std::uint64_t bulk = k * period;
            for (std::size_t u = 0; u < kNumSlotUses; ++u) {
                slotsAp_.counts[u] += (slotsAp_.counts[u] - ap0[u]) * k;
                slotsEp_.counts[u] += (slotsEp_.counts[u] - ep0[u]) * k;
            }
            // Perceived-latency stalls: accountSlots charges each
            // WaitMem-classified queue head one stall per unit per
            // cycle, independent of the visit order; the head set is
            // frozen for the whole span, so bulk cycles multiply out.
            for (const Unit unit : {Unit::AP, Unit::EP}) {
                for (auto &ctxp : contexts_) {
                    Context &ctx = *ctxp;
                    auto &queue = unit == Unit::AP ? ctx.apQ : ctx.iq;
                    if (queue.empty())
                        continue;
                    const DynInst *di = queue.front();
                    if (!cfg_.decoupled && di->seq != ctx.nextIssueSeq)
                        continue;
                    std::uint32_t tok = PerceivedTracker::kNoToken;
                    if (ctx.stallSource(*di, tok) ==
                            Producer::Kind::Load &&
                        tok != PerceivedTracker::kNoToken)
                        ctx.perceived.stall(tok, bulk);
                }
            }
            for (auto &ctxp : contexts_)
                ctxp->advanceWindows(bulk);
            fetchPolicy_->skipCycles(bulk);
            issuePolicy_->skipCycles(bulk);
            now_ += bulk;
            n -= bulk;
        }
    }

    // Phase C: remainder, so the rotations land exactly where stepping
    // would have left them at the wake cycle.
    for (; n > 0; --n)
        idleStepStats();

    // Stepping calls mem_.beginCycle at the start of every cycle; the
    // last call a stepped run would have made is at target - 1.
    // Fill recycling is idempotent and per-MSHR independent, so one
    // catch-up call leaves the hierarchy byte-identical.
    mem_.beginCycle(now_ - 1);

    cyclesSkipped_ += total;
    skipEvents_ += 1;
#if MTDAE_PROFILE
    if (profileEnabled_) {
        const std::uint64_t d = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        profile_.ns[std::size_t(Stage::Skipped)] += d;
        profile_.totalNs += d;
        profile_.cycles += total;
    }
#endif
    return true;
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

template <bool Profiled>
void
Simulator::stepImpl()
{
    // Profiled accounting: consecutive steady_clock marks tile the
    // whole step, so the stage buckets sum to totalNs exactly. Time
    // snapshotThreads spent rebuilding ThreadStates inside a stage
    // (accumulated in snapNs_) is carved out of that stage's delta and
    // credited to Stage::Snapshot.
    std::chrono::steady_clock::time_point prev;
    std::uint64_t snap_seen = 0;
    if constexpr (Profiled) {
        prev = std::chrono::steady_clock::now();
        snapNs_ = 0;
    }
    const auto mark = [&](Stage s) {
        if constexpr (Profiled) {
            const auto t = std::chrono::steady_clock::now();
            const std::uint64_t d = std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t - prev)
                    .count());
            const std::uint64_t snap_delta = snapNs_ - snap_seen;
            snap_seen = snapNs_;
            const std::uint64_t snap_credit =
                snap_delta < d ? snap_delta : d;
            profile_.ns[std::size_t(s)] += d - snap_credit;
            profile_.ns[std::size_t(Stage::Snapshot)] += snap_credit;
            profile_.totalNs += d;
            prev = t;
        } else {
            (void)s;
        }
    };

    mem_.beginCycle(now_);
    processCompletions();
    mark(Stage::Complete);
    issueStage();
    mark(Stage::Issue);
    dispatchStage();
    mark(Stage::Dispatch);
    fetchStage();
    mark(Stage::Fetch);
    graduateStage();
    mark(Stage::Graduate);
    // One windowed-statistics sample per cycle, after every stage, so
    // all of next cycle's policy consultations see the same windows.
    for (auto &ctxp : contexts_)
        ctxp->sampleWindows();
    // One rotation step per cycle, matching the historical rrIssue_/
    // rrDispatch_/rrFetch_ counters this layer replaced.
    fetchPolicy_->endCycle();
    issuePolicy_->endCycle();
    now_ += 1;
    mark(Stage::Other);
    if constexpr (Profiled)
        profile_.cycles += 1;
}

void
Simulator::step()
{
#if MTDAE_PROFILE
    if (profileEnabled_) {
        stepImpl<true>();
        return;
    }
#endif
    stepImpl<false>();
}

bool
Simulator::setProfiling(bool on)
{
    if (on && !kProfileBuilt)
        return false;  // -DMTDAE_PROFILE=OFF: instrumentation absent
    profileEnabled_ = on;
    profile_.enabled = on;
    return true;
}

bool
Simulator::allDone() const
{
    for (const auto &ctxp : contexts_) {
        const Context &ctx = *ctxp;
        if (!ctx.traceDone || ctx.hasPending || !ctx.replayQ.empty() ||
            !ctx.fetchBuf.empty() || !ctx.rob.empty())
            return false;
    }
    return true;
}

void
Simulator::resetStats()
{
    measureStart_ = now_;
    instsBase_ = totalGraduated_;
    slotsAp_.reset();
    slotsEp_.reset();
    mispredicts_ = 0;
    condBranches_ = 0;
    forwardedLoads_ = 0;
    cyclesSkipped_ = 0;
    skipEvents_ = 0;
    mem_.resetStats(now_);
    for (auto &ctxp : contexts_) {
        ctxp->graduatedBase = ctxp->graduated;
        ctxp->perceived.resetStats();
        ctxp->predictor->resetStats();
        // Interval boundary: conservatively invalidate the cached
        // ThreadStates rather than reason about resetStats side effects.
        ctxp->policyDirty = true;
    }
    profile_.reset();
    lastGraduation_ = now_;
}

void
computeQosMetrics(const std::vector<std::uint64_t> &insts,
                  const std::vector<std::uint32_t> &weights,
                  std::uint64_t cycles, RunResult &r)
{
    MTDAE_ASSERT(insts.size() == weights.size(),
                 "per-thread inst and weight vectors must match");
    const std::size_t n = insts.size();
    r.threadInsts = insts;
    r.threadSlowdown.assign(n, 0.0);
    r.weightedSpeedup = 0.0;
    r.fairnessHmean = 0.0;
    r.fairnessMaxMin = 0.0;

    std::uint64_t total = 0;
    std::uint64_t sum_w = 0;
    for (std::size_t i = 0; i < n; ++i) {
        total += insts[i];
        sum_w += weights[i];
    }
    if (n == 0 || total == 0)
        return;

    if (cycles) {
        double ws = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            ws += double(weights[i]) * double(insts[i]) / double(cycles);
        r.weightedSpeedup = ws / double(sum_w);
    }

    // Normalized progress x_i = (insts_i / total) / (w_i / sum_w):
    // 1.0 when the thread made exactly its weighted fair share of the
    // interval's progress. slowdown_i is its reciprocal.
    bool starved = false;
    bool first = true;
    double inv_sum = 0.0;
    double x_min = 0.0;
    double x_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double share = double(weights[i]) / double(sum_w);
        if (insts[i] == 0) {
            starved = true;
            continue;
        }
        const double x =
            (double(insts[i]) / double(total)) / share;
        inv_sum += 1.0 / x;
        if (first || x < x_min)
            x_min = x;
        if (first || x > x_max)
            x_max = x;
        first = false;
        r.threadSlowdown[i] = share * double(total) / double(insts[i]);
    }
    if (!starved && inv_sum > 0.0)
        r.fairnessHmean = double(n) / inv_sum;
    if (starved)
        x_min = 0.0;
    r.fairnessMaxMin = x_max > 0.0 ? x_min / x_max : 0.0;
}

RunResult
Simulator::snapshot() const
{
    RunResult r;
    r.cycles = now_ - measureStart_;
    r.insts = totalGraduated_ - instsBase_;
    r.ipc = r.cycles ? double(r.insts) / double(r.cycles) : 0.0;

    std::uint64_t fp_stalls = 0, int_stalls = 0;
    for (const auto &ctxp : contexts_) {
        const PerceivedTracker &p = ctxp->perceived;
        fp_stalls += p.fpStalls();
        int_stalls += p.intStalls();
        r.fpMisses += p.fpMisses();
        r.intMisses += p.intMisses();
    }
    r.perceivedFp = r.fpMisses ? double(fp_stalls) / r.fpMisses : 0.0;
    r.perceivedInt = r.intMisses ? double(int_stalls) / r.intMisses : 0.0;
    const std::uint64_t misses = r.fpMisses + r.intMisses;
    r.perceivedAll =
        misses ? double(fp_stalls + int_stalls) / misses : 0.0;

    const MemStats &ms = mem_.stats();
    r.loadMissRatio = ms.loadMiss.value();
    r.storeMissRatio = ms.storeMiss.value();
    r.missRatio = ms.missRatio();
    const std::uint64_t accesses = ms.loadMiss.den + ms.storeMiss.den;
    r.mergedRatio =
        accesses ? double(ms.mergedMisses) / accesses : 0.0;
    r.busUtilization = mem_.busUtilization(now_);
    r.avgFillLatency = ms.avgFillLatency();
    r.l2MissRatio = mem_.l2Stats().miss.value();
    r.dramRowHitRatio = mem_.dramStats().rowHit.value();
    r.dramBusUtilization = mem_.dramBusUtilization(now_);

    r.ap = slotsAp_;
    r.ep = slotsEp_;
    r.mispredictRate =
        condBranches_ ? double(mispredicts_) / condBranches_ : 0.0;
    r.cyclesSkipped = cyclesSkipped_;
    r.skipEvents = skipEvents_;
    r.profile = profile_;

    std::vector<std::uint64_t> thread_insts;
    std::vector<std::uint32_t> thread_weights;
    thread_insts.reserve(contexts_.size());
    thread_weights.reserve(contexts_.size());
    for (const auto &ctxp : contexts_) {
        thread_insts.push_back(ctxp->graduated - ctxp->graduatedBase);
        thread_weights.push_back(cfg_.threadWeight(ctxp->tid));
    }
    computeQosMetrics(thread_insts, thread_weights, r.cycles, r);
    return r;
}

namespace {

/** Deadlock guard shared by the run loops. */
void
guardProgress(Cycle now, Cycle last_graduation)
{
    if (now - last_graduation > 1000000)
        MTDAE_PANIC("no graduation for 1M cycles at cycle ", now,
                    " — pipeline deadlock");
}

} // namespace

void
Simulator::runWarmup(std::uint64_t max_cycles)
{
    while (totalGraduated_ < cfg_.warmupInsts && now_ < max_cycles &&
           !allDone()) {
        if (!skipProbeDue() || !trySkipIdle(max_cycles))
            step();
        guardProgress(now_, lastGraduation_);
    }
}

RunResult
Simulator::runMeasure(std::uint64_t measure_insts, std::uint64_t max_cycles)
{
    resetStats();
    const std::uint64_t target = totalGraduated_ + measure_insts;
    while (totalGraduated_ < target && now_ < max_cycles && !allDone()) {
        if (!skipProbeDue() || !trySkipIdle(max_cycles))
            step();
        guardProgress(now_, lastGraduation_);
    }
    return snapshot();
}

RunResult
Simulator::run(std::uint64_t measure_insts, std::uint64_t max_cycles)
{
    runWarmup(max_cycles);
    return runMeasure(measure_insts, max_cycles);
}

} // namespace mtdae
