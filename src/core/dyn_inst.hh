/**
 * @file
 * DynInst: a dynamic instruction in flight, living in its thread's
 * reorder buffer from dispatch to graduation.
 */

#ifndef MTDAE_CORE_DYN_INST_HH
#define MTDAE_CORE_DYN_INST_HH

#include <array>

#include "common/types.hh"
#include "isa/inst.hh"

namespace mtdae {

struct SaqEntry;

/** Lifecycle of a dynamic instruction. */
enum class InstState : std::uint8_t {
    Dispatched,  ///< Renamed, waiting in a unit queue.
    Issued,      ///< Executing on a functional unit / memory access.
    Completed,   ///< Result produced; waiting to graduate in order.
    Graduated,   ///< Retired.
};

/**
 * One in-flight instruction. Owned by the per-thread ROB (a deque whose
 * element references are stable under push_back/pop_front); the unit
 * queues hold pointers into it.
 *
 * Field order is hot-loop-conscious: everything tryIssue reads per
 * queue-head scan (seq, state, the renamed registers, the cached opcode
 * classification, the SAQ back-pointer) sits in the first cache line;
 * the full trace record and the stats-only fields follow.
 */
struct DynInst
{
    InstSeq seq = 0;           ///< Per-thread program order.
    SaqEntry *saqEntry = nullptr;  ///< This store's SAQ slot (stores only).

    PhysReg physDst = kNoPhysReg;     ///< Renamed destination.
    PhysReg oldPhysDst = kNoPhysReg;  ///< Previous mapping (freed at grad).
    std::array<PhysReg, 3> physSrc = {kNoPhysReg, kNoPhysReg,
                                      kNoPhysReg};  ///< Renamed sources.

    Unit unit = Unit::AP;      ///< Steered processing unit.
    InstState state = InstState::Dispatched;
    bool isLoadOp = false;     ///< Cached isLoad(ti.op) (set at dispatch).
    bool isStoreOp = false;    ///< Cached isStore(ti.op) (set at dispatch).
    bool mispredicted = false; ///< Conditional branch mispredicted.
    bool loadMissed = false;   ///< Load that missed in the L1.
    bool forwarded = false;    ///< Load satisfied by SAQ forwarding.
    std::uint32_t missToken = 0xffffffffu;  ///< Perceived-latency token.

    Cycle readyAt = kNoCycle;  ///< Completion cycle, known at issue.
    Cycle dispatchedAt = 0;    ///< Dispatch cycle (debug/stats).
    TraceInst ti;              ///< The trace record.

    /** True for conditional branches (unresolved-branch bookkeeping). */
    bool isCondBr() const { return isCondBranch(ti.op); }
};

} // namespace mtdae

#endif // MTDAE_CORE_DYN_INST_HH
