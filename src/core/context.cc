#include "core/context.hh"

#include "common/log.hh"
#include "common/serialize.hh"

namespace mtdae {

namespace {

void
saveTraceInst(ByteWriter &w, const TraceInst &ti)
{
    w.u8(std::uint8_t(ti.op));
    w.u8(std::uint8_t(ti.dst.cls));
    w.u8(ti.dst.idx);
    for (const RegRef &s : ti.src) {
        w.u8(std::uint8_t(s.cls));
        w.u8(s.idx);
    }
    w.u64(ti.pc);
    w.u64(ti.addr);
    w.b(ti.taken);
}

TraceInst
restoreTraceInst(ByteReader &r)
{
    TraceInst ti;
    ti.op = Opcode(r.u8());
    ti.dst.cls = RegClass(r.u8());
    ti.dst.idx = r.u8();
    for (RegRef &s : ti.src) {
        s.cls = RegClass(r.u8());
        s.idx = r.u8();
    }
    ti.pc = r.u64();
    ti.addr = r.u64();
    ti.taken = r.b();
    return ti;
}

void
saveDynInst(ByteWriter &w, const DynInst &di)
{
    saveTraceInst(w, di.ti);
    w.u64(di.seq);
    w.u8(std::uint8_t(di.unit));
    w.u8(std::uint8_t(di.state));
    w.u16(di.physDst);
    w.u16(di.oldPhysDst);
    for (const PhysReg p : di.physSrc)
        w.u16(p);
    w.u64(di.dispatchedAt);
    w.u64(di.readyAt);
    w.b(di.mispredicted);
    w.b(di.loadMissed);
    w.b(di.forwarded);
    w.u32(di.missToken);
}

void
restoreDynInst(ByteReader &r, DynInst &di)
{
    di.ti = restoreTraceInst(r);
    di.seq = r.u64();
    di.unit = Unit(r.u8());
    di.state = InstState(r.u8());
    di.physDst = r.u16();
    di.oldPhysDst = r.u16();
    for (PhysReg &p : di.physSrc)
        p = r.u16();
    di.dispatchedAt = r.u64();
    di.readyAt = r.u64();
    di.mispredicted = r.b();
    di.loadMissed = r.b();
    di.forwarded = r.b();
    di.missToken = r.u32();
    // Derived fields, not part of the byte stream: the opcode class is
    // recomputed and the SAQ back-pointer is rebuilt by Context::restore
    // once the SAQ itself exists.
    di.isLoadOp = isLoad(di.ti.op);
    di.isStoreOp = isStore(di.ti.op);
    di.saqEntry = nullptr;
}

} // namespace

RegFile::RegFile(std::uint32_t arch_regs, std::uint32_t phys_regs)
    : ready_(phys_regs, 1),
      producer_(phys_regs),
      map_(arch_regs)
{
    MTDAE_ASSERT(phys_regs > arch_regs,
                 "need more physical than architectural registers");
    // Architectural register i starts mapped to physical i, ready.
    for (std::uint32_t i = 0; i < arch_regs; ++i)
        map_[i] = PhysReg(i);
    freeList_.reserve(phys_regs - arch_regs);
    // Pop from the back: hand out the lowest-numbered registers first.
    for (std::uint32_t i = phys_regs; i > arch_regs; --i)
        freeList_.push_back(PhysReg(i - 1));
}

PhysReg
RegFile::rename(std::uint8_t arch, PhysReg &old_phys)
{
    MTDAE_ASSERT(!freeList_.empty(), "rename with an empty free list");
    const PhysReg fresh = freeList_.back();
    freeList_.pop_back();
    old_phys = map_.at(arch);
    map_.at(arch) = fresh;
    ready_.at(fresh) = 0;
    producer_.at(fresh) = Producer{};
    return fresh;
}

void
RegFile::release(PhysReg r)
{
    MTDAE_ASSERT(r < ready_.size(), "release of a bad physical register");
    ready_.at(r) = 1;
    producer_.at(r) = Producer{};
    freeList_.push_back(r);
}

Context::Context(ThreadId id, const SimConfig &cfg,
                 std::unique_ptr<TraceSource> src)
    : tid(id),
      source(std::move(src)),
      predictor(makePredictor(cfg)),
      intRegs(SimConfig::kArchIntRegs, cfg.apPhysRegs),
      fpRegs(SimConfig::kArchFpRegs, cfg.epPhysRegs)
{
    MTDAE_ASSERT(source, "context without a trace source");
}

bool
Context::operandsReady(const DynInst &di) const
{
    for (int i = 0; i < 3; ++i) {
        if (!di.ti.src[i].valid())
            continue;
        if (!file(di.ti.src[i].cls).ready(di.physSrc[i]))
            return false;
    }
    return true;
}

bool
Context::storeAddrReady(const DynInst &di) const
{
    // src[0] is the address register of both StI and StF.
    if (!di.ti.src[0].valid())
        return true;
    return file(di.ti.src[0].cls).ready(di.physSrc[0]);
}

bool
Context::storeDataReady(const DynInst &di) const
{
    // src[1] is the data register of both StI and StF.
    if (!di.ti.src[1].valid())
        return true;
    return file(di.ti.src[1].cls).ready(di.physSrc[1]);
}

Producer::Kind
Context::stallSource(const DynInst &di, std::uint32_t &tok) const
{
    tok = PerceivedTracker::kNoToken;
    Producer::Kind kind = Producer::Kind::None;
    for (int i = 0; i < 3; ++i) {
        if (!di.ti.src[i].valid())
            continue;
        // Stores stall at issue only on their address operand.
        if (di.isStoreOp && i != 0)
            continue;
        const RegFile &rf = file(di.ti.src[i].cls);
        if (rf.ready(di.physSrc[i]))
            continue;
        const Producer &p = rf.producer(di.physSrc[i]);
        // Prefer reporting a load-miss producer: it carries the token
        // the perceived-latency metric needs.
        if (p.kind == Producer::Kind::Load) {
            kind = Producer::Kind::Load;
            if (p.missToken != PerceivedTracker::kNoToken) {
                tok = p.missToken;
                return kind;
            }
        } else if (kind == Producer::Kind::None) {
            kind = p.kind;
        }
    }
    return kind;
}

void
Context::sampleWindows()
{
    std::uint32_t &slot = iqSamples[iqSampleAt];
    const std::uint32_t evicted = slot;
    iqWindowSum -= slot;
    slot = std::uint32_t(iq.size());
    iqWindowSum += slot;
    iqSampleAt = (iqSampleAt + 1) % kIqWindow;
    // The windows feed ThreadState::iqOccupancyWindow / ::missWindow;
    // an unchanged sum keeps the cached snapshot valid.
    if (slot != evicted)
        policyDirty = true;

    const std::uint32_t cur = perceived.outstanding();
    if (cur != missCountedFor) {
        // Outstanding changed since the count was last taken: recount
        // the slots equal to the new value. The recount can flip the
        // uniformity observable even when no slot is rewritten.
        missCountedFor = cur;
        missSlotsAtCur = 0;
        for (const std::uint32_t s : missSamples)
            if (s == cur)
                ++missSlotsAtCur;
        policyDirty = true;
    }
    std::uint32_t &mslot = missSamples[missSampleAt];
    const std::uint32_t mevicted = mslot;
    missWindowSum -= mslot;
    if (mevicted == cur)
        --missSlotsAtCur;
    mslot = cur;
    ++missSlotsAtCur;
    missWindowSum += mslot;
    missSampleAt = (missSampleAt + 1) % kIqWindow;
    if (mslot != mevicted)
        policyDirty = true;
}

void
Context::advanceWindows(std::uint64_t n)
{
    const std::uint32_t v = std::uint32_t(iq.size());
    const std::uint32_t m = perceived.outstanding();
    if (n >= kIqWindow) {
        // Every ring slot is overwritten at least once: the windows
        // saturate at n samples of the constant values. The fill can
        // make a mixed-but-equal-sum miss ring uniform, so the
        // uniformity tracker must invalidate the cache too.
        if (iqWindowSum != v * kIqWindow || missWindowSum != m * kIqWindow ||
            missSlotsAtCur != kIqWindow || missCountedFor != m)
            policyDirty = true;
        iqSamples.fill(v);
        iqWindowSum = v * kIqWindow;
        missSamples.fill(m);
        missWindowSum = m * kIqWindow;
        missSlotsAtCur = kIqWindow;
        missCountedFor = m;
    } else {
        if (m != missCountedFor) {
            missCountedFor = m;
            missSlotsAtCur = 0;
            for (const std::uint32_t s : missSamples)
                if (s == m)
                    ++missSlotsAtCur;
            policyDirty = true;
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint32_t &slot = iqSamples[iqSampleAt];
            if (slot != v) {
                iqWindowSum += v - slot;
                slot = v;
                policyDirty = true;
            }
            iqSampleAt = (iqSampleAt + 1) % kIqWindow;
            std::uint32_t &mslot = missSamples[missSampleAt];
            if (mslot != m) {
                missWindowSum += m - mslot;
                mslot = m;
                ++missSlotsAtCur;
                policyDirty = true;
            }
            missSampleAt = (missSampleAt + 1) % kIqWindow;
        }
        return;
    }
    iqSampleAt = std::uint32_t((iqSampleAt + n) % kIqWindow);
    missSampleAt = std::uint32_t((missSampleAt + n) % kIqWindow);
}

ThreadState
Context::policyState(const SimConfig &cfg, Cycle now) const
{
    ThreadState s;
    s.tid = tid;
    s.fetchBufOccupancy = std::uint32_t(fetchBuf.size());
    s.apQueueOccupancy = std::uint32_t(apQ.size());
    s.iqOccupancy = std::uint32_t(iq.size());
    s.robOccupancy = std::uint32_t(rob.size());
    s.unresolvedBranches = unresolvedBranches;
    s.outstandingMisses = perceived.outstanding();
    s.iqOccupancyWindow = iqWindowSum;
    s.missWindow = missWindowSum;
    // The count is synced lazily at the next sample, so guard on the
    // value it was taken against; a stale count reads as non-uniform,
    // which is always a safe (conservative) answer.
    s.missWindowUniform = missCountedFor == s.outstandingMisses &&
                          missSlotsAtCur == kIqWindow;
    s.weight = cfg.threadWeight(tid);
    s.fetchEligible = !fetchBlocked && now >= fetchResumeAt &&
                      (!replayQ.empty() || !traceDone || hasPending) &&
                      fetchBuf.size() < cfg.fetchBufferSize;
    return s;
}

void
RegFile::save(ByteWriter &w) const
{
    w.u64(ready_.size());
    for (const std::uint8_t rdy : ready_)
        w.u8(rdy);
    for (const Producer &p : producer_) {
        w.u8(std::uint8_t(p.kind));
        w.u32(p.missToken);
    }
    w.u64(freeList_.size());
    for (const PhysReg r : freeList_)
        w.u16(r);
    w.u64(map_.size());
    for (const PhysReg r : map_)
        w.u16(r);
}

void
RegFile::restore(ByteReader &r)
{
    if (r.u64() != ready_.size())
        throw SnapshotError("physical register count mismatch in snapshot");
    for (std::uint8_t &rdy : ready_)
        rdy = r.u8();
    for (Producer &p : producer_) {
        p.kind = Producer::Kind(r.u8());
        p.missToken = r.u32();
    }
    freeList_.resize(r.u64());
    for (PhysReg &reg : freeList_)
        reg = r.u16();
    if (r.u64() != map_.size())
        throw SnapshotError("map table size mismatch in snapshot");
    for (PhysReg &reg : map_)
        reg = r.u16();
}

std::size_t
Context::robIndexOf(const DynInst *di) const
{
    for (std::size_t i = 0; i < rob.size(); ++i)
        if (&rob[i] == di)
            return i;
    MTDAE_PANIC("queue entry points outside its thread's ROB");
}

void
Context::save(ByteWriter &w) const
{
    source->save(w);

    w.u64(fetchBuf.size());
    for (const FetchedInst &fi : fetchBuf) {
        saveTraceInst(w, fi.ti);
        w.u64(fi.seq);
        w.b(fi.mispredicted);
    }
    w.u64(replayQ.size());
    for (const TraceInst &ti : replayQ)
        saveTraceInst(w, ti);
    saveTraceInst(w, pendingInst);
    w.b(hasPending);
    w.b(traceDone);
    w.u32(unresolvedBranches);
    w.b(fetchBlocked);
    w.u64(blockingBranchSeq);
    w.u64(fetchResumeAt);
    predictor->save(w);

    intRegs.save(w);
    fpRegs.save(w);

    w.u64(rob.size());
    for (const DynInst &di : rob)
        saveDynInst(w, di);
    w.u64(apQ.size());
    for (const DynInst *di : apQ)
        w.u64(robIndexOf(di));
    w.u64(iq.size());
    for (const DynInst *di : iq)
        w.u64(robIndexOf(di));
    w.u64(saq.size());
    for (const SaqEntry &e : saq) {
        w.u64(robIndexOf(e.inst));
        w.u64(e.seq);
        w.b(e.addrValid);
        w.u64(e.addr);
    }

    w.u64(nextSeq);
    w.u64(nextIssueSeq);
    perceived.save(w);
    w.u64(graduated);

    for (const std::uint32_t s : iqSamples)
        w.u32(s);
    w.u32(iqSampleAt);
    w.u32(iqWindowSum);

    for (const std::uint32_t s : missSamples)
        w.u32(s);
    w.u32(missSampleAt);
    w.u32(missWindowSum);
    w.u64(graduatedBase);
}

void
Context::restore(ByteReader &r)
{
    source->restore(r);

    fetchBuf.resize(r.u64());
    for (FetchedInst &fi : fetchBuf) {
        fi.ti = restoreTraceInst(r);
        fi.seq = r.u64();
        fi.mispredicted = r.b();
    }
    replayQ.resize(r.u64());
    for (TraceInst &ti : replayQ)
        ti = restoreTraceInst(r);
    pendingInst = restoreTraceInst(r);
    hasPending = r.b();
    traceDone = r.b();
    unresolvedBranches = r.u32();
    fetchBlocked = r.b();
    blockingBranchSeq = r.u64();
    fetchResumeAt = r.u64();
    predictor->restore(r);

    intRegs.restore(r);
    fpRegs.restore(r);

    rob.resize(r.u64());
    for (DynInst &di : rob)
        restoreDynInst(r, di);
    auto readRobPtr = [&]() -> DynInst * {
        const std::uint64_t idx = r.u64();
        if (idx >= rob.size())
            throw SnapshotError("ROB index out of range in snapshot");
        return &rob[std::size_t(idx)];
    };
    apQ.resize(r.u64());
    for (DynInst *&di : apQ)
        di = readRobPtr();
    iq.resize(r.u64());
    for (DynInst *&di : iq)
        di = readRobPtr();
    saq.resize(r.u64());
    for (SaqEntry &e : saq) {
        e.inst = readRobPtr();
        e.seq = r.u64();
        e.addrValid = r.b();
        e.addr = r.u64();
    }
    // Rebuild the store -> SAQ-slot back-pointers and the deposited-word
    // index (derived state; deque element references stay stable until
    // the entry is popped).
    saqWords.clear();
    for (SaqEntry &e : saq) {
        e.inst->saqEntry = &e;
        if (e.addrValid)
            saqDeposit(e.addr);
    }

    nextSeq = r.u64();
    nextIssueSeq = r.u64();
    perceived.restore(r);
    graduated = r.u64();

    for (std::uint32_t &s : iqSamples)
        s = r.u32();
    iqSampleAt = r.u32();
    iqWindowSum = r.u32();

    for (std::uint32_t &s : missSamples)
        s = r.u32();
    missSampleAt = r.u32();
    missWindowSum = r.u32();
    graduatedBase = r.u64();

    // Rebuild the derived miss-window uniformity count. Snapshots are
    // taken at cycle boundaries, where sampleWindows() has just synced
    // the count to perceived.outstanding(), so the recount reproduces
    // the continued run's tracker exactly.
    missCountedFor = perceived.outstanding();
    missSlotsAtCur = 0;
    for (const std::uint32_t s : missSamples)
        if (s == missCountedFor)
            ++missSlotsAtCur;

    policyDirty = true;
}

bool
Context::saqForwards(InstSeq load_seq, Addr load_addr) const
{
    const Addr word = load_addr >> 3;
    for (auto it = saq.rbegin(); it != saq.rend(); ++it) {
        if (it->seq >= load_seq)
            continue;
        if (it->addrValid && (it->addr >> 3) == word)
            return true;
    }
    return false;
}

} // namespace mtdae
