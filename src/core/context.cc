#include "core/context.hh"

#include "common/log.hh"

namespace mtdae {

RegFile::RegFile(std::uint32_t arch_regs, std::uint32_t phys_regs)
    : ready_(phys_regs, 1),
      producer_(phys_regs),
      map_(arch_regs)
{
    MTDAE_ASSERT(phys_regs > arch_regs,
                 "need more physical than architectural registers");
    // Architectural register i starts mapped to physical i, ready.
    for (std::uint32_t i = 0; i < arch_regs; ++i)
        map_[i] = PhysReg(i);
    freeList_.reserve(phys_regs - arch_regs);
    // Pop from the back: hand out the lowest-numbered registers first.
    for (std::uint32_t i = phys_regs; i > arch_regs; --i)
        freeList_.push_back(PhysReg(i - 1));
}

PhysReg
RegFile::rename(std::uint8_t arch, PhysReg &old_phys)
{
    MTDAE_ASSERT(!freeList_.empty(), "rename with an empty free list");
    const PhysReg fresh = freeList_.back();
    freeList_.pop_back();
    old_phys = map_.at(arch);
    map_.at(arch) = fresh;
    ready_.at(fresh) = 0;
    producer_.at(fresh) = Producer{};
    return fresh;
}

void
RegFile::release(PhysReg r)
{
    MTDAE_ASSERT(r < ready_.size(), "release of a bad physical register");
    ready_.at(r) = 1;
    producer_.at(r) = Producer{};
    freeList_.push_back(r);
}

Context::Context(ThreadId id, const SimConfig &cfg,
                 std::unique_ptr<TraceSource> src)
    : tid(id),
      source(std::move(src)),
      predictor(makePredictor(cfg)),
      intRegs(SimConfig::kArchIntRegs, cfg.apPhysRegs),
      fpRegs(SimConfig::kArchFpRegs, cfg.epPhysRegs)
{
    MTDAE_ASSERT(source, "context without a trace source");
}

bool
Context::operandsReady(const DynInst &di) const
{
    for (int i = 0; i < 3; ++i) {
        if (!di.ti.src[i].valid())
            continue;
        if (!file(di.ti.src[i].cls).ready(di.physSrc[i]))
            return false;
    }
    return true;
}

bool
Context::storeAddrReady(const DynInst &di) const
{
    // src[0] is the address register of both StI and StF.
    if (!di.ti.src[0].valid())
        return true;
    return file(di.ti.src[0].cls).ready(di.physSrc[0]);
}

bool
Context::storeDataReady(const DynInst &di) const
{
    // src[1] is the data register of both StI and StF.
    if (!di.ti.src[1].valid())
        return true;
    return file(di.ti.src[1].cls).ready(di.physSrc[1]);
}

Producer::Kind
Context::stallSource(const DynInst &di, std::uint32_t &tok) const
{
    tok = PerceivedTracker::kNoToken;
    Producer::Kind kind = Producer::Kind::None;
    for (int i = 0; i < 3; ++i) {
        if (!di.ti.src[i].valid())
            continue;
        // Stores stall at issue only on their address operand.
        if (isStore(di.ti.op) && i != 0)
            continue;
        const RegFile &rf = file(di.ti.src[i].cls);
        if (rf.ready(di.physSrc[i]))
            continue;
        const Producer &p = rf.producer(di.physSrc[i]);
        // Prefer reporting a load-miss producer: it carries the token
        // the perceived-latency metric needs.
        if (p.kind == Producer::Kind::Load) {
            kind = Producer::Kind::Load;
            if (p.missToken != PerceivedTracker::kNoToken) {
                tok = p.missToken;
                return kind;
            }
        } else if (kind == Producer::Kind::None) {
            kind = p.kind;
        }
    }
    return kind;
}

void
Context::sampleIqWindow()
{
    std::uint32_t &slot = iqSamples[iqSampleAt];
    iqWindowSum -= slot;
    slot = std::uint32_t(iq.size());
    iqWindowSum += slot;
    iqSampleAt = (iqSampleAt + 1) % kIqWindow;
}

ThreadState
Context::policyState(const SimConfig &cfg, Cycle now) const
{
    ThreadState s;
    s.tid = tid;
    s.fetchBufOccupancy = std::uint32_t(fetchBuf.size());
    s.apQueueOccupancy = std::uint32_t(apQ.size());
    s.iqOccupancy = std::uint32_t(iq.size());
    s.robOccupancy = std::uint32_t(rob.size());
    s.unresolvedBranches = unresolvedBranches;
    s.outstandingMisses = perceived.outstanding();
    s.iqOccupancyWindow = iqWindowSum;
    s.fetchEligible = !fetchBlocked && now >= fetchResumeAt &&
                      (!replayQ.empty() || !traceDone || hasPending) &&
                      fetchBuf.size() < cfg.fetchBufferSize;
    return s;
}

bool
Context::saqForwards(InstSeq load_seq, Addr load_addr) const
{
    const Addr word = load_addr >> 3;
    for (auto it = saq.rbegin(); it != saq.rend(); ++it) {
        if (it->seq >= load_seq)
            continue;
        if (it->addrValid && (it->addr >> 3) == word)
            return true;
    }
    return false;
}

} // namespace mtdae
