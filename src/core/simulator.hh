/**
 * @file
 * The multithreaded decoupled access/execute processor simulator: the
 * paper's proposed machine, cycle by cycle.
 *
 * Pipeline, evaluated once per cycle:
 *   1. memory begin-cycle (ports recycle, MSHR fills land)
 *   2. completions (writeback: wake consumers, resolve branches)
 *   3. issue (per unit, in order per thread, across threads in the
 *      ArbitrationPolicy's visit order, full simultaneous issue; slot
 *      accounting — over the same visit order — and perceived-latency
 *      attribution)
 *   4. dispatch (rename, steer to AP queue / EP Instruction Queue,
 *      allocate ROB and SAQ entries; threads visited in the
 *      ArbitrationPolicy's dispatch order)
 *   5. fetch (2 threads per cycle chosen by the FetchPolicy — ICOUNT by
 *      default — up to 8 consecutive instructions to the first taken
 *      branch; mispredicted branches gate fetch until resolution —
 *      trace-driven wrong-path modelling. Gating policies are applied
 *      here first: FetchPolicy::shouldFlush() squashes a thread's
 *      not-yet-dispatched buffer for later replay, and
 *      FetchPolicy::mayFetch() vetoes threads from the ranked walk)
 *   6. graduate (in-order retirement; stores write the cache here)
 *
 * Thread arbitration is pluggable (src/policy/policy.hh): the policies
 * are consulted once per cycle with read-only per-context snapshots,
 * selected by SimConfig::fetchPolicy / SimConfig::issuePolicy.
 */

#ifndef MTDAE_CORE_SIMULATOR_HH
#define MTDAE_CORE_SIMULATOR_HH

#include <memory>
#include <queue>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "core/context.hh"
#include "core/profile.hh"
#include "core/slot_stats.hh"
#include "memory/memory_system.hh"
#include "policy/policy.hh"

namespace mtdae {

struct Snapshot;

/**
 * Aggregated results of a measured simulation interval.
 */
struct RunResult
{
    std::uint64_t cycles = 0;  ///< Measured cycles.
    std::uint64_t insts = 0;   ///< Instructions graduated while measured.
    double ipc = 0.0;          ///< insts / cycles.

    double perceivedFp = 0.0;   ///< Avg perceived FP-load miss latency.
    double perceivedInt = 0.0;  ///< Avg perceived int-load miss latency.
    double perceivedAll = 0.0;  ///< Avg perceived latency over all misses.
    std::uint64_t fpMisses = 0;   ///< FP-load misses in the interval.
    std::uint64_t intMisses = 0;  ///< Int-load misses in the interval.

    double loadMissRatio = 0.0;   ///< L1 load miss ratio (primary).
    double storeMissRatio = 0.0;  ///< L1 store miss ratio (primary).
    double missRatio = 0.0;       ///< Combined L1 miss ratio (primary).
    double mergedRatio = 0.0;     ///< Delayed hits / all accesses.
    double busUtilization = 0.0;  ///< L1-L2 bus utilisation.

    /** Avg end-to-end L1-miss fill latency in cycles. With the perfect
     *  L2 this is ~l2Latency + transfer; with the finite backend it is
     *  the *emergent* memory latency (docs/MEMORY.md). */
    double avgFillLatency = 0.0;
    double l2MissRatio = 0.0;        ///< L2 miss ratio (finite backend).
    double dramRowHitRatio = 0.0;    ///< DRAM row-buffer hit ratio.
    double dramBusUtilization = 0.0; ///< DRAM data bus utilisation.

    SlotBreakdown ap;  ///< AP issue-slot breakdown.
    SlotBreakdown ep;  ///< EP issue-slot breakdown.

    double mispredictRate = 0.0;  ///< Conditional-branch mispredict rate.

    /** Cycles of the interval fast-forwarded by the idle skip engine
     *  (a subset of cycles; 0 with --cycle-skip=off). Observability
     *  only: excluded from every byte-identity comparison, because the
     *  simulated statistics are identical either way. */
    std::uint64_t cyclesSkipped = 0;
    /** Quiescent spans fast-forwarded (trySkipIdle successes). */
    std::uint64_t skipEvents = 0;

    /** Per-stage wall-clock breakdown of the measured interval. All
     *  zeros (enabled == false) unless Simulator::setProfiling(true)
     *  was in force; wall-clock measurement, never part of any
     *  byte-identity comparison. */
    StageProfile profile;

    // --- Per-thread QoS / fairness metrics (docs/POLICIES.md) --------
    /** Instructions each thread graduated in the interval (indexed by
     *  tid; insts == sum of this vector). */
    std::vector<std::uint64_t> threadInsts;
    /**
     * Per-thread slowdown relative to the thread's weighted fair share:
     * (w_i / sum_w) * total_insts / insts_i. Exactly 1.0 for every
     * thread when progress is proportional to weight; > 1 for threads
     * receiving less than their share; 0 when the thread graduated
     * nothing (no meaningful slowdown is defined).
     */
    std::vector<double> threadSlowdown;
    /** Weight-averaged per-thread IPC: sum(w_i * insts_i / cycles) /
     *  sum_w. Equals ipc / numThreads-mean under uniform weights. */
    double weightedSpeedup = 0.0;
    /**
     * Harmonic mean of the per-thread normalized progress x_i =
     * (insts_i / total_insts) / (w_i / sum_w). 1.0 at perfectly
     * weight-proportional progress, pulled toward 0 by any starved
     * thread; exactly 0 when some thread graduated nothing.
     */
    double fairnessHmean = 0.0;
    /** min(x_i) / max(x_i) over the same normalized progress: the
     *  max-min fairness ratio in [0, 1]. */
    double fairnessMaxMin = 0.0;
};

/**
 * Compute the QoS metrics above from per-thread interval instruction
 * counts, per-thread weights (same length) and the interval cycle
 * count, filling RunResult::threadInsts, ::threadSlowdown,
 * ::weightedSpeedup, ::fairnessHmean and ::fairnessMaxMin of @p r.
 * Free function so tests can check the arithmetic against hand-computed
 * values without running a simulation.
 */
void computeQosMetrics(const std::vector<std::uint64_t> &insts,
                       const std::vector<std::uint32_t> &weights,
                       std::uint64_t cycles, RunResult &r);

/**
 * The simulated processor. Owns the memory system and one Context per
 * hardware thread; trace sources are supplied at construction.
 */
class Simulator
{
  public:
    /**
     * @param cfg     machine configuration (validated here)
     * @param sources one trace source per hardware context
     */
    Simulator(const SimConfig &cfg,
              std::vector<std::unique_ptr<TraceSource>> sources);

    /**
     * Run the warm-up (cfg.warmupInsts), reset statistics, then run until
     * @p measure_insts more instructions graduate (or all traces end, or
     * @p max_cycles elapse).
     */
    RunResult run(std::uint64_t measure_insts,
                  std::uint64_t max_cycles = std::uint64_t(1) << 40);

    /**
     * Run just the warm-up phase (cfg.warmupInsts graduations). run()
     * is exactly runWarmup() followed by runMeasure(), split out so the
     * sweep engine can checkpoint between the phases.
     */
    void runWarmup(std::uint64_t max_cycles = std::uint64_t(1) << 40);

    /** Reset statistics and run the measured interval (see run()). */
    RunResult runMeasure(std::uint64_t measure_insts,
                         std::uint64_t max_cycles = std::uint64_t(1) << 40);

    /**
     * Capture the complete mutable simulator state as a versioned
     * snapshot (src/core/snapshot.hh). Restoring it into a Simulator
     * constructed from the same configuration and workload recipe
     * resumes the simulation byte-identically.
     */
    Snapshot saveSnapshot() const;

    /**
     * Restore state captured by saveSnapshot(). This simulator must
     * have been constructed with the same configuration (enforced via
     * the snapshot's config hash) and the same workload; throws
     * SnapshotError otherwise.
     */
    void restoreSnapshot(const Snapshot &snap);

    /** Advance one cycle (exposed for unit tests). */
    void step();

    /**
     * Enable or disable per-stage wall-clock profiling (core/profile.hh).
     * The accumulated breakdown is cleared by resetStats() and reported
     * in RunResult::profile, so after run() it covers exactly the
     * measured interval.
     *
     * @return false when @p on is true but the instrumentation was
     *         compiled out (-DMTDAE_PROFILE=OFF); profiling stays off
     */
    bool setProfiling(bool on);

    /** True when profiling is compiled in and currently enabled. */
    bool profilingEnabled() const { return profileEnabled_; }

    /**
     * Coherence check for the incremental ThreadState cache (test
     * hook): every cached snapshot the next snapshotThreads() would
     * serve without recomputing must equal a fresh
     * Context::policyState(). O(threads); call it between step()s.
     */
    bool threadStateCacheCoherent() const;

    /** Current cycle. */
    Cycle now() const { return now_; }

    /** Begin a fresh statistics interval at the current cycle. */
    void resetStats();

    /** Snapshot the statistics interval ending now. */
    RunResult snapshot() const;

    /** Total instructions graduated since construction. */
    std::uint64_t totalGraduated() const { return totalGraduated_; }

    /** True when every thread's trace is exhausted and drained. */
    bool allDone() const;

    /** Per-thread state (tests and detailed reporting). */
    Context &context(ThreadId t) { return *contexts_.at(t); }
    /** Per-thread state (const). */
    const Context &context(ThreadId t) const { return *contexts_.at(t); }

    /** The memory hierarchy. */
    const MemorySystem &memory() const { return mem_; }

    /** The configuration in force. */
    const SimConfig &config() const { return cfg_; }

    /** The fetch arbitration policy in force. */
    const FetchPolicy &fetchPolicy() const { return *fetchPolicy_; }

    /** The dispatch/issue arbitration policy in force. */
    const ArbitrationPolicy &issuePolicy() const { return *issuePolicy_; }

  private:
    struct Event
    {
        Cycle at;
        ThreadId tid;
        DynInst *inst;

        bool
        operator>(const Event &o) const
        {
            return at > o.at;
        }
    };

    /**
     * The completion event queue, exposing the underlying heap array
     * for checkpointing: serializing the array verbatim (instead of
     * draining/re-pushing) preserves the exact heap layout, so
     * same-cycle tie-breaks — and therefore the simulation — are
     * byte-identical after a restore, and save→restore→save round
     * trips are byte-stable.
     */
    struct EventQueue
        : std::priority_queue<Event, std::vector<Event>,
                              std::greater<Event>>
    {
        const std::vector<Event> &heap() const { return c; }
        std::vector<Event> &heap() { return c; }
    };

    void processCompletions();
    void issueStage();
    /** @return instructions issued; decrements @p slots. */
    std::uint32_t issueUnit(Unit unit, const std::vector<ThreadId> &order,
                            std::uint32_t &slots);
    bool tryIssue(Context &ctx, DynInst &di);
    void accountSlots(Unit unit, const std::vector<ThreadId> &order,
                      std::uint32_t free_slots);
    void dispatchStage();
    bool tryDispatch(Context &ctx);
    void fetchStage();
    void fetchThread(Context &ctx);
    bool ensurePending(Context &ctx);
    /** Next instruction in program order (replayed flushes first,
     *  then the trace lookahead); null when the thread is drained. */
    const TraceInst *nextInst(Context &ctx);
    /** Consume the instruction nextInst() returned. */
    void consumeNext(Context &ctx);
    /**
     * Squash @p ctx's not-yet-dispatched fetch buffer (the flush
     * gating policy): the buffered instructions move to the front of
     * the thread's replay queue for later re-fetch, fetch-time branch
     * bookkeeping is unwound, and the sequence counter rewinds to the
     * first squashed instruction (nothing younger was ever fetched).
     */
    void flushFetchBuffer(Context &ctx);
    void graduateStage();

    /** step() body; Profiled selects the timing instrumentation. */
    template <bool Profiled> void stepImpl();

    // --- Idle fast-forward engine (cfg_.cycleSkip) ---------------------
    /**
     * True when stepping the current cycle could not change any
     * simulated state except the per-cycle bookkeeping idleStepStats()
     * reproduces: no completion event is due, no ROB head can graduate,
     * no queue head can issue (or attempt a memory access), no thread
     * can dispatch, fetch or flush. Conservative: any doubt returns
     * false and the cycle is stepped normally.
     */
    bool quiescent();
    /** Side-effect-free mirror of tryDispatch's resource checks. */
    bool canDispatch(const Context &ctx) const;
    /**
     * Earliest cycle after now_ at which quiescence could end: the
     * completion-event head, the memory system's next event, and every
     * gated thread's fetchResumeAt. kNoCycle when nothing is pending.
     */
    Cycle nextWakeCycle() const;
    /**
     * One cycle of quiescent bookkeeping, byte-identical to stepImpl on
     * a quiescent cycle: slot accounting + perceived stalls over the
     * policy issue orders, IQ-window sampling, policy endCycle()s,
     * now_ advance. No stage logic runs — quiescence means none would
     * do anything.
     */
    void idleStepStats();
    /**
     * Fast-forward a quiescent span: when quiescent(), advance now_ and
     * every cycle-indexed statistic to min(next wake, @p max_cycles,
     * deadlock-guard horizon) without evaluating the pipeline stages.
     * Byte-identical to stepping the same span.
     *
     * @return true when at least one cycle was skipped (the run loop
     *         skips its step() for this iteration)
     */
    bool trySkipIdle(std::uint64_t max_cycles);
    /**
     * Cheap gate in front of the quiescence probe: an idle span cannot
     * contain a graduation, so a recent graduation means the pipeline
     * is busy and the full quiescent() scan would be wasted work. The
     * price is at most two stepped cycles at the head of each span.
     */
    bool
    skipProbeDue() const
    {
        return cfg_.cycleSkip && now_ >= lastGraduation_ + 2;
    }

    /**
     * Hand the policy layer its per-context snapshots, recomputing only
     * threads whose Context::policyDirty flag is set (or whose cached
     * fetch-redirect gate could have reopened since it was stamped);
     * every other thread's entry is served from threadStates_ as-is.
     */
    const std::vector<ThreadState> &snapshotThreads();

    /** The recompute loop of snapshotThreads (un-instrumented). */
    void refreshThreadStates();

    SimConfig cfg_;
    MemorySystem mem_;
    std::vector<std::unique_ptr<Context>> contexts_;
    EventQueue events_;

    Cycle now_ = 0;

    // Thread arbitration (src/policy/policy.hh) and its per-stage
    // scratch: the state snapshots handed to the policies and the
    // visit orders they produce (reused to avoid per-cycle allocation).
    std::unique_ptr<FetchPolicy> fetchPolicy_;
    std::unique_ptr<ArbitrationPolicy> issuePolicy_;
    std::vector<ThreadState> threadStates_;
    /** Cycle each threadStates_ entry was computed at (cache stamps). */
    std::vector<Cycle> threadStateAt_;
    std::vector<ThreadId> orderAp_;
    std::vector<ThreadId> orderEp_;
    std::vector<ThreadId> orderDispatch_;
    std::vector<ThreadId> orderFetch_;
    /** accountSlots' per-cycle stall classifications (reused scratch). */
    std::vector<SlotUse> reasonsScratch_;

    // Per-stage wall-clock profiling (core/profile.hh).
    bool profileEnabled_ = false;
    StageProfile profile_;
    /** Nanoseconds snapshotThreads spent within the current stage
     *  interval; stepImpl<true> carves it out into Stage::Snapshot. */
    std::uint64_t snapNs_ = 0;

    // Statistics for the current interval.
    SlotBreakdown slotsAp_;
    SlotBreakdown slotsEp_;
    std::uint64_t totalGraduated_ = 0;
    Cycle measureStart_ = 0;
    std::uint64_t instsBase_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t condBranches_ = 0;
    std::uint64_t forwardedLoads_ = 0;
    Cycle lastGraduation_ = 0;
    /** Cycles fast-forwarded in this interval (RunResult::cyclesSkipped);
     *  interval statistics like slotsAp_, not simulated state — never
     *  serialized into snapshots. */
    std::uint64_t cyclesSkipped_ = 0;
    /** Spans fast-forwarded in this interval (RunResult::skipEvents). */
    std::uint64_t skipEvents_ = 0;
};

} // namespace mtdae

#endif // MTDAE_CORE_SIMULATOR_HH
