/**
 * @file
 * The checkpoint/warm-start subsystem: a versioned, byte-exact capture
 * of the *complete* mutable simulator state — every Context (fetch
 * buffer, replay queue, ROB/IQ/AP-queue/SAQ contents, rename tables,
 * branch bookkeeping, sequence counters), the perceived-latency
 * trackers, the branch predictor tables, the L1/L2/DRAM hierarchy
 * (tags, LRU, dirty bits, MSHRs, bank row buffers, bus reservations),
 * the trace sources' RNG streams and read positions, the completion
 * event queue, the arbitration policies' rotations, and the statistics
 * counters.
 *
 * Contract: restoring a snapshot into a Simulator constructed from the
 * same SimConfig and the same workload recipe resumes the simulation
 * *byte-identically* — stepping the restored simulator produces exactly
 * the state sequence of the uninterrupted original (tests/
 * test_checkpoint.cc proves this at arbitrary cycles across both
 * memory backends and every policy pair).
 *
 * Serialized container layout (all little-endian; docs/CHECKPOINT.md):
 *
 *     u32  magic      'MTSS'
 *     u32  version    kSnapshotVersion
 *     u64  configHash configFingerprint() of the producing SimConfig
 *     u64  payloadLen
 *     ...  payload    the component state, in a fixed traversal order
 *     u64  checksum   FNV-1a over the payload bytes
 *
 * The version covers the payload encoding: any change to a component's
 * save()/restore() or to the traversal order must bump
 * kSnapshotVersion. Mismatched magic/version/length/checksum and
 * mismatched config hashes throw SnapshotError — a snapshot is input,
 * not simulator state, so rejection is an exception, never a panic.
 */

#ifndef MTDAE_CORE_SNAPSHOT_HH
#define MTDAE_CORE_SNAPSHOT_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/serialize.hh"

namespace mtdae {

/** Container magic: "MTSS" (mtdae simulator snapshot). */
inline constexpr std::uint32_t kSnapshotMagic = 0x4d545353u;

/** Payload-encoding version; bump on any serialized-format change. */
inline constexpr std::uint32_t kSnapshotVersion = 2;

/**
 * A captured simulator state: the config fingerprint it belongs to and
 * the opaque component payload. Produced by Simulator::saveSnapshot(),
 * consumed by Simulator::restoreSnapshot(); toBytes()/fromBytes() are
 * the explicit versioned wire form.
 */
struct Snapshot
{
    std::uint64_t configHash = 0;
    std::vector<std::uint8_t> payload;

    /** Serialize to the versioned, checksummed container form. */
    std::vector<std::uint8_t> toBytes() const;

    /**
     * Parse a container produced by toBytes().
     * @throws SnapshotError on bad magic, unsupported version,
     *         truncation, trailing bytes or checksum mismatch
     */
    static Snapshot fromBytes(const std::vector<std::uint8_t> &bytes);
};

/**
 * Serialize every SimConfig field, in declaration order, into @p w.
 * The canonical byte form behind configFingerprint(); also the basis
 * of the warm-start prefix key (src/harness/sweep.hh).
 */
void serializeConfig(const SimConfig &cfg, ByteWriter &w);

/**
 * Canonical hash of a full configuration (FNV-1a over
 * serializeConfig()). Equal fingerprints mean identically constructed
 * simulators, which is what makes restoring a snapshot into a freshly
 * built Simulator sound: all construction-derived state (table sizes,
 * stream layouts, policy objects) is a pure function of the config and
 * workload, so only mutable state needs to travel in the payload.
 */
std::uint64_t configFingerprint(const SimConfig &cfg);

} // namespace mtdae

#endif // MTDAE_CORE_SNAPSHOT_HH
