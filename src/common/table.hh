/**
 * @file
 * Text-table and CSV emission used by the benchmark harness to print
 * paper-style rows and to persist series for plotting.
 */

#ifndef MTDAE_COMMON_TABLE_HH
#define MTDAE_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mtdae {

/**
 * Accumulates rows of strings and prints them with aligned columns.
 * The first added row is treated as the header and underlined.
 */
class TextTable
{
  public:
    /** Add a row of cells; the first row becomes the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Render all rows with aligned columns. */
    void print(std::ostream &os) const;

    /** Number of rows added (header included). */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Minimal CSV writer; quotes nothing (callers use simple tokens).
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure unless path empty. */
    explicit CsvWriter(const std::string &path);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one comma-joined row. No-op when the writer is disabled. */
    void row(const std::vector<std::string> &cells);

    /** True when a file is open. */
    bool enabled() const { return out_ != nullptr; }

  private:
    void *out_;  // FILE*, kept opaque to avoid <cstdio> in the header
};

} // namespace mtdae

#endif // MTDAE_COMMON_TABLE_HH
