#include "common/table.hh"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace mtdae {

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    if (rows_.empty())
        return;

    std::vector<std::size_t> widths;
    for (const auto &row : rows_) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            // Left-align the first column (labels), right-align numbers.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(int(widths[c])) << row[c];
        }
        os << '\n';
    };

    emit(rows_[0]);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += std::string(widths[c], '-') + (c + 1 < widths.size()
                                               ? "  " : "");
    os << rule << '\n';
    for (std::size_t r = 1; r < rows_.size(); ++r)
        emit(rows_[r]);
}

CsvWriter::CsvWriter(const std::string &path)
    : out_(nullptr)
{
    if (path.empty())
        return;
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("could not open CSV file ", path, "; CSV output disabled");
        return;
    }
    out_ = f;
}

CsvWriter::~CsvWriter()
{
    if (out_)
        std::fclose(static_cast<FILE *>(out_));
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (!out_)
        return;
    FILE *f = static_cast<FILE *>(out_);
    for (std::size_t c = 0; c < cells.size(); ++c)
        std::fprintf(f, "%s%s", c ? "," : "", cells[c].c_str());
    std::fprintf(f, "\n");
}

} // namespace mtdae
