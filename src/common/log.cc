#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mtdae {
namespace detail {

namespace {

/**
 * Serialises every sink write. The sweep engine's worker threads report
 * through these helpers concurrently; each message is formatted into a
 * single buffer first and emitted under the lock, so lines from
 * different simulation jobs never interleave mid-line.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

void
emit(const char *prefix, const std::string &msg)
{
    const std::string line = std::string(prefix) + msg + "\n";
    const std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

void
emit(const char *prefix, const char *file, int line_no,
     const std::string &msg)
{
    emit(prefix, msg + " (" + file + ":" + std::to_string(line_no) + ")");
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit("panic: ", file, line, msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emit("fatal: ", file, line, msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    emit("info: ", msg);
}

} // namespace detail
} // namespace mtdae
