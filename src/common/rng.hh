/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64-seeded
 * xoshiro256**). Every stochastic element of the workload substrate draws
 * from an explicitly seeded Rng so that traces, and therefore simulations,
 * are bit-for-bit reproducible.
 */

#ifndef MTDAE_COMMON_RNG_HH
#define MTDAE_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace mtdae {

/**
 * Small, fast, deterministic PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). Returns 0 when n == 0. */
    std::uint64_t
    uniform(std::uint64_t n)
    {
        if (n == 0)
            return 0;
        return next() % n;
    }

    /** Uniform double in [0, 1). */
    double
    uniformDouble()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniformDouble() < p;
    }

    /** The raw generator state (for checkpointing). */
    const std::array<std::uint64_t, 4> &state() const { return state_; }

    /** Overwrite the generator state (checkpoint restore). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        state_ = s;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

/**
 * Derive an independent seed for substream @p stream of @p base
 * (one splitmix64 step over the golden-ratio-spaced sequence).
 *
 * The sweep engine gives every SimJob the seed
 * deriveSeed(SimConfig::seed, job index): a pure function of the
 * sweep-grid position, never of scheduling, so a sweep's results are
 * identical at any worker count while the jobs' random streams stay
 * decorrelated from each other.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    std::uint64_t z = base + (stream + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace mtdae

#endif // MTDAE_COMMON_RNG_HH
