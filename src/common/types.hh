/**
 * @file
 * Fundamental scalar types shared by every mtdae subsystem.
 */

#ifndef MTDAE_COMMON_TYPES_HH
#define MTDAE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mtdae {

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** Simulation time, measured in processor cycles. */
using Cycle = std::uint64_t;

/** Per-thread program-order sequence number of a dynamic instruction. */
using InstSeq = std::uint64_t;

/** Hardware context (thread) identifier. */
using ThreadId = std::uint32_t;

/** Physical register index within one register file. */
using PhysReg = std::uint16_t;

/** Sentinel for "no cycle scheduled / unknown time". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no physical register". */
inline constexpr PhysReg kNoPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for "no thread". */
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

} // namespace mtdae

#endif // MTDAE_COMMON_TYPES_HH
