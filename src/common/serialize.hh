/**
 * @file
 * Byte-level serialization primitives for the checkpoint subsystem
 * (src/core/snapshot.hh): an append-only little-endian writer, a
 * bounds-checked sequential reader, and the FNV-1a hash the versioned
 * snapshot container uses for its payload checksum and config keys.
 *
 * Every simulator component that participates in checkpointing exposes
 *     void save(ByteWriter &) const;
 *     void restore(ByteReader &);
 * writing each field explicitly (never memcpy of structs), so the byte
 * form is independent of host padding and stable across compilers.
 * Format errors — truncation, overrun — throw SnapshotError rather than
 * panic: a corrupt snapshot is bad *input*, not a simulator bug, and
 * the sweep engine's job-error plumbing already propagates exceptions.
 */

#ifndef MTDAE_COMMON_SERIALIZE_HH
#define MTDAE_COMMON_SERIALIZE_HH

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mtdae {

/** A malformed, truncated or incompatible serialized snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Append-only little-endian byte sink.
 */
class ByteWriter
{
  public:
    /** Append one byte. */
    void u8(std::uint8_t v) { bytes_.push_back(v); }

    /** Append a bool as one byte (0 or 1). */
    void b(bool v) { u8(v ? 1 : 0); }

    /** Append a 16-bit value, little-endian. */
    void
    u16(std::uint16_t v)
    {
        u8(std::uint8_t(v));
        u8(std::uint8_t(v >> 8));
    }

    /** Append a 32-bit value, little-endian. */
    void
    u32(std::uint32_t v)
    {
        u16(std::uint16_t(v));
        u16(std::uint16_t(v >> 16));
    }

    /** Append a 64-bit value, little-endian. */
    void
    u64(std::uint64_t v)
    {
        u32(std::uint32_t(v));
        u32(std::uint32_t(v >> 32));
    }

    /** Append a signed 32-bit value (two's complement bytes). */
    void i32(std::int32_t v) { u32(std::uint32_t(v)); }

    /** Append a double by bit pattern. */
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    /** Append a length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        for (const char c : s)
            u8(std::uint8_t(c));
    }

    /** The accumulated bytes. */
    const std::vector<std::uint8_t> &data() const { return bytes_; }

    /** Move the accumulated bytes out. */
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Sequential bounds-checked reader over a byte buffer (not owned).
 * Throws SnapshotError on overrun.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {}

    /** Read one byte. */
    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    /** Read a bool (any non-zero byte is true). */
    bool b() { return u8() != 0; }

    /** Read a little-endian 16-bit value. */
    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return std::uint16_t(lo | (std::uint16_t(u8()) << 8));
    }

    /** Read a little-endian 32-bit value. */
    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    /** Read a little-endian 64-bit value. */
    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    /** Read a signed 32-bit value. */
    std::int32_t i32() { return std::int32_t(u32()); }

    /** Read a double by bit pattern. */
    double f64() { return std::bit_cast<double>(u64()); }

    /** Read a length-prefixed string. */
    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      std::size_t(n));
        pos_ += std::size_t(n);
        return s;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ == size_; }

  private:
    void
    need(std::uint64_t n) const
    {
        if (n > size_ - pos_)
            throw SnapshotError(
                "snapshot truncated: need " + std::to_string(n) +
                " byte(s) at offset " + std::to_string(pos_) +
                " of " + std::to_string(size_));
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** FNV-1a 64-bit hash of @p size bytes, chainable through @p seed. */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size,
      std::uint64_t seed = 1469598103934665603ULL)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/** FNV-1a 64-bit hash of a byte vector. */
inline std::uint64_t
fnv1a(const std::vector<std::uint8_t> &bytes,
      std::uint64_t seed = 1469598103934665603ULL)
{
    return fnv1a(bytes.data(), bytes.size(), seed);
}

} // namespace mtdae

#endif // MTDAE_COMMON_SERIALIZE_HH
