/**
 * @file
 * SimConfig: every architectural parameter of the multithreaded decoupled
 * processor, defaulting to the paper's Figure 2 machine.
 */

#ifndef MTDAE_COMMON_CONFIG_HH
#define MTDAE_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mtdae {

/**
 * Thread-arbitration policies: how the shared front end and issue logic
 * order the hardware contexts each cycle (src/policy/policy.hh). Every
 * policy is a pure function of simulation state, so swept results stay
 * byte-identical at any worker count.
 *
 * The first four kinds are pure *ordering* policies and are valid on
 * both seams (fetch and dispatch/issue). Stall and Flush are fetch
 * *gating* policies — they can veto a thread's fetch entirely, not just
 * de-prioritise it — and Split is a per-unit issue policy; each is
 * valid on one seam only (policyIsFetch / policyIsIssue, enforced by
 * SimConfig::validate()). Adaptive is a phase-reactive fetch policy
 * (gating and ranking both switch on the trailing outstanding-miss
 * window), and Weighted consumes the per-thread priority weights
 * (SimConfig::threadWeights) on either seam.
 */
enum class PolicyKind : std::uint8_t {
    Icount,      ///< Fewest buffered instructions first (the paper's
                 ///< ICOUNT fetch; occupancy-balancing arbitration).
    RoundRobin,  ///< Pure rotation, one step per cycle.
    BrCount,     ///< Fewest unresolved conditional branches first.
    MissCount,   ///< Fewest outstanding L1 load misses first.
    Stall,       ///< ICOUNT fetch, but a thread with an outstanding
                 ///< L1 load miss may not fetch at all (fetch only).
    Flush,       ///< Stall, plus the gated thread's not-yet-dispatched
                 ///< fetch buffer is squashed for replay (fetch only).
    Split,       ///< Per-unit issue: AP by outstanding misses, EP by
                 ///< windowed IQ occupancy (dispatch/issue only).
    Adaptive,    ///< Phase-switched fetch: stall-style gating only past
                 ///< the trailing-window miss threshold, pure rotation
                 ///< when the window is empty (fetch only).
    Weighted,    ///< Occupancy divided by the thread's priority weight
                 ///< (cross-multiplied, so integer-exact); valid on
                 ///< both seams.
};

/** CLI spelling of @p k ("icount", "round-robin", ...). */
const char *policyName(PolicyKind k);

/** Parse a CLI spelling; false when @p s names no policy. */
bool parsePolicy(const std::string &s, PolicyKind &out);

/** Every policy, in registry/display order. */
const std::vector<PolicyKind> &allPolicies();

/** Policies valid for SimConfig::fetchPolicy, in registry order. */
const std::vector<PolicyKind> &fetchPolicies();

/** Policies valid for SimConfig::issuePolicy, in registry order. */
const std::vector<PolicyKind> &issuePolicies();

/** True when @p k may be used as the fetch policy. */
bool policyIsFetch(PolicyKind k);

/** True when @p k may be used as the dispatch/issue policy. */
bool policyIsIssue(PolicyKind k);

/**
 * Full machine configuration. Defaults reproduce the paper's Figure 2:
 * a 4+4-way (AP+EP) issue, SMT, decoupled access/execute processor.
 */
struct SimConfig
{
    // --- Threads -----------------------------------------------------
    /** Number of hardware contexts. */
    std::uint32_t numThreads = 1;

    /**
     * Decoupled mode: AP and EP streams of a thread issue in order
     * independently (slippage bounded by the queues). When false, the
     * "instruction queues are disabled": each thread issues in strict
     * program order across both units (non-decoupled baseline).
     */
    bool decoupled = true;

    // --- Issue / functional units ------------------------------------
    /** AP functional units (also the AP issue width per cycle). */
    std::uint32_t apUnits = 4;
    /** EP functional units (also the EP issue width per cycle). */
    std::uint32_t epUnits = 4;
    /** AP functional unit latency in cycles. */
    std::uint32_t apLatency = 1;
    /** EP functional unit latency in cycles. */
    std::uint32_t epLatency = 4;

    // --- Front end -----------------------------------------------------
    /** Threads that may fetch per cycle (I-cache ports). */
    std::uint32_t fetchThreadsPerCycle = 2;
    /** Max consecutive instructions fetched per thread per cycle. */
    std::uint32_t fetchWidth = 8;
    /** Fetch buffer capacity (pending-dispatch instructions) per thread. */
    std::uint32_t fetchBufferSize = 16;
    /** Total dispatch (rename) width per cycle, shared by all threads. */
    std::uint32_t dispatchWidth = 8;
    /**
     * Thread order for fetch-port arbitration. The default, Icount,
     * reproduces the paper's RR-2.8 ICOUNT scheme: candidates rotate
     * round-robin and are stably sorted by fetch-buffer occupancy.
     * Must satisfy policyIsFetch(); Stall and Flush additionally gate
     * (veto) threads with outstanding L1 load misses.
     */
    PolicyKind fetchPolicy = PolicyKind::Icount;
    /**
     * Thread visit order for the shared dispatch stage and for each
     * issue unit (the paper's machine is RoundRobin in all three).
     * Must satisfy policyIsIssue(); Split orders the two units by
     * different keys.
     */
    PolicyKind issuePolicy = PolicyKind::RoundRobin;
    /**
     * Per-thread priority weights for the QoS layer, consumed by the
     * Weighted policies and by the fairness metrics in RunResult.
     * Empty means every thread weighs 1 (uniform). A shorter list is
     * tiled across the hardware contexts (thread t weighs
     * threadWeights[t % size()]), so one vector describes any thread
     * count — e.g. {4, 1} alternates foreground latency-critical and
     * background batch contexts. Entries must be >= 1. CLI:
     * --thread-weights=4,1.
     */
    std::vector<std::uint32_t> threadWeights;
    /**
     * Adaptive fetch-policy engagement threshold, in average
     * outstanding L1 load misses over the trailing window: a thread is
     * gated (stall-style) only while it has an outstanding miss AND its
     * trailing-window miss sum has reached
     * adaptiveMissThreshold * kMissWindow (window saturated at or above
     * the threshold). CLI: --adaptive-threshold.
     */
    std::uint32_t adaptiveMissThreshold = 1;
    /** Max unresolved branches per thread (AP control speculation). */
    std::uint32_t maxUnresolvedBranches = 4;
    /** Extra cycles from branch resolution to fetch restart. */
    std::uint32_t redirectPenalty = 1;
    /** Branch history table entries (2-bit counters), per thread. */
    std::uint32_t bhtEntries = 2048;
    /** Direction predictor organisations. */
    enum class PredictorKind : std::uint8_t {
        Bimodal,  ///< The paper's PC-indexed BHT.
        Gshare,   ///< Global-history XOR-indexed alternative.
    };
    /** Direction predictor used by every context. */
    PredictorKind predictor = PredictorKind::Bimodal;
    /** Global-history length for the gshare predictor. */
    std::uint32_t gshareHistoryBits = 8;

    // --- Per-thread queues and registers --------------------------------
    /** EP Instruction Queue entries per thread (the decoupling queue). */
    std::uint32_t iqEntries = 48;
    /** AP pending-issue queue entries per thread. */
    std::uint32_t apQueueEntries = 16;
    /** Store Address Queue entries per thread. */
    std::uint32_t saqEntries = 32;
    /** Reorder buffer entries per thread. */
    std::uint32_t robEntries = 128;
    /** AP (integer) physical registers per thread. */
    std::uint32_t apPhysRegs = 64;
    /** EP (floating-point) physical registers per thread. */
    std::uint32_t epPhysRegs = 96;
    /** Graduation width per thread per cycle. */
    std::uint32_t graduateWidth = 8;

    // --- Memory hierarchy ------------------------------------------------
    /** L1 data cache size in bytes. */
    std::uint32_t l1Bytes = 64 * 1024;
    /** L1 line size in bytes. */
    std::uint32_t l1LineBytes = 32;
    /** L1 data cache ports (loads at issue + stores at graduation). */
    std::uint32_t l1Ports = 4;
    /** Outstanding misses supported by the lockup-free L1 (MSHRs). */
    std::uint32_t mshrs = 16;
    /** L1 hit latency in cycles. */
    std::uint32_t l1HitLatency = 1;
    /** L2 access (hit) latency in cycles — the paper's swept parameter. */
    std::uint32_t l2Latency = 16;
    /** L1-L2 bus width in bytes per cycle (128-bit bus). */
    std::uint32_t busBytesPerCycle = 16;

    /**
     * Perfect L2 (the paper's model): the L2 never misses and every L1
     * miss costs exactly l2Latency plus bus queueing and transfer. When
     * false, the finite L2 below backs the L1 and memory latency is
     * emergent (L2 array + DRAM row buffers + shared buses); l2Latency
     * then means the L2 *hit* latency. CLI: --perfect-l2.
     */
    bool perfectL2 = true;
    /** L2 cache size in bytes (finite backend only). */
    std::uint32_t l2Bytes = 512 * 1024;
    /** L2 associativity (ways per set). */
    std::uint32_t l2Assoc = 8;
    /** L2 ports: tag/data accesses accepted per cycle (pipelined). */
    std::uint32_t l2Ports = 2;
    /** Outstanding L2 misses (L2 MSHRs); further misses queue. */
    std::uint32_t l2Mshrs = 8;

    // --- DRAM (finite backend only) --------------------------------------
    /** Independent DRAM banks sharing one data bus. */
    std::uint32_t dramBanks = 8;
    /** DRAM row (page) size in bytes: the row-buffer locality window. */
    std::uint32_t dramRowBytes = 4096;
    /** Column access (CAS) latency in CPU cycles: row-buffer hit cost. */
    std::uint32_t dramCas = 20;
    /** Row activation (RAS-to-CAS) latency in CPU cycles. */
    std::uint32_t dramRas = 30;
    /** Precharge latency in CPU cycles, paid on a row conflict. */
    std::uint32_t dramPrecharge = 20;
    /** DRAM data bus cycles to transfer one line (shared by all banks). */
    std::uint32_t dramBusCycles = 4;

    // --- Workload-independent simulation knobs -------------------------
    /**
     * RNG seed for the whole simulation (trace generation); set from
     * the CLI with --seed. Sweeps treat the configured value as the
     * *base* seed: SweepSpec (src/harness/sweep.hh) rewrites each
     * job's copy to deriveSeed(base, job index) so every grid point
     * draws an independent, reproducible random stream.
     */
    std::uint64_t seed = 1;
    /** Instructions to graduate before statistics reset (cache warm-up). */
    std::uint64_t warmupInsts = 50000;
    /**
     * Fast-forward quiescent spans (no stage can do any work) to the
     * next wake event instead of stepping them cycle by cycle; set from
     * the CLI with --cycle-skip. An execution strategy, not a machine
     * parameter: results are byte-identical either way (the skip-vs-
     * step contract, tests/test_skip.cc), so like SimJob::profile it is
     * deliberately excluded from serializeConfig() — it must not
     * perturb configFingerprint()/prefixKey() or snapshot
     * compatibility.
     */
    bool cycleSkip = true;

    /** Number of architectural integer registers (fixed by the ISA). */
    static constexpr std::uint32_t kArchIntRegs = 32;
    /** Number of architectural FP registers (fixed by the ISA). */
    static constexpr std::uint32_t kArchFpRegs = 32;

    /**
     * Return a copy with queue and register-file sizes scaled up
     * proportionally to the L2 latency, per the paper's Section 2:
     * factor max(1, l2Latency/16) applied to the IQ, SAQ, AP queue, ROB
     * and the physical registers beyond the architectural ones.
     *
     * @param l2_latency the L2 latency the machine should tolerate
     */
    SimConfig scaledForLatency(std::uint32_t l2_latency) const;

    /** Bus cycles to transfer one L1 line. */
    std::uint32_t
    lineTransferCycles() const
    {
        return (l1LineBytes + busBytesPerCycle - 1) / busBytesPerCycle;
    }

    /**
     * The priority weight of thread @p tid: threadWeights tiled across
     * the contexts, 1 everywhere when the vector is empty.
     */
    std::uint32_t
    threadWeight(std::uint32_t tid) const
    {
        return threadWeights.empty()
                   ? 1u
                   : threadWeights[tid % threadWeights.size()];
    }

    /** Die with a fatal() if the configuration is inconsistent. */
    void validate() const;
};

} // namespace mtdae

#endif // MTDAE_COMMON_CONFIG_HH
