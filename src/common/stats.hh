/**
 * @file
 * Lightweight statistics primitives: scalar counters, running aggregates
 * and fixed-bucket histograms. These are deliberately plain value types so
 * that subsystems can embed them, reset them after warm-up, and snapshot
 * them into run results without a registry.
 */

#ifndef MTDAE_COMMON_STATS_HH
#define MTDAE_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace mtdae {

/**
 * Running aggregate of a stream of samples: count, sum, min, max, mean.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    sample(double v)
    {
        count_ += 1;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean of the samples, or 0 when empty. */
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

    /** Smallest sample, or +inf when empty. */
    double min() const { return min_; }

    /** Largest sample, or -inf when empty. */
    double max() const { return max_; }

    /** Forget all samples. */
    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram with uniform integer buckets [0, bucketCount * bucketWidth);
 * out-of-range samples land in the final overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_count number of regular buckets (>= 1)
     * @param bucket_width width of each bucket (>= 1)
     */
    explicit Histogram(std::size_t bucket_count = 16,
                       std::uint64_t bucket_width = 1)
        : width_(bucket_width ? bucket_width : 1),
          buckets_(bucket_count ? bucket_count : 1, 0)
    {}

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        std::size_t idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx] += 1;
        total_ += 1;
        sum_ += v;
    }

    /** Count in bucket i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /** Number of regular buckets. */
    std::size_t size() const { return buckets_.size(); }

    /** Total number of samples. */
    std::uint64_t total() const { return total_; }

    /** Mean sample value (0 when empty). */
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }

    /** Clear all buckets. */
    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * A ratio tracked as numerator/denominator events (e.g. misses/accesses).
 */
struct RatioStat
{
    std::uint64_t num = 0;  ///< Numerator event count.
    std::uint64_t den = 0;  ///< Denominator event count.

    /** Record a denominator event that is (hit=false) a numerator too. */
    void
    event(bool counts)
    {
        den += 1;
        if (counts)
            num += 1;
    }

    /** Current ratio; 0 when no denominator events. */
    double value() const { return den ? double(num) / double(den) : 0.0; }

    /** Clear both counts. */
    void reset() { num = den = 0; }
};

} // namespace mtdae

#endif // MTDAE_COMMON_STATS_HH
