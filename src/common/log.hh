/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic convention.
 *
 * panic(): an internal simulator invariant was violated (a bug); aborts.
 * fatal(): the user asked for something impossible (bad config); exits.
 * warn()/inform(): advisory messages that never stop the simulation.
 *
 * All helpers are safe to call from concurrent sweep workers: each
 * message is formatted off-lock and written to the sink as one guarded
 * line, so output from parallel jobs never interleaves mid-line.
 */

#ifndef MTDAE_COMMON_LOG_HH
#define MTDAE_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace mtdae {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: an internal invariant was violated. */
#define MTDAE_PANIC(...) \
    ::mtdae::detail::panicImpl(__FILE__, __LINE__, \
                               ::mtdae::detail::concat(__VA_ARGS__))

/** Exit with a message: the configuration or input is invalid. */
#define MTDAE_FATAL(...) \
    ::mtdae::detail::fatalImpl(__FILE__, __LINE__, \
                               ::mtdae::detail::concat(__VA_ARGS__))

/** Assert an invariant; panics with the stringified condition on failure. */
#define MTDAE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::mtdae::detail::panicImpl(__FILE__, __LINE__, \
                ::mtdae::detail::concat("assertion failed: " #cond " ", \
                                        ##__VA_ARGS__)); \
        } \
    } while (0)

/** Print a warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace mtdae

#endif // MTDAE_COMMON_LOG_HH
