#include "common/config.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtdae {

const char *
policyName(PolicyKind k)
{
    switch (k) {
      case PolicyKind::Icount:
        return "icount";
      case PolicyKind::RoundRobin:
        return "round-robin";
      case PolicyKind::BrCount:
        return "brcount";
      case PolicyKind::MissCount:
        return "misscount";
      case PolicyKind::Stall:
        return "stall";
      case PolicyKind::Flush:
        return "flush";
      case PolicyKind::Split:
        return "split";
      case PolicyKind::Adaptive:
        return "adaptive";
      case PolicyKind::Weighted:
        return "weighted";
    }
    MTDAE_PANIC("unreachable PolicyKind");
}

bool
parsePolicy(const std::string &s, PolicyKind &out)
{
    for (const PolicyKind k : allPolicies()) {
        if (s == policyName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const std::vector<PolicyKind> &
allPolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Icount,
        PolicyKind::RoundRobin,
        PolicyKind::BrCount,
        PolicyKind::MissCount,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::Split,
        PolicyKind::Adaptive,
        PolicyKind::Weighted,
    };
    return kinds;
}

const std::vector<PolicyKind> &
fetchPolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Icount,
        PolicyKind::RoundRobin,
        PolicyKind::BrCount,
        PolicyKind::MissCount,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::Adaptive,
        PolicyKind::Weighted,
    };
    return kinds;
}

const std::vector<PolicyKind> &
issuePolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Icount,
        PolicyKind::RoundRobin,
        PolicyKind::BrCount,
        PolicyKind::MissCount,
        PolicyKind::Split,
        PolicyKind::Weighted,
    };
    return kinds;
}

bool
policyIsFetch(PolicyKind k)
{
    return k != PolicyKind::Split;
}

bool
policyIsIssue(PolicyKind k)
{
    return k != PolicyKind::Stall && k != PolicyKind::Flush &&
           k != PolicyKind::Adaptive;
}

SimConfig
SimConfig::scaledForLatency(std::uint32_t l2_latency) const
{
    SimConfig c = *this;
    c.l2Latency = l2_latency;
    const std::uint32_t factor = std::max(1u, l2_latency / 16u);
    if (factor == 1)
        return c;
    c.iqEntries *= factor;
    c.apQueueEntries *= factor;
    c.saqEntries *= factor;
    c.robEntries *= factor;
    c.fetchBufferSize *= factor;
    // The lockup-free miss capacity must also grow, or the MSHR count
    // (not decoupling) caps every benchmark at 16 lines per L2 latency:
    // the paper's near-flat Figure 1-d curves for the well-decoupled
    // programs are impossible otherwise. It stays bounded by what is
    // buildable, which is what separates the moderate-bandwidth programs
    // (flat) from the bandwidth-monsters like hydro2d (degraded).
    c.mshrs = std::min(c.mshrs * factor, 64u);
    // The L2's own miss capacity scales with the same reasoning (only
    // observable when the finite backend is enabled).
    c.l2Mshrs = std::min(c.l2Mshrs * factor, 32u);
    // Only the registers beyond the architectural ones buffer in-flight
    // results, so only those scale.
    c.apPhysRegs = kArchIntRegs + (apPhysRegs - kArchIntRegs) * factor;
    c.epPhysRegs = kArchFpRegs + (epPhysRegs - kArchFpRegs) * factor;
    return c;
}

void
SimConfig::validate() const
{
    if (numThreads == 0)
        MTDAE_FATAL("numThreads must be >= 1");
    if (!policyIsFetch(fetchPolicy))
        MTDAE_FATAL("'", policyName(fetchPolicy),
                    "' is not a fetch policy (valid: icount, "
                    "round-robin, brcount, misscount, stall, flush, "
                    "adaptive, weighted)");
    if (!policyIsIssue(issuePolicy))
        MTDAE_FATAL("'", policyName(issuePolicy),
                    "' is not a dispatch/issue policy (valid: icount, "
                    "round-robin, brcount, misscount, split, "
                    "weighted)");
    for (const std::uint32_t w : threadWeights)
        if (w == 0)
            MTDAE_FATAL("thread weights must be >= 1");
    if (adaptiveMissThreshold == 0)
        MTDAE_FATAL("adaptiveMissThreshold must be >= 1");
    if (apUnits == 0 || epUnits == 0)
        MTDAE_FATAL("both units need at least one functional unit");
    if (apLatency == 0 || epLatency == 0)
        MTDAE_FATAL("functional unit latencies must be >= 1");
    if (apPhysRegs <= kArchIntRegs)
        MTDAE_FATAL("apPhysRegs must exceed the ", kArchIntRegs,
                    " architectural integer registers");
    if (epPhysRegs <= kArchFpRegs)
        MTDAE_FATAL("epPhysRegs must exceed the ", kArchFpRegs,
                    " architectural FP registers");
    if (iqEntries == 0 || apQueueEntries == 0 || saqEntries == 0)
        MTDAE_FATAL("queues must have at least one entry");
    if (robEntries == 0)
        MTDAE_FATAL("robEntries must be >= 1");
    if (l1LineBytes == 0 || (l1LineBytes & (l1LineBytes - 1)) != 0)
        MTDAE_FATAL("l1LineBytes must be a power of two");
    if (l1Bytes == 0 || l1Bytes % l1LineBytes != 0)
        MTDAE_FATAL("l1Bytes must be a multiple of the line size");
    if ((l1Bytes / l1LineBytes) & (l1Bytes / l1LineBytes - 1))
        MTDAE_FATAL("L1 line count must be a power of two (direct-mapped)");
    if (mshrs == 0)
        MTDAE_FATAL("a lockup-free cache needs at least one MSHR");
    if (busBytesPerCycle == 0)
        MTDAE_FATAL("busBytesPerCycle must be >= 1");
    if (fetchThreadsPerCycle == 0 || fetchWidth == 0 || dispatchWidth == 0)
        MTDAE_FATAL("front-end widths must be >= 1");
    if (l2Assoc == 0)
        MTDAE_FATAL("l2Assoc must be >= 1");
    if (l2Bytes == 0 || l2Bytes % (l1LineBytes * l2Assoc) != 0)
        MTDAE_FATAL("l2Bytes must be a multiple of l1LineBytes * l2Assoc");
    const std::uint32_t l2_sets = l2Bytes / (l1LineBytes * l2Assoc);
    if (l2_sets & (l2_sets - 1))
        MTDAE_FATAL("L2 set count must be a power of two");
    if (l2Ports == 0 || l2Mshrs == 0)
        MTDAE_FATAL("the L2 needs at least one port and one MSHR");
    if (dramBanks == 0)
        MTDAE_FATAL("dramBanks must be >= 1");
    if (dramRowBytes < l1LineBytes || dramRowBytes % l1LineBytes != 0)
        MTDAE_FATAL("dramRowBytes must be a multiple of the line size");
    if (dramCas == 0 || dramRas == 0 || dramBusCycles == 0)
        MTDAE_FATAL("DRAM CAS/RAS latencies and bus cycles must be >= 1");
    if (bhtEntries == 0 || (bhtEntries & (bhtEntries - 1)) != 0)
        MTDAE_FATAL("bhtEntries must be a power of two");
}

} // namespace mtdae
