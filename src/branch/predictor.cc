#include "branch/predictor.hh"

#include "common/log.hh"

namespace mtdae {

std::unique_ptr<BranchPredictor>
makePredictor(const SimConfig &cfg)
{
    switch (cfg.predictor) {
      case SimConfig::PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(cfg.bhtEntries);
      case SimConfig::PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(cfg.bhtEntries,
                                                 cfg.gshareHistoryBits);
    }
    MTDAE_PANIC("bad predictor kind");
}

} // namespace mtdae
