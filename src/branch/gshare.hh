/**
 * @file
 * Gshare branch predictor: global history XOR-indexed 2-bit counters.
 * An alternative to the paper's per-thread bimodal BHT, used by the
 * predictor ablation to quantify how sensitive the decoupled machine's
 * wrong-path/idle slots are to prediction quality.
 */

#ifndef MTDAE_BRANCH_GSHARE_HH
#define MTDAE_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mtdae {

/**
 * Classic gshare: the branch PC is XORed with a global history register
 * to index a table of 2-bit saturating counters.
 */
class Gshare
{
  public:
    /**
     * @param entries table size; must be a power of two
     * @param history_bits global-history length (<= log2(entries))
     */
    explicit Gshare(std::uint32_t entries = 2048,
                    std::uint32_t history_bits = 8);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Update with the resolved direction (counter + history).
     * @return true when the prediction matched the outcome
     */
    bool update(Addr pc, bool taken);

    /** Fraction of resolved branches that were mispredicted. */
    double mispredictRate() const { return outcome_.value(); }

    /** Number of branches resolved. */
    std::uint64_t resolved() const { return outcome_.den; }

    /** Reset the statistics (table and history are kept). */
    void resetStats() { outcome_.reset(); }

    /** Serialize counters, global history and statistics. */
    void
    save(ByteWriter &w) const
    {
        w.u64(table_.size());
        for (const std::uint8_t c : table_)
            w.u8(c);
        w.u64(history_);
        w.u64(outcome_.num);
        w.u64(outcome_.den);
    }

    /** Restore state saved by save(). */
    void
    restore(ByteReader &r)
    {
        if (r.u64() != table_.size())
            throw SnapshotError("gshare size mismatch in snapshot");
        for (std::uint8_t &c : table_)
            c = r.u8();
        history_ = r.u64();
        outcome_.num = r.u64();
        outcome_.den = r.u64();
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return ((pc >> 2) ^ (history_ & historyMask_)) & mask_;
    }

    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
    RatioStat outcome_;
};

} // namespace mtdae

#endif // MTDAE_BRANCH_GSHARE_HH
