/**
 * @file
 * Branch History Table: per-thread table of 2-bit saturating counters,
 * PC-indexed (2K entries in the paper's Figure 2).
 */

#ifndef MTDAE_BRANCH_BHT_HH
#define MTDAE_BRANCH_BHT_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mtdae {

/**
 * A classic bimodal predictor: one 2-bit saturating counter per entry,
 * indexed by the branch PC (word-granular).
 */
class Bht
{
  public:
    /**
     * @param entries table size; must be a power of two
     * @param initial initial counter value (0..3); 2 = weakly taken
     */
    explicit Bht(std::uint32_t entries = 2048, std::uint8_t initial = 2);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Update the counter for @p pc with the resolved direction and record
     * whether the earlier prediction was correct.
     * @return true when the prediction matched the outcome
     */
    bool update(Addr pc, bool taken);

    /** Fraction of updates whose prediction was wrong. */
    double mispredictRate() const { return outcome_.value(); }

    /** Number of predictions resolved. */
    std::uint64_t resolved() const { return outcome_.den; }

    /** Reset counters’ statistics (the table contents are kept). */
    void resetStats() { outcome_.reset(); }

    /** Serialize counters + statistics (mask is size-derived). */
    void
    save(ByteWriter &w) const
    {
        w.u64(table_.size());
        for (const std::uint8_t c : table_)
            w.u8(c);
        w.u64(outcome_.num);
        w.u64(outcome_.den);
    }

    /** Restore state saved by save(). */
    void
    restore(ByteReader &r)
    {
        if (r.u64() != table_.size())
            throw SnapshotError("BHT size mismatch in snapshot");
        for (std::uint8_t &c : table_)
            c = r.u8();
        outcome_.num = r.u64();
        outcome_.den = r.u64();
    }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask_; }

    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    RatioStat outcome_;  // num = mispredicts, den = resolved branches
};

} // namespace mtdae

#endif // MTDAE_BRANCH_BHT_HH
