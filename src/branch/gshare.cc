#include "branch/gshare.hh"

#include "common/log.hh"

namespace mtdae {

Gshare::Gshare(std::uint32_t entries, std::uint32_t history_bits)
    : table_(entries, 2),
      mask_(entries - 1),
      historyMask_((std::uint64_t(1) << history_bits) - 1)
{
    MTDAE_ASSERT(entries > 0 && (entries & (entries - 1)) == 0,
                 "gshare table size must be a power of two");
    MTDAE_ASSERT(history_bits > 0 && history_bits <= 32,
                 "gshare history length out of range");
}

bool
Gshare::predict(Addr pc) const
{
    return table_[index(pc)] >= 2;
}

bool
Gshare::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = table_[index(pc)];
    const bool predicted = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
    const bool correct = predicted == taken;
    outcome_.event(!correct);
    return correct;
}

} // namespace mtdae
