/**
 * @file
 * BranchPredictor: the per-context direction-predictor interface, with
 * the paper's bimodal BHT as the default and gshare as an alternative
 * (selected by SimConfig::predictor).
 */

#ifndef MTDAE_BRANCH_PREDICTOR_HH
#define MTDAE_BRANCH_PREDICTOR_HH

#include <memory>

#include "branch/bht.hh"
#include "branch/gshare.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace mtdae {

/**
 * Direction predictor of one hardware context.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(Addr pc) const = 0;

    /**
     * Train with the resolved direction.
     * @return true when the prediction was correct
     */
    virtual bool update(Addr pc, bool taken) = 0;

    /** Begin a new statistics interval. */
    virtual void resetStats() = 0;

    /** Mispredict fraction over the current interval. */
    virtual double mispredictRate() const = 0;

    /** Serialize tables + statistics (checkpointing). */
    virtual void save(ByteWriter &w) const = 0;

    /** Restore state saved by save(). */
    virtual void restore(ByteReader &r) = 0;
};

/** The paper's 2K x 2-bit bimodal BHT. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::uint32_t entries) : bht_(entries) {}

    bool predict(Addr pc) const override { return bht_.predict(pc); }
    bool update(Addr pc, bool taken) override
    {
        return bht_.update(pc, taken);
    }
    void resetStats() override { bht_.resetStats(); }
    double mispredictRate() const override
    {
        return bht_.mispredictRate();
    }
    void save(ByteWriter &w) const override { bht_.save(w); }
    void restore(ByteReader &r) override { bht_.restore(r); }

  private:
    Bht bht_;
};

/** Global-history gshare alternative. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(std::uint32_t entries,
                             std::uint32_t history_bits = 8)
        : gshare_(entries, history_bits)
    {}

    bool predict(Addr pc) const override { return gshare_.predict(pc); }
    bool update(Addr pc, bool taken) override
    {
        return gshare_.update(pc, taken);
    }
    void resetStats() override { gshare_.resetStats(); }
    double mispredictRate() const override
    {
        return gshare_.mispredictRate();
    }
    void save(ByteWriter &w) const override { gshare_.save(w); }
    void restore(ByteReader &r) override { gshare_.restore(r); }

  private:
    Gshare gshare_;
};

/** Build the predictor selected by @p cfg. */
std::unique_ptr<BranchPredictor> makePredictor(const SimConfig &cfg);

} // namespace mtdae

#endif // MTDAE_BRANCH_PREDICTOR_HH
