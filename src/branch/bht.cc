#include "branch/bht.hh"

#include "common/log.hh"

namespace mtdae {

Bht::Bht(std::uint32_t entries, std::uint8_t initial)
    : table_(entries, initial), mask_(entries - 1)
{
    MTDAE_ASSERT(entries > 0 && (entries & (entries - 1)) == 0,
                 "BHT size must be a power of two");
    MTDAE_ASSERT(initial <= 3, "2-bit counter initial value out of range");
}

bool
Bht::predict(Addr pc) const
{
    return table_[index(pc)] >= 2;
}

bool
Bht::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = table_[index(pc)];
    const bool predicted = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    const bool correct = predicted == taken;
    outcome_.event(!correct);
    return correct;
}

} // namespace mtdae
