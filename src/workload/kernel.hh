/**
 * @file
 * Kernel: a loop-body description from which dynamic traces are expanded.
 *
 * This is the substitution for the paper's ATOM-instrumented Alpha
 * binaries (see "Big picture" in docs/ARCHITECTURE.md): a kernel
 * captures the three properties the
 * paper's metrics depend on — instruction mix, register dependence
 * structure (in particular between address computation and FP
 * computation), and memory access patterns — as a compact loop body with
 * virtual registers and symbolic address streams.
 */

#ifndef MTDAE_WORKLOAD_KERNEL_HH
#define MTDAE_WORKLOAD_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace mtdae {

/**
 * One symbolic memory access stream of a kernel.
 */
struct StreamSpec
{
    /** How effective addresses evolve over successive accesses. */
    enum class Kind : std::uint8_t {
        Strided,  ///< base + k*stride, wrapping within the footprint.
        Gather,   ///< uniformly random element within the footprint.
        Chain,    ///< dependent-load walk: a deterministic LCG permutation
                  ///< of the footprint's elements (pointer chasing).
    };

    Kind kind = Kind::Strided;
    std::uint64_t footprint = 0;   ///< Bytes of the region (working set).
    std::int64_t stride = 8;      ///< Byte stride (Strided only).
    std::uint32_t elemBytes = 8;  ///< Element size/alignment.
    int addrReg = -1;              ///< Int vreg carrying the address.
};

/**
 * One operation of a kernel loop body. Register fields are virtual
 * register ids; their class (int/fp) is implied by the opcode's operand
 * semantics and checked by Kernel::validate().
 */
struct KOp
{
    Opcode op = Opcode::Nop;
    int dst = -1;            ///< Destination vreg, or -1.
    int src0 = -1;           ///< First source vreg, or -1.
    int src1 = -1;           ///< Second source vreg, or -1.
    int src2 = -1;           ///< Third source vreg (FMA), or -1.
    int stream = -1;         ///< Address stream (memory ops), or -1.
    std::uint8_t skip = 0;   ///< Body ops skipped when a branch is taken.
    float takenProb = 0.0f;  ///< Taken probability (data-dep branches).
    bool backedge = false;   ///< Loop back-edge (taken until trip ends).
};

/**
 * A validated kernel: virtual register counts, address streams, and the
 * loop body in program order. The final op is the loop back-edge.
 */
class Kernel
{
  public:
    std::string name;               ///< Identifier (benchmark name).
    std::vector<KOp> ops;           ///< Loop body, program order.
    std::vector<StreamSpec> streams;///< Memory streams referenced by ops.
    int numIntRegs = 0;             ///< Int vregs used (<= 32).
    int numFpRegs = 0;              ///< FP vregs used (<= 32).

    /** Panic if the kernel is malformed (see the .cc for the rules). */
    void validate() const;

    /** Instruction-mix census of one loop iteration. */
    struct Mix
    {
        std::uint32_t loads = 0;
        std::uint32_t stores = 0;
        std::uint32_t fpOps = 0;
        std::uint32_t intOps = 0;
        std::uint32_t branches = 0;
        std::uint32_t total = 0;
    };

    /** Compute the static instruction mix of the body. */
    Mix mix() const;
};

/**
 * Fluent builder for kernels. Register-allocation and operand-class
 * bookkeeping are handled here so benchmark models stay readable.
 */
class KernelBuilder
{
  public:
    /** Handle to a declared address stream. */
    struct Stream
    {
        int id = -1;       ///< Index into Kernel::streams.
        int addrReg = -1;  ///< Int vreg that carries the address.
    };

    KernelBuilder();

    // --- registers ---------------------------------------------------
    /** Allocate a fresh integer virtual register. */
    int intReg();
    /** Allocate a fresh FP virtual register. */
    int fpReg();

    // --- streams -----------------------------------------------------
    /** Declare a strided stream with its own address register. */
    Stream strided(std::uint64_t footprint, std::int64_t stride,
                   std::uint32_t elem_bytes = 8);
    /** Declare a strided stream sharing an existing address register. */
    Stream stridedShared(std::uint64_t footprint, std::int64_t stride,
                         int addr_reg, std::uint32_t elem_bytes = 8);
    /**
     * Declare a gather/scatter stream addressed by @p idx_reg — typically
     * the destination of an integer index load, creating the int-load ->
     * address dependence su2cor/wave5 exhibit.
     */
    Stream gather(std::uint64_t footprint, int idx_reg,
                  std::uint32_t elem_bytes = 8);
    /**
     * Declare a dependent-load (pointer-chase) stream with its own
     * address register: successive accesses walk a deterministic LCG
     * permutation of the footprint's elements, so each address is a
     * function of the previous one — the memory-level-parallelism-free
     * pattern linked lists and hash buckets exhibit. With a
     * power-of-two element count the walk is full-period (every element
     * is visited once per footprint/elemBytes accesses).
     */
    Stream chain(std::uint64_t footprint, std::uint32_t elem_bytes = 8);

    // --- integer ops ---------------------------------------------------
    /** dst = src0 op src1 into a fresh int register. */
    int iop(Opcode op, int src0, int src1 = -1);
    /** In-place integer op (loop-carried), e.g. induction updates. */
    void iopInto(Opcode op, int dst, int src0, int src1 = -1);
    /** Advance a stream's address register (IAdd addr, addr). */
    void advance(const Stream &s);

    // --- FP ops ----------------------------------------------------------
    /** dst = src0 op src1 into a fresh FP register. */
    int fop(Opcode op, int src0, int src1 = -1, int src2 = -1);
    /** In-place FP op (accumulators and other loop-carried values). */
    void fopInto(Opcode op, int dst, int src0, int src1 = -1,
                 int src2 = -1);

    // --- moves ----------------------------------------------------------
    /** Move int -> fp (EP op reading an AP register). */
    int movif(int int_src);
    /** Move fp -> int (AP op reading an EP register). */
    int movfi(int fp_src);

    // --- memory ---------------------------------------------------------
    /** FP load from @p s into a fresh FP register. */
    int ldf(const Stream &s);
    /** FP load into an existing register. */
    void ldfInto(int dst, const Stream &s);
    /** Integer load from @p s into a fresh int register. */
    int ldi(const Stream &s);
    /** Integer load into an existing register. */
    void ldiInto(int dst, const Stream &s);
    /** FP store of @p fp_src to @p s. */
    void stf(const Stream &s, int fp_src);
    /** Integer store of @p int_src to @p s. */
    void sti(const Stream &s, int int_src);

    // --- control ----------------------------------------------------------
    /**
     * Data-dependent conditional branch on an int register; when taken it
     * skips the next @p skip body ops.
     */
    void br(int cond_reg, float taken_prob, std::uint8_t skip = 0);
    /**
     * Conditional branch on an FP condition register: executes on the AP
     * but reads an EP result — the classic loss-of-decoupling event.
     */
    void brf(int fcond_reg, float taken_prob, std::uint8_t skip = 0);

    /**
     * Finish: appends the loop-counter update and back-edge branch, then
     * validates. The builder must not be reused afterwards.
     */
    Kernel build(std::string name);

  private:
    void push(KOp op);

    Kernel k_;
    int loopReg_;
    bool built_ = false;
};

} // namespace mtdae

#endif // MTDAE_WORKLOAD_KERNEL_HH
