/**
 * @file
 * Trace sources: lazily expand kernels into dynamic instruction streams.
 * The core consumes TraceInst records one at a time (trace-driven
 * simulation, as in the paper); nothing is ever materialised in memory.
 */

#ifndef MTDAE_WORKLOAD_TRACE_SOURCE_HH
#define MTDAE_WORKLOAD_TRACE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/inst.hh"
#include "workload/kernel.hh"

namespace mtdae {

/**
 * Abstract producer of a dynamic instruction trace.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     * @return false when the trace is exhausted (@p out untouched)
     */
    virtual bool next(TraceInst &out) = 0;

    /** Identifier for reports. */
    virtual const std::string &name() const = 0;

    /**
     * Serialize the source's read position and RNG streams so a
     * checkpoint-restored simulation resumes the trace exactly where
     * it was. Sources that cannot be checkpointed keep the default,
     * which throws SnapshotError.
     */
    virtual void save(ByteWriter &w) const;

    /** Restore state saved by save() on an identically built source. */
    virtual void restore(ByteReader &r);
};

/**
 * Cloneable recipe for the trace sources of one simulation.
 *
 * A factory is an immutable description of a workload binding; calling
 * make() materialises a fresh, independent set of per-context sources.
 * Sweep jobs (src/harness/sweep.hh) each own a clone of their factory
 * and build their own sources, so concurrently running simulations
 * share no mutable workload state.
 */
class TraceSourceFactory
{
  public:
    virtual ~TraceSourceFactory() = default;

    /**
     * Build one fresh trace source per hardware context.
     *
     * @param num_threads hardware contexts of the target machine
     * @param seed        base RNG seed (SimConfig::seed of the run)
     */
    virtual std::vector<std::unique_ptr<TraceSource>>
    make(std::uint32_t num_threads, std::uint64_t seed) const = 0;

    /** Deep-copy this recipe (factories are immutable, so this is cheap). */
    virtual std::unique_ptr<TraceSourceFactory> clone() const = 0;

    /** Workload identifier for labels and reports. */
    virtual const std::string &name() const = 0;

    /**
     * Canonical identity string for the warm-start prefix key: two
     * factories with equal fingerprints must build byte-identical
     * sources from equal (num_threads, seed). Factories whose name
     * already pins the workload down keep this default; parameterised
     * factories must fold their parameters in.
     */
    virtual std::string fingerprint() const { return name(); }
};

/**
 * Expands a Kernel into a trace: iterates the loop body, materialising
 * effective addresses from the address streams, branch outcomes from the
 * configured probabilities, and the back-edge from the trip count.
 */
class KernelTraceSource : public TraceSource
{
  public:
    /**
     * @param kernel   validated kernel to expand
     * @param mem_base  base of this instance's data region
     * @param pc_base   base of this instance's code region
     * @param seed     RNG seed (gathers and data-dependent branches)
     * @param iterations loop trip count (default: effectively unbounded)
     */
    KernelTraceSource(Kernel kernel, Addr mem_base, Addr pc_base,
                      std::uint64_t seed,
                      std::uint64_t iterations = std::uint64_t(1) << 62);

    bool next(TraceInst &out) override;
    const std::string &name() const override { return kernel_.name; }
    void save(ByteWriter &w) const override;
    void restore(ByteReader &r) override;

    /** Instructions emitted so far. */
    std::uint64_t emitted() const { return emitted_; }

    /** The expanded kernel. */
    const Kernel &kernel() const { return kernel_; }

  private:
    Addr streamAddr(int stream_id);

    Kernel kernel_;
    Addr pcBase_;
    Rng rng_;
    std::uint64_t iterations_;

    std::vector<Addr> streamBase_;    ///< Resolved base per stream.
    std::vector<std::uint64_t> streamOff_;  ///< Current offset per stream.

    std::uint64_t iter_ = 0;
    std::size_t opIdx_ = 0;
    std::uint64_t emitted_ = 0;
    bool done_ = false;
};

/**
 * Interleaves several benchmark sources into one thread's trace:
 * "each thread consists of a sequence of traces from all SpecFP95
 * programs, in a different order for each thread" (paper §3). Segments of
 * @p segment_insts instructions are taken from each benchmark in turn;
 * each benchmark's memory and predictor state persists across segments.
 */
class SequenceTraceSource : public TraceSource
{
  public:
    /**
     * @param sources   per-benchmark sources, already in this thread's order
     * @param segment_insts instructions per benchmark visit
     */
    SequenceTraceSource(
        std::vector<std::unique_ptr<KernelTraceSource>> sources,
        std::uint64_t segment_insts);

    bool next(TraceInst &out) override;
    const std::string &name() const override { return name_; }
    void save(ByteWriter &w) const override;
    void restore(ByteReader &r) override;

    /** Name of the benchmark currently being traced. */
    const std::string &currentBenchmark() const;

  private:
    std::vector<std::unique_ptr<KernelTraceSource>> sources_;
    std::uint64_t segmentInsts_;
    std::size_t current_ = 0;
    std::uint64_t inSegment_ = 0;
    std::string name_ = "suite-mix";
};

} // namespace mtdae

#endif // MTDAE_WORKLOAD_TRACE_SOURCE_HH
