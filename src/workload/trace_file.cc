#include "workload/trace_file.hh"

#include <array>
#include <cstring>

#include "common/log.hh"

namespace mtdae {

namespace {

constexpr std::uint32_t kMagic = 0x4d544145;  // "MTAE"
constexpr std::uint32_t kVersion = 1;

/** On-disk instruction record (packed, little-endian host assumed). */
struct Record
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t op;
    std::uint8_t dstCls, dstIdx;
    std::array<std::uint8_t, 3> srcCls;
    std::array<std::uint8_t, 3> srcIdx;
    std::uint8_t taken;
    std::uint8_t pad[2];
};
static_assert(sizeof(Record) == 32, "trace record layout changed");

struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t insts;
};
static_assert(sizeof(Header) == 16, "trace header layout changed");

Record
pack(const TraceInst &ti)
{
    Record r{};
    r.pc = ti.pc;
    r.addr = ti.addr;
    r.op = std::uint8_t(ti.op);
    r.dstCls = std::uint8_t(ti.dst.cls);
    r.dstIdx = ti.dst.idx;
    for (int i = 0; i < 3; ++i) {
        r.srcCls[i] = std::uint8_t(ti.src[i].cls);
        r.srcIdx[i] = ti.src[i].idx;
    }
    r.taken = ti.taken ? 1 : 0;
    return r;
}

TraceInst
unpack(const Record &r)
{
    TraceInst ti;
    ti.pc = r.pc;
    ti.addr = r.addr;
    ti.op = Opcode(r.op);
    ti.dst = RegRef{RegClass(r.dstCls), r.dstIdx};
    for (int i = 0; i < 3; ++i)
        ti.src[i] = RegRef{RegClass(r.srcCls[i]), r.srcIdx[i]};
    ti.taken = r.taken != 0;
    return ti;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        MTDAE_FATAL("cannot create trace file ", path);
    const Header h{kMagic, kVersion, 0};
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1)
        MTDAE_FATAL("cannot write trace header to ", path);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceInst &ti)
{
    MTDAE_ASSERT(file_, "append to a closed trace writer");
    const Record r = pack(ti);
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        MTDAE_FATAL("short write while recording a trace");
    count_ += 1;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Patch the instruction count into the header.
    const Header h{kMagic, kVersion, count_};
    std::fseek(file_, 0, SEEK_SET);
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1)
        warn("could not finalise trace header");
    std::fclose(file_);
    file_ = nullptr;
}

std::uint64_t
TraceWriter::record(TraceSource &src, const std::string &path,
                    std::uint64_t max_insts)
{
    TraceWriter w(path);
    TraceInst ti;
    while (w.written() < max_insts && src.next(ti))
        w.append(ti);
    const std::uint64_t n = w.written();
    w.close();
    return n;
}

TraceFileSource::TraceFileSource(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb")),
      name_(path)
{
    if (!file_)
        MTDAE_FATAL("cannot open trace file ", path);
    Header h{};
    if (std::fread(&h, sizeof(h), 1, file_) != 1 || h.magic != kMagic)
        MTDAE_FATAL(path, " is not an mtdae trace file");
    if (h.version != kVersion)
        MTDAE_FATAL(path, " has unsupported trace version ", h.version);
    total_ = h.insts;
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::next(TraceInst &out)
{
    if (read_ >= total_)
        return false;
    Record r{};
    if (std::fread(&r, sizeof(r), 1, file_) != 1)
        MTDAE_FATAL("trace file ", name_, " truncated at record ", read_);
    out = unpack(r);
    read_ += 1;
    return true;
}

void
TraceFileSource::save(ByteWriter &w) const
{
    w.u64(read_);
}

void
TraceFileSource::restore(ByteReader &r)
{
    const std::uint64_t pos = r.u64();
    if (pos > total_)
        throw SnapshotError("trace file position out of range in snapshot");
    read_ = pos;
    if (std::fseek(file_, long(sizeof(Header) + pos * sizeof(Record)),
                   SEEK_SET) != 0)
        throw SnapshotError("cannot seek trace file " + name_);
}

} // namespace mtdae
