/**
 * @file
 * Trace file I/O: record any TraceSource to a compact binary file and
 * play it back later. This is the bridge to the paper's actual
 * methodology — traces captured from real binaries (the authors used
 * ATOM on Alpha) can be converted to this format and fed to the
 * simulator unchanged.
 *
 * Format: a 16-byte header (magic, version, instruction count), then
 * one fixed-size little-endian record per instruction.
 */

#ifndef MTDAE_WORKLOAD_TRACE_FILE_HH
#define MTDAE_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "workload/trace_source.hh"

namespace mtdae {

/**
 * Writes TraceInst records to a file.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() when it cannot be created. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void append(const TraceInst &ti);

    /** Flush and finalise the header. Called by the destructor too. */
    void close();

    /** Instructions written so far. */
    std::uint64_t written() const { return count_; }

    /**
     * Convenience: drain up to @p max_insts from @p src into @p path.
     * @return instructions recorded
     */
    static std::uint64_t record(TraceSource &src, const std::string &path,
                                std::uint64_t max_insts);

  private:
    std::FILE *file_;
    std::uint64_t count_ = 0;
};

/**
 * Replays a trace file as a TraceSource.
 */
class TraceFileSource : public TraceSource
{
  public:
    /** Open @p path; fatal() on a missing or malformed file. */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool next(TraceInst &out) override;
    const std::string &name() const override { return name_; }
    void save(ByteWriter &w) const override;
    void restore(ByteReader &r) override;

    /** Instructions the header promises. */
    std::uint64_t totalInsts() const { return total_; }

  private:
    std::FILE *file_;
    std::string name_;
    std::uint64_t total_ = 0;
    std::uint64_t read_ = 0;
};

} // namespace mtdae

#endif // MTDAE_WORKLOAD_TRACE_FILE_HH
