/**
 * @file
 * Synthetic models of the ten SPEC FP95 benchmarks the paper traces.
 *
 * Each model is a kernel whose instruction mix, footprint and dependence
 * structure reproduce the benchmark's first-order behaviour as reported
 * in the paper (Figure 1) and in the SPEC FP95 literature:
 *
 *  - tomcatv/swim:  streaming stencils; high L1 miss ratio, near-perfect
 *                   decoupling (address computation independent of FP).
 *  - mgrid/applu:   mixed-stride 3-D sweeps; moderate misses, good
 *                   decoupling.
 *  - apsi:          moderate streams and FP chains.
 *  - su2cor:        gather — integer index loads feed FP-load addresses;
 *                   significant miss ratio (largest int-load stalls).
 *  - wave5:         gather/scatter plus FP-conditional branches.
 *  - hydro2d:       column-major (line-sized stride) sweeps; the highest
 *                   miss ratio; bandwidth-bound at high L2 latency.
 *  - turb3d:        cache-resident blocks; tiny miss ratio but immediately
 *                   used integer loads (high perceived int latency).
 *  - fpppp:         huge cache-resident FP blocks, just-in-time scalar
 *                   addressing and FP branches: the worst decoupling.
 */

#ifndef MTDAE_WORKLOAD_SPEC_FP95_HH
#define MTDAE_WORKLOAD_SPEC_FP95_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/kernel.hh"
#include "workload/trace_source.hh"

namespace mtdae {

/** Names of the ten modelled benchmarks, in the paper's Figure 1 order. */
const std::vector<std::string> &specFp95Names();

/**
 * Index of @p name in specFp95Names(), or specFp95Names().size() when
 * @p name is not a modelled benchmark.
 */
std::size_t specFp95Index(const std::string &name);

/**
 * The canonical workload memory layout, shared by every kernel-backed
 * factory (spec_fp95 and the DSL): disjoint per-(thread, slot) data
 * regions that alias L1 frames across threads, a per-slot code region,
 * and a per-(seed, thread, slot) RNG stream. The ten benchmark models
 * occupy slots 0-9; other workloads must use slots below 63 (the region
 * encoding keeps slot+1 in 6 bits).
 */
Addr workloadRegionBase(ThreadId thread, std::size_t slot);
Addr workloadPcBase(std::size_t slot);
std::uint64_t workloadSourceSeed(std::uint64_t seed, ThreadId thread,
                                 std::size_t slot);

/** Build the kernel model for @p name; fatal() on an unknown name. */
Kernel buildSpecFp95(const std::string &name);

/**
 * A single-benchmark trace source for one hardware context.
 * Memory regions are disjoint per (thread, benchmark) but share L1
 * frames across threads, so multithreaded cache contention emerges.
 *
 * @param name   benchmark name
 * @param thread hardware context the trace will run on
 * @param seed   base RNG seed
 */
std::unique_ptr<KernelTraceSource>
makeSpecFp95Source(const std::string &name, ThreadId thread,
                   std::uint64_t seed);

/**
 * The paper's Section 3 workload: a rotation of all ten benchmarks,
 * starting at a thread-specific position so every thread runs the full
 * suite "in a different order".
 *
 * @param thread        hardware context
 * @param seed          base RNG seed
 * @param segment_insts instructions per benchmark visit
 */
std::unique_ptr<SequenceTraceSource>
makeSuiteMixSource(ThreadId thread, std::uint64_t seed,
                   std::uint64_t segment_insts = 30000);

/**
 * Factory binding a single benchmark to every hardware context (the
 * Figure 1 workload shape): thread t runs @p name on its own memory
 * region, seeded from the run seed. fatal() on an unknown name.
 */
std::unique_ptr<TraceSourceFactory>
makeBenchmarkFactory(const std::string &name);

/**
 * Factory for the paper's Section 3 suite-mix workload: every context
 * rotates through all ten benchmarks from a thread-specific start.
 */
std::unique_ptr<TraceSourceFactory>
makeSuiteMixFactory(std::uint64_t segment_insts = 30000);

} // namespace mtdae

#endif // MTDAE_WORKLOAD_SPEC_FP95_HH
