#include "workload/trace_source.hh"

#include "common/log.hh"

namespace mtdae {

namespace {

/** Round @p v up to a multiple of @p align. */
std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

} // namespace

void
TraceSource::save(ByteWriter &w) const
{
    (void)w;
    throw SnapshotError("trace source '" + name() +
                        "' does not support checkpointing");
}

void
TraceSource::restore(ByteReader &r)
{
    (void)r;
    throw SnapshotError("trace source '" + name() +
                        "' does not support checkpointing");
}

KernelTraceSource::KernelTraceSource(Kernel kernel, Addr mem_base,
                                     Addr pc_base, std::uint64_t seed,
                                     std::uint64_t iterations)
    : kernel_(std::move(kernel)),
      pcBase_(pc_base),
      rng_(seed),
      iterations_(iterations ? iterations : 1),
      streamOff_(kernel_.streams.size(), 0)
{
    kernel_.validate();
    // Lay the streams out back to back, 4 KB-rounded with a 4 KB gap, as
    // a compiler/allocator would. Cache-resident stream sets therefore
    // occupy disjoint direct-mapped frames, while multi-MB streams
    // naturally spread over the whole index space.
    Addr base = mem_base;
    for (std::size_t i = 0; i < kernel_.streams.size(); ++i) {
        const StreamSpec &s = kernel_.streams[i];
        streamBase_.push_back(base);
        base += roundUp(s.footprint, 4096) + 4096;
    }
}

Addr
KernelTraceSource::streamAddr(int stream_id)
{
    const StreamSpec &s = kernel_.streams[stream_id];
    std::uint64_t &off = streamOff_[stream_id];
    Addr a;
    switch (s.kind) {
      case StreamSpec::Kind::Strided:
        a = streamBase_[stream_id] + off;
        if (s.stride >= 0) {
            off += std::uint64_t(s.stride);
            if (off >= s.footprint)
                off -= s.footprint;
        } else {
            const std::uint64_t back = std::uint64_t(-s.stride);
            off = off >= back ? off - back : off + s.footprint - back;
        }
        return a;
      case StreamSpec::Kind::Gather:
        return streamBase_[stream_id] +
               rng_.uniform(s.footprint / s.elemBytes) * s.elemBytes;
      case StreamSpec::Kind::Chain: {
        // Dependent-load walk: the next element index is an LCG of the
        // current one. a=5, c=17 satisfy Hull-Dobell for power-of-two
        // moduli, so power-of-two element counts walk a full-period
        // permutation; the state is just streamOff_, which save() /
        // restore() already serialize.
        a = streamBase_[stream_id] + off;
        const std::uint64_t slots = s.footprint / s.elemBytes;
        const std::uint64_t idx = off / s.elemBytes;
        off = ((idx * 5 + 17) % slots) * s.elemBytes;
        return a;
      }
    }
    MTDAE_PANIC("bad stream kind");
}

bool
KernelTraceSource::next(TraceInst &out)
{
    if (done_)
        return false;

    const KOp &o = kernel_.ops[opIdx_];

    out = TraceInst{};
    out.op = o.op;
    out.pc = pcBase_ + Addr(opIdx_) * 4;

    auto toRef = [](Opcode op, int vreg, int slot) -> RegRef {
        if (vreg < 0)
            return RegRef::none();
        // Decide the register class from the opcode operand semantics.
        bool fp;
        switch (op) {
          case Opcode::LdF:
            fp = slot < 0;  // dst fp, src int
            break;
          case Opcode::MovIF:
            fp = slot < 0;
            break;
          case Opcode::MovFI:
            fp = slot >= 0;
            break;
          case Opcode::StF:
            fp = slot == 1;  // addr int, data fp
            break;
          case Opcode::BrF:
          case Opcode::FCmp:
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv:
          case Opcode::FMA:
          case Opcode::FMov:
            fp = true;
            break;
          default:
            fp = false;
        }
        return fp ? RegRef::fpReg(std::uint8_t(vreg))
                  : RegRef::intReg(std::uint8_t(vreg));
    };

    out.dst = toRef(o.op, o.dst, -1);
    out.src[0] = toRef(o.op, o.src0, 0);
    out.src[1] = toRef(o.op, o.src1, 1);
    out.src[2] = toRef(o.op, o.src2, 2);

    if (o.stream >= 0)
        out.addr = streamAddr(o.stream);

    std::size_t next_idx = opIdx_ + 1;
    if (o.backedge) {
        out.taken = iter_ + 1 < iterations_;
        if (out.taken) {
            iter_ += 1;
            next_idx = 0;
        } else {
            done_ = true;
        }
    } else if (isCondBranch(o.op)) {
        out.taken = rng_.bernoulli(o.takenProb);
        if (out.taken && o.skip > 0)
            next_idx += o.skip;
    }

    opIdx_ = next_idx;
    emitted_ += 1;
    return true;
}

void
KernelTraceSource::save(ByteWriter &w) const
{
    // The kernel, layout (streamBase_) and trip count are construction
    // parameters; only the read position and RNG stream are mutable.
    for (const std::uint64_t word : rng_.state())
        w.u64(word);
    w.u64(streamOff_.size());
    for (const std::uint64_t off : streamOff_)
        w.u64(off);
    w.u64(iter_);
    w.u64(opIdx_);
    w.u64(emitted_);
    w.b(done_);
}

void
KernelTraceSource::restore(ByteReader &r)
{
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t &word : state)
        word = r.u64();
    rng_.setState(state);
    if (r.u64() != streamOff_.size())
        throw SnapshotError("kernel stream count mismatch in snapshot");
    for (std::uint64_t &off : streamOff_)
        off = r.u64();
    iter_ = r.u64();
    opIdx_ = r.u64();
    emitted_ = r.u64();
    done_ = r.b();
    if (!done_ && opIdx_ >= kernel_.ops.size())
        throw SnapshotError("kernel op index out of range in snapshot");
}

SequenceTraceSource::SequenceTraceSource(
    std::vector<std::unique_ptr<KernelTraceSource>> sources,
    std::uint64_t segment_insts)
    : sources_(std::move(sources)),
      segmentInsts_(segment_insts ? segment_insts : 1)
{
    MTDAE_ASSERT(!sources_.empty(), "SequenceTraceSource needs sources");
}

const std::string &
SequenceTraceSource::currentBenchmark() const
{
    return sources_[current_]->name();
}

bool
SequenceTraceSource::next(TraceInst &out)
{
    for (std::size_t attempts = 0; attempts < sources_.size(); ++attempts) {
        if (inSegment_ >= segmentInsts_) {
            inSegment_ = 0;
            current_ = (current_ + 1) % sources_.size();
        }
        if (sources_[current_]->next(out)) {
            inSegment_ += 1;
            return true;
        }
        // This benchmark ran out (finite trip count); move on.
        inSegment_ = 0;
        current_ = (current_ + 1) % sources_.size();
    }
    return false;
}

void
SequenceTraceSource::save(ByteWriter &w) const
{
    w.u64(sources_.size());
    for (const auto &src : sources_)
        src->save(w);
    w.u64(current_);
    w.u64(inSegment_);
}

void
SequenceTraceSource::restore(ByteReader &r)
{
    if (r.u64() != sources_.size())
        throw SnapshotError("sequence source count mismatch in snapshot");
    for (auto &src : sources_)
        src->restore(r);
    current_ = r.u64();
    inSegment_ = r.u64();
    if (current_ >= sources_.size())
        throw SnapshotError("sequence position out of range in snapshot");
}

} // namespace mtdae
