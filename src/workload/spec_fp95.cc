#include "workload/spec_fp95.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtdae {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

/**
 * Emit the layered FP body typical of compiler-scheduled FP95 loops:
 * a first layer of operations on the loaded values only, a second layer
 * combining first-layer results, and one shallow loop-carried reduction.
 * The layering keeps enough independent work in issue order for the
 * in-order EP while the reduction bounds the steady-state iteration
 * period — this is what gives the paper's single-thread EP behaviour
 * (FU-latency bound, not dependence-serialised).
 *
 * @param b      builder to append to
 * @param loaded FP registers holding loaded values (>= 2)
 * @param layer0 first-layer op count (ops on loaded values only)
 * @param layer1 second-layer op count
 * @return an FP register of the last layer (for stores)
 */
int
layeredFpBody(KernelBuilder &b, const std::vector<int> &loaded,
              int layer0, int layer1)
{
    MTDAE_ASSERT(loaded.size() >= 2, "layeredFpBody needs >= 2 loads");
    static const Opcode ops[3] = {Opcode::FMul, Opcode::FAdd,
                                  Opcode::FSub};
    // Layer 0: operations on loaded values only, no cross dependences.
    std::vector<int> l0;
    for (int i = 0; i < layer0; ++i)
        l0.push_back(b.fop(ops[i % 3], loaded[i % loaded.size()],
                           loaded[(i + 1) % loaded.size()]));
    // Layer 1: combine layer-0 results, still independent of each other.
    std::vector<int> l1;
    for (int i = 0; i < layer1; ++i)
        l1.push_back(b.fop(ops[(i + 1) % 3], l0[i % l0.size()],
                           l0[(i + 1) % l0.size()]));
    // Two independent loop-carried reductions: one FMA each per
    // iteration, bounding the steady-state period without serialising
    // the whole body.
    const int acc0 = b.fpReg();
    const int acc1 = b.fpReg();
    b.fopInto(Opcode::FMA, acc0, l1[0], l1[l1.size() - 1], acc0);
    b.fopInto(Opcode::FMA, acc1, l0[0], l1[l1.size() / 2], acc1);
    return l1[l1.size() / 2];
}

/**
 * Append @p n integer address-arithmetic operations on a scratch
 * register — the induction/index computation that fills AP slots in real
 * compiled FP95 loops without adding memory traffic.
 */
void
indexArith(KernelBuilder &b, int n)
{
    const int scratch = b.intReg();
    static const Opcode ops[3] = {Opcode::IAdd, Opcode::IShift,
                                  Opcode::ILogic};
    for (int i = 0; i < n; ++i)
        b.iopInto(ops[i % 3], scratch, scratch);
}

/**
 * tomcatv: vectorised mesh generation. Unit-stride sweeps over several
 * multi-MB arrays; address arithmetic fully independent of the FP
 * results (near-perfect decoupling, significant miss ratio).
 */
Kernel
buildTomcatv()
{
    KernelBuilder b;
    auto sA = b.strided(2 * kMiB, 8);           // streaming input plane
    auto sB = b.strided(4 * kKiB, 24);          // reused previous plane
    auto sX = b.stridedShared(4 * kKiB, 24, sB.addrReg);  // coefficients
    auto sC = b.strided(2 * kMiB, 8);            // streaming output

    const std::vector<int> loaded = {b.ldf(sA), b.ldf(sB), b.ldf(sX)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    b.stf(sC, out);
    b.advance(sA);
    b.advance(sX);
    b.advance(sC);
    indexArith(b, 4);
    return b.build("tomcatv");
}

/**
 * swim: shallow-water stencil. Three input streams (one line-strided)
 * and two output streams over ~4 MB arrays: bandwidth-heavy, perfectly
 * decoupled.
 */
Kernel
buildSwim()
{
    KernelBuilder b;
    auto sU = b.strided(4 * kMiB, 8);            // streaming field
    auto sV = b.strided(4 * kKiB, 24);          // reused row buffer
    auto sP = b.strided(1 * kMiB, 8);            // second field
    auto sUn = b.strided(4 * kMiB, 8);           // streaming output
    auto sVn = b.stridedShared(4 * kKiB, 24, sV.addrReg);  // reused out

    const std::vector<int> loaded = {b.ldf(sU), b.ldf(sV), b.ldf(sP)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    b.stf(sUn, out);
    b.stf(sVn, loaded[0]);
    b.advance(sU);
    b.advance(sP);
    b.advance(sUn);
    indexArith(b, 4);
    return b.build("swim");
}

/**
 * su2cor: quantum-chromodynamics gather code. Integer index loads feed
 * the addresses of FP loads over a large table: integer-load misses
 * stall the AP directly (the paper's largest integer perceived
 * latencies) while the overall miss ratio stays significant.
 */
Kernel
buildSu2cor()
{
    KernelBuilder b;
    auto sIdx = b.strided(1 * kMiB, 4, 4);
    auto sS = b.strided(4 * kKiB, 24);          // reused propagator block

    // The index is loaded one iteration ahead (software pipelining, as
    // the compiler schedules it), so an index miss is partially hidden:
    // its consumer is a body-length away, not adjacent.
    const int idx = b.intReg();
    auto gT = b.gather(64 * kKiB, idx);
    const std::vector<int> loaded = {b.ldf(gT), b.ldf(sS)};
    const int out = layeredFpBody(b, loaded, 4, 3);
    auto sOut = b.strided(4 * kKiB, 24);  // block-local output
    b.stf(sOut, out);
    b.ldiInto(idx, sIdx);  // next iteration's index
    b.advance(sIdx);
    b.advance(sS);
    b.advance(sOut);
    indexArith(b, 2);
    return b.build("su2cor");
}

/**
 * hydro2d: Navier-Stokes on a 2-D grid with column-order inner loops:
 * line-sized strides make nearly every access a miss over an 8 MB
 * working set — the highest miss ratio of the suite and the first
 * program to hit the L2 bus bandwidth wall.
 */
Kernel
buildHydro2d()
{
    KernelBuilder b;
    auto sR = b.strided(8 * kMiB, 32);           // column sweep
    auto sU = b.strided(6 * kKiB, 24);          // reused column block
    auto sV = b.strided(4 * kKiB, 24);          // reused boundary row
    auto sW = b.strided(4 * kMiB, 8);            // streaming output

    const std::vector<int> loaded = {b.ldf(sR), b.ldf(sU), b.ldf(sV)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    b.stf(sW, out);
    b.advance(sR);
    b.advance(sU);
    b.advance(sV);
    b.advance(sW);
    indexArith(b, 4);
    return b.build("hydro2d");
}

/**
 * mgrid: multigrid solver. Mixed unit and coarse strides (restriction
 * and prolongation touch every other plane): moderate miss ratio,
 * excellent decoupling.
 */
Kernel
buildMgrid()
{
    KernelBuilder b;
    auto sF = b.strided(2 * kMiB, 8);            // fine-grid sweep
    auto sC = b.strided(4 * kKiB, 24);          // coarse grid (resident)
    auto sN = b.stridedShared(4 * kKiB, 24, sC.addrReg);  // neighbours
    auto sO = b.strided(4 * kKiB, 24);          // block-local output

    const std::vector<int> loaded = {b.ldf(sF), b.ldf(sC), b.ldf(sN)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    b.stf(sO, out);
    b.advance(sF);
    b.advance(sC);
    b.advance(sO);
    indexArith(b, 4);
    return b.build("mgrid");
}

/**
 * applu: SSOR solver on a structured grid. Unit-stride block sweeps
 * with a small data-dependent hammock (pivot-style test).
 */
Kernel
buildApplu()
{
    KernelBuilder b;
    auto sA = b.strided(1536 * kKiB, 8);         // streaming sweep
    auto sB = b.strided(4 * kKiB, 24);          // reused block
    auto sC = b.stridedShared(4 * kKiB, 24, sB.addrReg);  // reused block
    auto sO = b.strided(4 * kKiB, 24);          // block-local output

    const std::vector<int> loaded = {b.ldf(sA), b.ldf(sB), b.ldf(sC)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    const int cnd = b.iop(Opcode::ICmp, b.iop(Opcode::IAdd, sA.addrReg));
    b.br(cnd, 0.2f, 1);
    b.stf(sO, out);
    b.advance(sA);
    b.advance(sB);
    b.advance(sO);
    indexArith(b, 3);
    return b.build("applu");
}

/**
 * turb3d: turbulence FFT kernels on cache-resident blocks. Almost no
 * misses, but integer index loads are consumed immediately by dependent
 * address arithmetic, so the rare miss is fully exposed (high perceived
 * integer latency at a negligible miss ratio).
 */
Kernel
buildTurb3d()
{
    KernelBuilder b;
    auto sRe = b.strided(4 * kKiB, 8);
    auto sIm = b.stridedShared(4 * kKiB, 8, sRe.addrReg);
    auto sTw = b.strided(4 * kKiB, 8);
    // A plane-boundary reload: once in a while (predictable hammock) a
    // 32-bit index is fetched from a multi-MB table and consumed by
    // dependent address arithmetic immediately. Misses are rare — the
    // miss *ratio* stays tiny and performance is hardly affected — but
    // each one is fully exposed, which is exactly turb3d's signature in
    // the paper (Figure 1-b vs. Figure 1-c/1-d).
    auto sIdx = b.strided(2 * kMiB, 4, 4);

    const std::vector<int> loaded = {b.ldf(sRe), b.ldf(sIm), b.ldf(sTw)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    auto sO = b.strided(4 * kKiB, 8);
    b.stf(sO, out);
    const int cnd = b.iop(Opcode::ICmp, sRe.addrReg);
    b.br(cnd, 0.97f, 3);  // skip the reload on all but ~3% of iterations
    const int idx = b.ldi(sIdx);
    const int off = b.iop(Opcode::IShift, idx);     // immediate use
    b.iopInto(Opcode::ILogic, off, off, sRe.addrReg);
    b.advance(sRe);
    b.advance(sTw);
    b.advance(sO);
    indexArith(b, 3);
    return b.build("turb3d");
}

/**
 * apsi: mesoscale weather. Moderate streams, moderate FP layers, a
 * small data-dependent branch.
 */
Kernel
buildApsi()
{
    KernelBuilder b;
    auto sT = b.strided(2 * kMiB, 8);            // streaming sweep
    auto sQ = b.strided(4 * kKiB, 24);          // reused column
    auto sO = b.strided(4 * kKiB, 24);          // column-local output

    const std::vector<int> loaded = {b.ldf(sT), b.ldf(sQ)};
    const int out = layeredFpBody(b, loaded, 5, 4);
    const int cnd = b.iop(Opcode::ICmp, sT.addrReg);
    b.br(cnd, 0.15f, 1);
    b.stf(sO, out);
    b.advance(sT);
    b.advance(sQ);
    b.advance(sO);
    indexArith(b, 4);
    return b.build("apsi");
}

/**
 * fpppp: quantum chemistry. Enormous straight-line FP blocks over a
 * cache-resident working set: almost no misses, but scalar loads are
 * addressed just in time and every block ends with an FP-conditional
 * branch — the worst decoupling of the suite (its rare misses are fully
 * perceived, per paper Figure 1-a/1-b).
 */
Kernel
buildFpppp()
{
    KernelBuilder b;
    auto sSc = b.strided(4 * kKiB, 8);
    const int acc = b.fpReg();
    // Once in a while a two-electron integral is fetched from a huge
    // table; fpppp's flat dependence structure consumes it immediately,
    // so the rare FP miss is fully perceived (paper Figure 1-a).
    const int spill = b.fpReg();
    {
        const int cnd = b.iop(Opcode::ICmp, sSc.addrReg);
        b.br(cnd, 0.95f, 2);
        const int off2 = b.iop(Opcode::IAdd, sSc.addrReg);
        auto gBig = b.gather(2 * kMiB, off2);
        b.ldfInto(spill, gBig);
    }
    b.fopInto(Opcode::FAdd, acc, acc, spill);

    for (int block = 0; block < 2; ++block) {
        const int idx = b.ldi(sSc);
        const int off = b.iop(Opcode::IAdd, idx);
        auto gD = b.gather(6 * kKiB, off);
        const int d = b.ldf(gD);
        const int e = b.ldf(gD);
        // The block-guarding FP branch tests the loaded datum early in
        // EP order, but the AP must still wait for the EP's in-order
        // point to reach it: the classic loss-of-decoupling event.
        const int fc = b.fop(Opcode::FCmp, d, acc);
        b.brf(fc, 0.85f, 0);
        // A wide layer of independent terms (the scheduled block) ...
        const int t1 = b.fop(Opcode::FMul, d, e);
        const int t2 = b.fop(Opcode::FAdd, d, e);
        const int t3 = b.fop(Opcode::FSub, e, d);
        const int t4 = b.fop(Opcode::FMul, e, e);
        // ... a short reduction spine over them ...
        const int c1 = b.fop(Opcode::FMA, t1, t2, acc);
        const int c2 = b.fop(Opcode::FAdd, t3, t4);
        // ... and more independent tail work.
        const int p1 = b.fop(Opcode::FAdd, t1, t3);
        const int p2 = b.fop(Opcode::FMul, t2, t4);
        const int p3 = b.fop(Opcode::FAdd, p1, p2);
        b.fopInto(Opcode::FMA, acc, c1, c2, acc);
        (void)p3;
        b.advance(sSc);
    }
    return b.build("fpppp");
}

/**
 * wave5: plasma particle-in-cell. Gather of particle fields, scatter of
 * updates, and FP-conditional boundary tests: integer stalls, moderate
 * misses and loss-of-decoupling events combined.
 */
Kernel
buildWave5()
{
    KernelBuilder b;
    auto sIdx = b.strided(1 * kMiB, 4, 4);
    auto sF = b.strided(4 * kKiB, 24);          // reused field block

    // Particle index pipelined one iteration ahead (gather); the
    // boundary test (an FP-conditional branch) fires only for the
    // minority of particles near the domain edge — an integer hammock
    // skips it most iterations, so the loss-of-decoupling events are
    // intermittent, as in the real code.
    const int idx = b.intReg();
    const int bnd = b.fpReg();
    auto gE = b.gather(64 * kKiB, idx);
    const std::vector<int> loaded = {b.ldf(gE), b.ldf(sF)};
    const int cnd = b.iop(Opcode::ICmp, sF.addrReg);
    b.br(cnd, 0.9f, 2);
    const int fc = b.fop(Opcode::FCmp, loaded[1], bnd);
    b.brf(fc, 0.3f, 0);
    const int out = layeredFpBody(b, loaded, 4, 3);
    b.fopInto(Opcode::FMov, bnd, out);
    const int idx2 = b.iop(Opcode::IAdd, idx);
    auto gS = b.gather(32 * kKiB, idx2);
    b.stf(gS, out);
    b.ldiInto(idx, sIdx);  // next particle's index
    b.advance(sIdx);
    b.advance(sF);
    indexArith(b, 2);
    return b.build("wave5");
}

/** Per-(thread, benchmark) disjoint memory regions that share L1 frames. */
Addr
regionBase(ThreadId thread, std::size_t bench_idx)
{
    // Threads are staggered by 8 KB so identical programs on different
    // threads do not collide frame-for-frame.
    return (Addr(thread) << 34) + (Addr(bench_idx + 1) << 28) +
           Addr(thread) * 8 * kKiB;
}

Addr
pcBase(std::size_t bench_idx)
{
    return Addr(bench_idx + 1) << 20;
}

std::uint64_t
sourceSeed(std::uint64_t seed, ThreadId thread, std::size_t bench_idx)
{
    return seed * 0x9e3779b97f4a7c15ULL + (std::uint64_t(thread) << 32) +
           bench_idx + 1;
}

} // namespace

const std::vector<std::string> &
specFp95Names()
{
    static const std::vector<std::string> names = {
        "tomcatv", "swim", "su2cor", "hydro2d", "mgrid",
        "applu", "turb3d", "apsi", "fpppp", "wave5",
    };
    return names;
}

std::size_t
specFp95Index(const std::string &name)
{
    const auto &names = specFp95Names();
    std::size_t idx = 0;
    while (idx < names.size() && names[idx] != name)
        ++idx;
    return idx;
}

Addr
workloadRegionBase(ThreadId thread, std::size_t slot)
{
    return regionBase(thread, slot);
}

Addr
workloadPcBase(std::size_t slot)
{
    return pcBase(slot);
}

std::uint64_t
workloadSourceSeed(std::uint64_t seed, ThreadId thread, std::size_t slot)
{
    return sourceSeed(seed, thread, slot);
}

Kernel
buildSpecFp95(const std::string &name)
{
    if (name == "tomcatv") return buildTomcatv();
    if (name == "swim")    return buildSwim();
    if (name == "su2cor")  return buildSu2cor();
    if (name == "hydro2d") return buildHydro2d();
    if (name == "mgrid")   return buildMgrid();
    if (name == "applu")   return buildApplu();
    if (name == "turb3d")  return buildTurb3d();
    if (name == "apsi")    return buildApsi();
    if (name == "fpppp")   return buildFpppp();
    if (name == "wave5")   return buildWave5();
    MTDAE_FATAL("unknown SPEC FP95 model: ", name);
}

std::unique_ptr<KernelTraceSource>
makeSpecFp95Source(const std::string &name, ThreadId thread,
                   std::uint64_t seed)
{
    const std::size_t idx = specFp95Index(name);
    MTDAE_ASSERT(idx < specFp95Names().size(), "unknown benchmark ", name);
    return std::make_unique<KernelTraceSource>(
        buildSpecFp95(name), regionBase(thread, idx), pcBase(idx),
        sourceSeed(seed, thread, idx));
}

std::unique_ptr<SequenceTraceSource>
makeSuiteMixSource(ThreadId thread, std::uint64_t seed,
                   std::uint64_t segment_insts)
{
    const auto &names = specFp95Names();
    std::vector<std::unique_ptr<KernelTraceSource>> sources;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::size_t idx = (i + thread) % names.size();
        sources.push_back(makeSpecFp95Source(names[idx], thread, seed));
    }
    return std::make_unique<SequenceTraceSource>(std::move(sources),
                                                 segment_insts);
}

namespace {

/** One benchmark on every context (the Figure 1 workload shape). */
class BenchmarkFactory : public TraceSourceFactory
{
  public:
    explicit BenchmarkFactory(std::string bench)
        : bench_(std::move(bench))
    {
        // Reject unknown names at construction, not inside a worker;
        // a bad name is a user error, so fatal() rather than panic.
        const auto &names = specFp95Names();
        if (std::find(names.begin(), names.end(), bench_) ==
            names.end())
            MTDAE_FATAL("unknown benchmark '", bench_, "'");
    }

    std::vector<std::unique_ptr<TraceSource>>
    make(std::uint32_t num_threads, std::uint64_t seed) const override
    {
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (ThreadId t = 0; t < num_threads; ++t)
            sources.push_back(makeSpecFp95Source(bench_, t, seed));
        return sources;
    }

    std::unique_ptr<TraceSourceFactory>
    clone() const override
    {
        return std::make_unique<BenchmarkFactory>(bench_);
    }

    const std::string &name() const override { return bench_; }

  private:
    std::string bench_;
};

/** The rotated full-suite workload of the paper's Section 3. */
class SuiteMixFactory : public TraceSourceFactory
{
  public:
    explicit SuiteMixFactory(std::uint64_t segment_insts)
        : segmentInsts_(segment_insts)
    {}

    std::vector<std::unique_ptr<TraceSource>>
    make(std::uint32_t num_threads, std::uint64_t seed) const override
    {
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (ThreadId t = 0; t < num_threads; ++t)
            sources.push_back(
                makeSuiteMixSource(t, seed, segmentInsts_));
        return sources;
    }

    std::unique_ptr<TraceSourceFactory>
    clone() const override
    {
        return std::make_unique<SuiteMixFactory>(segmentInsts_);
    }

    const std::string &name() const override { return name_; }

    std::string
    fingerprint() const override
    {
        // The segment length parameterises the trace, so two mixes
        // with different segment sizes must never share a warm-start
        // prefix even though their display names coincide.
        return name_ + "@" + std::to_string(segmentInsts_);
    }

  private:
    std::uint64_t segmentInsts_;
    std::string name_ = "suite-mix";
};

} // namespace

std::unique_ptr<TraceSourceFactory>
makeBenchmarkFactory(const std::string &name)
{
    return std::make_unique<BenchmarkFactory>(name);
}

std::unique_ptr<TraceSourceFactory>
makeSuiteMixFactory(std::uint64_t segment_insts)
{
    return std::make_unique<SuiteMixFactory>(segment_insts);
}

} // namespace mtdae
