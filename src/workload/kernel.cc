#include "workload/kernel.hh"

#include "common/log.hh"

namespace mtdae {

namespace {

/** Operand-class signature of an opcode: dst and up to 3 sources. */
struct OperandSig
{
    // 'i' = int reg, 'f' = fp reg, '-' = must be absent.
    char dst, s0, s1, s2;
    bool needsStream;
};

OperandSig
sigOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:    return {'-', '-', '-', '-', false};
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::ILogic:
      case Opcode::IShift: return {'i', 'i', '?', '-', false};
      case Opcode::ICmp:   return {'i', 'i', '?', '-', false};
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:   return {'f', 'f', 'f', '-', false};
      case Opcode::FMA:    return {'f', 'f', 'f', 'f', false};
      case Opcode::FCmp:   return {'f', 'f', 'f', '-', false};
      case Opcode::FMov:   return {'f', 'f', '-', '-', false};
      case Opcode::MovIF:  return {'f', 'i', '-', '-', false};
      case Opcode::MovFI:  return {'i', 'f', '-', '-', false};
      case Opcode::LdI:    return {'i', 'i', '-', '-', true};
      case Opcode::LdF:    return {'f', 'i', '-', '-', true};
      case Opcode::StI:    return {'-', 'i', 'i', '-', true};
      case Opcode::StF:    return {'-', 'i', 'f', '-', true};
      case Opcode::Br:     return {'-', 'i', '-', '-', false};
      case Opcode::BrF:    return {'-', 'f', '-', '-', false};
      case Opcode::Jmp:    return {'-', '-', '-', '-', false};
      default:
        MTDAE_PANIC("sigOf: bad opcode");
    }
}

void
checkOperand(const Kernel &k, const char *what, char cls, int vreg)
{
    if (cls == '-') {
        MTDAE_ASSERT(vreg < 0, k.name, ": unexpected ", what, " operand");
        return;
    }
    if (cls == '?') {  // optional int source (immediate forms)
        if (vreg < 0)
            return;
        cls = 'i';
    }
    MTDAE_ASSERT(vreg >= 0, k.name, ": missing ", what, " operand");
    const int limit = cls == 'i' ? k.numIntRegs : k.numFpRegs;
    MTDAE_ASSERT(vreg < limit, k.name, ": ", what, " vreg ", vreg,
                 " out of range (", limit, ")");
}

} // namespace

void
Kernel::validate() const
{
    MTDAE_ASSERT(!ops.empty(), name, ": empty kernel");
    MTDAE_ASSERT(numIntRegs > 0 && numIntRegs <= 32,
                 name, ": int vreg count out of range");
    MTDAE_ASSERT(numFpRegs >= 0 && numFpRegs <= 32,
                 name, ": fp vreg count out of range");
    MTDAE_ASSERT(ops.back().backedge,
                 name, ": kernel must end with the loop back-edge");

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const KOp &o = ops[i];
        const OperandSig sig = sigOf(o.op);
        checkOperand(*this, "dst", sig.dst, o.dst);
        checkOperand(*this, "src0", sig.s0, o.src0);
        checkOperand(*this, "src1", sig.s1, o.src1);
        checkOperand(*this, "src2", sig.s2, o.src2);
        if (sig.needsStream) {
            MTDAE_ASSERT(o.stream >= 0 &&
                         o.stream < int(streams.size()),
                         name, ": op ", i, " has a bad stream id");
        } else {
            MTDAE_ASSERT(o.stream < 0, name, ": op ", i,
                         " must not reference a stream");
        }
        if (o.skip > 0) {
            MTDAE_ASSERT(isCondBranch(o.op),
                         name, ": only branches may skip");
            MTDAE_ASSERT(i + 1 + o.skip < ops.size(),
                         name, ": branch skip runs past the back-edge");
        }
        if (o.backedge)
            MTDAE_ASSERT(i + 1 == ops.size(),
                         name, ": back-edge must be the last op");
    }

    for (const StreamSpec &s : streams) {
        MTDAE_ASSERT(s.footprint >= s.elemBytes,
                     name, ": stream footprint smaller than an element");
        MTDAE_ASSERT(s.elemBytes > 0, name, ": zero element size");
        MTDAE_ASSERT(s.addrReg >= 0 && s.addrReg < numIntRegs,
                     name, ": stream address register out of range");
        if (s.kind == StreamSpec::Kind::Strided) {
            MTDAE_ASSERT(s.stride != 0, name, ": zero stride");
            // A stride beyond the footprint would silently degenerate
            // to a single cache line: the wrap in
            // KernelTraceSource::streamAddr subtracts one footprint per
            // access, so |stride| must fit inside it.
            const std::uint64_t mag =
                s.stride >= 0 ? std::uint64_t(s.stride)
                              : std::uint64_t(-s.stride);
            MTDAE_ASSERT(mag <= s.footprint, name,
                         ": stride exceeds the stream footprint");
        }
    }
}

Kernel::Mix
Kernel::mix() const
{
    Mix m;
    for (const KOp &o : ops) {
        m.total += 1;
        if (isLoad(o.op))
            m.loads += 1;
        else if (isStore(o.op))
            m.stores += 1;
        else if (isBranch(o.op))
            m.branches += 1;
        else if (unitOf(o.op) == Unit::EP)
            m.fpOps += 1;
        else
            m.intOps += 1;
    }
    return m;
}

KernelBuilder::KernelBuilder()
{
    loopReg_ = intReg();
}

int
KernelBuilder::intReg()
{
    MTDAE_ASSERT(k_.numIntRegs < 32, "kernel uses too many int registers");
    return k_.numIntRegs++;
}

int
KernelBuilder::fpReg()
{
    MTDAE_ASSERT(k_.numFpRegs < 32, "kernel uses too many fp registers");
    return k_.numFpRegs++;
}

KernelBuilder::Stream
KernelBuilder::strided(std::uint64_t footprint, std::int64_t stride,
                       std::uint32_t elem_bytes)
{
    return stridedShared(footprint, stride, intReg(), elem_bytes);
}

KernelBuilder::Stream
KernelBuilder::stridedShared(std::uint64_t footprint, std::int64_t stride,
                             int addr_reg, std::uint32_t elem_bytes)
{
    StreamSpec s;
    s.kind = StreamSpec::Kind::Strided;
    s.footprint = footprint;
    s.stride = stride;
    s.elemBytes = elem_bytes;
    s.addrReg = addr_reg;
    k_.streams.push_back(s);
    return {int(k_.streams.size()) - 1, addr_reg};
}

KernelBuilder::Stream
KernelBuilder::gather(std::uint64_t footprint, int idx_reg,
                      std::uint32_t elem_bytes)
{
    StreamSpec s;
    s.kind = StreamSpec::Kind::Gather;
    s.footprint = footprint;
    s.stride = 0;
    s.elemBytes = elem_bytes;
    s.addrReg = idx_reg;
    k_.streams.push_back(s);
    return {int(k_.streams.size()) - 1, idx_reg};
}

KernelBuilder::Stream
KernelBuilder::chain(std::uint64_t footprint, std::uint32_t elem_bytes)
{
    const int addr_reg = intReg();
    StreamSpec s;
    s.kind = StreamSpec::Kind::Chain;
    s.footprint = footprint;
    s.stride = 0;
    s.elemBytes = elem_bytes;
    s.addrReg = addr_reg;
    k_.streams.push_back(s);
    return {int(k_.streams.size()) - 1, addr_reg};
}

void
KernelBuilder::push(KOp op)
{
    MTDAE_ASSERT(!built_, "KernelBuilder reused after build()");
    k_.ops.push_back(op);
}

int
KernelBuilder::iop(Opcode op, int src0, int src1)
{
    const int dst = intReg();
    iopInto(op, dst, src0, src1);
    return dst;
}

void
KernelBuilder::iopInto(Opcode op, int dst, int src0, int src1)
{
    KOp o;
    o.op = op;
    o.dst = dst;
    o.src0 = src0;
    o.src1 = src1;
    push(o);
}

void
KernelBuilder::advance(const Stream &s)
{
    iopInto(Opcode::IAdd, s.addrReg, s.addrReg);
}

int
KernelBuilder::fop(Opcode op, int src0, int src1, int src2)
{
    const int dst = fpReg();
    fopInto(op, dst, src0, src1, src2);
    return dst;
}

void
KernelBuilder::fopInto(Opcode op, int dst, int src0, int src1, int src2)
{
    KOp o;
    o.op = op;
    o.dst = dst;
    o.src0 = src0;
    o.src1 = src1;
    o.src2 = src2;
    push(o);
}

int
KernelBuilder::movif(int int_src)
{
    const int dst = fpReg();
    KOp o;
    o.op = Opcode::MovIF;
    o.dst = dst;
    o.src0 = int_src;
    push(o);
    return dst;
}

int
KernelBuilder::movfi(int fp_src)
{
    const int dst = intReg();
    KOp o;
    o.op = Opcode::MovFI;
    o.dst = dst;
    o.src0 = fp_src;
    push(o);
    return dst;
}

int
KernelBuilder::ldf(const Stream &s)
{
    const int dst = fpReg();
    ldfInto(dst, s);
    return dst;
}

void
KernelBuilder::ldfInto(int dst, const Stream &s)
{
    KOp o;
    o.op = Opcode::LdF;
    o.dst = dst;
    o.src0 = s.addrReg;
    o.stream = s.id;
    push(o);
}

int
KernelBuilder::ldi(const Stream &s)
{
    const int dst = intReg();
    ldiInto(dst, s);
    return dst;
}

void
KernelBuilder::ldiInto(int dst, const Stream &s)
{
    KOp o;
    o.op = Opcode::LdI;
    o.dst = dst;
    o.src0 = s.addrReg;
    o.stream = s.id;
    push(o);
}

void
KernelBuilder::stf(const Stream &s, int fp_src)
{
    KOp o;
    o.op = Opcode::StF;
    o.src0 = s.addrReg;
    o.src1 = fp_src;
    o.stream = s.id;
    push(o);
}

void
KernelBuilder::sti(const Stream &s, int int_src)
{
    KOp o;
    o.op = Opcode::StI;
    o.src0 = s.addrReg;
    o.src1 = int_src;
    o.stream = s.id;
    push(o);
}

void
KernelBuilder::br(int cond_reg, float taken_prob, std::uint8_t skip)
{
    KOp o;
    o.op = Opcode::Br;
    o.src0 = cond_reg;
    o.takenProb = taken_prob;
    o.skip = skip;
    push(o);
}

void
KernelBuilder::brf(int fcond_reg, float taken_prob, std::uint8_t skip)
{
    KOp o;
    o.op = Opcode::BrF;
    o.src0 = fcond_reg;
    o.takenProb = taken_prob;
    o.skip = skip;
    push(o);
}

Kernel
KernelBuilder::build(std::string name)
{
    MTDAE_ASSERT(!built_, "KernelBuilder::build called twice");
    built_ = true;

    // Loop-counter update plus the back-edge branch that depends on it.
    KOp upd;
    upd.op = Opcode::IAdd;
    upd.dst = loopReg_;
    upd.src0 = loopReg_;
    k_.ops.push_back(upd);

    KOp be;
    be.op = Opcode::Br;
    be.src0 = loopReg_;
    be.backedge = true;
    k_.ops.push_back(be);

    k_.name = std::move(name);
    k_.validate();
    return std::move(k_);
}

} // namespace mtdae
