#include "workload/dsl/interp.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/serialize.hh"
#include "workload/dsl/parser.hh"
#include "workload/spec_fp95.hh"

namespace mtdae::dsl {

namespace {

/** What a name is bound to in some scope. */
struct Binding
{
    enum class Kind : std::uint8_t {
        Param,      ///< Compile-time number; value in value.
        LoopIndex,  ///< Current iteration of an enclosing loop.
        IntReg,     ///< Integer virtual register; id in reg.
        FpReg,      ///< FP virtual register; id in reg.
        Stream,     ///< Address stream; handle in stream.
    };

    Kind kind = Kind::Param;
    double value = 0.0;
    int reg = -1;
    KernelBuilder::Stream stream;
};

const char *
describe(Binding::Kind k)
{
    switch (k) {
      case Binding::Kind::Param:     return "a param";
      case Binding::Kind::LoopIndex: return "a loop index";
      case Binding::Kind::IntReg:    return "an int register";
      case Binding::Kind::FpReg:     return "an fp register";
      case Binding::Kind::Stream:    return "a stream";
    }
    return "";
}

/**
 * Shortest decimal form that parses back to the same double AND lexes
 * as a DSL numeric literal: whole values print as plain integers and
 * fractions in fixed notation — never scientific (the lexer has no
 * exponent syntax).
 */
std::string
numText(double v)
{
    char buf[348];
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) <= 9007199254740992.0) {
        const auto res =
            std::to_chars(buf, buf + sizeof(buf), std::int64_t(v));
        return std::string(buf, res.ptr);
    }
    const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                   std::chars_format::fixed);
    return std::string(buf, res.ptr);
}

bool
isWhole(double v)
{
    return std::isfinite(v) && v == std::floor(v);
}

/**
 * Evaluates a Program against a KernelBuilder. Statements map 1:1 onto
 * builder calls, and every builder precondition (register and body
 * budgets, stream geometry, branch skips) is checked here first with a
 * source position, so the builder's panic paths stay unreachable.
 */
class Interp
{
  public:
    Interp(const Program &p, const ParamOverrides &overrides)
        : prog_(p), overrides_(overrides)
    {}

    CompiledKernel
    run()
    {
        scopes_.emplace_back();
        execStmts(prog_.items);
        checkBranchSkips();
        checkOverridesUsed();
        CompiledKernel out;
        out.params = std::move(params_);
        out.kernel = b_.build(prog_.kernelName);
        return out;
    }

  private:
    // The builder itself allows 32 registers per class and the trace
    // machinery a uint8 skip; the body cap guards against loop bombs
    // (a fully unrolled `loop 65536` would otherwise run the
    // interpreter for a very long time before anything rejects it).
    static constexpr std::size_t kMaxBodyOps = 4096;
    static constexpr double kMaxLoopTrips = 65536.0;
    static constexpr double kMaxFootprint = 1073741824.0;  // 1 GiB
    static constexpr double kMaxElemBytes = 4096.0;

    struct PendingBranch
    {
        int line, col;
        std::size_t opIdx;  ///< Body-op index of the branch itself.
        std::uint8_t skip;
    };

    // --- scopes -------------------------------------------------------

    Binding *
    resolve(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    void
    declare(const std::string &name, Binding binding, int line, int col)
    {
        if (const Binding *prior = resolve(name)) {
            if (prior->kind == Binding::Kind::Param &&
                binding.kind == Binding::Kind::Param)
                throw DslError(line, col,
                               "duplicate param '" + name + "'");
            throw DslError(line, col,
                           "duplicate identifier '" + name + "'");
        }
        scopes_.back().emplace(name, std::move(binding));
    }

    // --- expressions --------------------------------------------------

    double
    evalExpr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Num:
            return e.num;
          case Expr::Kind::Var: {
            const Binding *b = resolve(e.name);
            if (!b)
                throw DslError(e.line, e.col,
                               "unknown identifier '" + e.name + "'");
            if (b->kind != Binding::Kind::Param &&
                b->kind != Binding::Kind::LoopIndex)
                throw DslError(e.line, e.col,
                               "type mismatch: '" + e.name + "' is " +
                                   describe(b->kind) +
                                   ", expected a number");
            return b->value;
          }
          case Expr::Kind::Unary:
            return -evalExpr(*e.lhs);
          case Expr::Kind::Binary: {
            const double l = evalExpr(*e.lhs);
            const double r = evalExpr(*e.rhs);
            switch (e.op) {
              case '+': return l + r;
              case '-': return l - r;
              case '*': return l * r;
              case '/':
                if (r == 0.0)
                    throw DslError(e.line, e.col, "division by zero");
                return l / r;
              case '%':
                if (r == 0.0)
                    throw DslError(e.line, e.col, "modulo by zero");
                return std::fmod(l, r);
            }
            break;
          }
        }
        throw DslError(e.line, e.col, "malformed expression");
    }

    bool
    evalCond(const Cond &c)
    {
        const double l = evalExpr(*c.lhs);
        if (c.relop.empty())
            return l != 0.0;
        const double r = evalExpr(*c.rhs);
        if (c.relop == "==") return l == r;
        if (c.relop == "!=") return l != r;
        if (c.relop == "<")  return l < r;
        if (c.relop == "<=") return l <= r;
        if (c.relop == ">")  return l > r;
        return l >= r;
    }

    double
    evalWhole(const Expr &e, double lo, double hi, const char *what)
    {
        const double v = evalExpr(e);
        if (!isWhole(v) || v < lo || v > hi)
            throw DslError(e.line, e.col,
                           std::string(what) +
                               " must be a whole number between " +
                               numText(lo) + " and " + numText(hi) +
                               ", got " + numText(v));
        return v;
    }

    // --- operand resolution -------------------------------------------

    Binding *
    resolveOperand(const Operand &o)
    {
        Binding *b = resolve(o.name);
        if (!b)
            throw DslError(o.line, o.col,
                           "unknown identifier '" + o.name + "'");
        return b;
    }

    int
    intRegOperand(const Operand &o)
    {
        Binding *b = resolveOperand(o);
        if (o.isAddr) {
            if (b->kind != Binding::Kind::Stream)
                throw DslError(o.line, o.col,
                               "type mismatch: '" + o.name + "' is " +
                                   describe(b->kind) +
                                   ", expected a stream");
            return b->stream.addrReg;
        }
        if (b->kind != Binding::Kind::IntReg)
            throw DslError(o.line, o.col,
                           "type mismatch: '" + o.name + "' is " +
                               describe(b->kind) +
                               ", expected an int register");
        return b->reg;
    }

    int
    fpRegOperand(const Operand &o)
    {
        Binding *b = resolveOperand(o);
        if (o.isAddr)
            throw DslError(o.line, o.col,
                           "type mismatch: 'addr(" + o.name +
                               ")' is an int register, expected an fp "
                               "register");
        if (b->kind != Binding::Kind::FpReg)
            throw DslError(o.line, o.col,
                           "type mismatch: '" + o.name + "' is " +
                               describe(b->kind) +
                               ", expected an fp register");
        return b->reg;
    }

    KernelBuilder::Stream
    streamOperand(const Operand &o)
    {
        Binding *b = resolveOperand(o);
        if (o.isAddr || b->kind != Binding::Kind::Stream)
            throw DslError(o.line, o.col,
                           "type mismatch: '" + o.name + "' is " +
                               describe(b->kind) +
                               ", expected a stream");
        return b->stream;
    }

    // --- budgets ------------------------------------------------------

    void
    chargeIntReg(int line, int col)
    {
        if (intRegs_ >= 32)
            throw DslError(line, col,
                           "too many int registers (the machine has "
                           "32)");
        ++intRegs_;
    }

    void
    chargeFpReg(int line, int col)
    {
        if (fpRegs_ >= 32)
            throw DslError(line, col,
                           "too many fp registers (the machine has "
                           "32)");
        ++fpRegs_;
    }

    void
    chargeOp(int line, int col)
    {
        if (opCount_ >= kMaxBodyOps)
            throw DslError(line, col,
                           "kernel body exceeds " +
                               std::to_string(kMaxBodyOps) +
                               " operations");
        ++opCount_;
    }

    // --- statements ---------------------------------------------------

    void
    execStmts(const std::vector<Stmt> &stmts)
    {
        for (const Stmt &s : stmts)
            execStmt(s);
    }

    void
    execStmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Param:   execParam(s); return;
          case Stmt::Kind::Stream:  execStream(s); return;
          case Stmt::Kind::Reg:     execReg(s); return;
          case Stmt::Kind::Let:     execOp(s, /*in_place=*/false); return;
          case Stmt::Kind::OpInto:  execOp(s, /*in_place=*/true); return;
          case Stmt::Kind::Store:   execStore(s); return;
          case Stmt::Kind::Advance: execAdvance(s); return;
          case Stmt::Kind::Branch:  execBranch(s); return;
          case Stmt::Kind::Loop:    execLoop(s); return;
          case Stmt::Kind::If:      execIf(s); return;
        }
    }

    void
    execParam(const Stmt &s)
    {
        double value = evalExpr(*s.e0);
        // Later overrides win, mirroring repeated --kernel-param flags.
        for (const auto &[name, v] : overrides_)
            if (name == s.name)
                value = v;
        Binding b;
        b.kind = Binding::Kind::Param;
        b.value = value;
        declare(s.name, b, s.line, s.col);
        params_.emplace_back(s.name, value);
    }

    void
    execStream(const Stmt &s)
    {
        const StreamInit &init = s.stream;
        const std::uint64_t footprint = std::uint64_t(evalWhole(
            *init.footprint, 1.0, kMaxFootprint, "stream footprint"));
        const std::uint32_t elem =
            init.elem ? std::uint32_t(evalWhole(*init.elem, 1.0,
                                                kMaxElemBytes,
                                                "element size"))
                      : 8;
        if (footprint < elem)
            throw DslError(s.line, s.col,
                           "stream footprint smaller than an element");

        KernelBuilder::Stream stream;
        switch (init.kind) {
          case StreamInit::Kind::Strided: {
            const double sv = evalWhole(*init.stride, -kMaxFootprint,
                                        kMaxFootprint, "stride");
            if (sv == 0.0)
                throw DslError(init.stride->line, init.stride->col,
                               "zero stride");
            const double mag = sv >= 0.0 ? sv : -sv;
            if (mag > double(footprint))
                throw DslError(init.stride->line, init.stride->col,
                               "stride exceeds the stream footprint");
            if (!init.shareWith.empty()) {
                Operand share;
                share.name = init.shareWith;
                share.line = s.line;
                share.col = s.col;
                const KernelBuilder::Stream other =
                    streamOperand(share);
                stream = b_.stridedShared(footprint,
                                          std::int64_t(sv),
                                          other.addrReg, elem);
            } else {
                chargeIntReg(s.line, s.col);
                stream = b_.strided(footprint, std::int64_t(sv), elem);
            }
            break;
          }
          case StreamInit::Kind::Gather: {
            const int idx = intRegOperand(init.index);
            stream = b_.gather(footprint, idx, elem);
            break;
          }
          case StreamInit::Kind::Chain: {
            chargeIntReg(s.line, s.col);
            stream = b_.chain(footprint, elem);
            break;
          }
        }

        Binding b;
        b.kind = Binding::Kind::Stream;
        b.stream = stream;
        declare(s.name, b, s.line, s.col);
    }

    void
    execReg(const Stmt &s)
    {
        Binding b;
        if (s.regIsFp) {
            chargeFpReg(s.line, s.col);
            b.kind = Binding::Kind::FpReg;
            b.reg = b_.fpReg();
        } else {
            chargeIntReg(s.line, s.col);
            b.kind = Binding::Kind::IntReg;
            b.reg = b_.intReg();
        }
        declare(s.name, b, s.line, s.col);
    }

    void
    requireArgs(const Stmt &s, std::size_t lo, std::size_t hi)
    {
        if (s.args.size() >= lo && s.args.size() <= hi)
            return;
        std::string msg = "'" + s.op + "' takes ";
        if (lo == hi)
            msg += std::to_string(lo) +
                   (lo == 1 ? " operand" : " operands");
        else
            msg += std::to_string(lo) + " or " + std::to_string(hi) +
                   " operands";
        throw DslError(s.line, s.col, msg);
    }

    void
    execOp(const Stmt &s, bool in_place)
    {
        // The destination of an in-place op must already be a register
        // of the op's result class.
        const auto intoReg = [&](Binding::Kind cls) {
            Binding *b = resolve(s.name);
            if (!b)
                throw DslError(s.line, s.col,
                               "unknown identifier '" + s.name + "'");
            if (b->kind != cls)
                throw DslError(
                    s.line, s.col,
                    "type mismatch: '" + s.name + "' is " +
                        describe(b->kind) + ", expected " +
                        (cls == Binding::Kind::FpReg
                             ? "an fp register"
                             : "an int register"));
            return b->reg;
        };
        const auto bindResult = [&](Binding::Kind cls, int reg) {
            Binding b;
            b.kind = cls;
            b.reg = reg;
            declare(s.name, b, s.line, s.col);
        };

        if (s.op == "loadf" || s.op == "loadi") {
            requireArgs(s, 1, 1);
            const KernelBuilder::Stream stream = streamOperand(s.args[0]);
            const bool fp = s.op == "loadf";
            chargeOp(s.line, s.col);
            if (in_place) {
                const int dst = intoReg(fp ? Binding::Kind::FpReg
                                           : Binding::Kind::IntReg);
                fp ? b_.ldfInto(dst, stream) : b_.ldiInto(dst, stream);
            } else {
                fp ? chargeFpReg(s.line, s.col)
                   : chargeIntReg(s.line, s.col);
                bindResult(fp ? Binding::Kind::FpReg
                              : Binding::Kind::IntReg,
                           fp ? b_.ldf(stream) : b_.ldi(stream));
            }
            return;
        }

        if (s.op == "movif" || s.op == "movfi") {
            requireArgs(s, 1, 1);
            if (in_place)
                throw DslError(s.line, s.col,
                               "'" + s.op + "' has no in-place form");
            const bool toFp = s.op == "movif";
            const int src = toFp ? intRegOperand(s.args[0])
                                 : fpRegOperand(s.args[0]);
            chargeOp(s.line, s.col);
            toFp ? chargeFpReg(s.line, s.col)
                 : chargeIntReg(s.line, s.col);
            bindResult(toFp ? Binding::Kind::FpReg
                            : Binding::Kind::IntReg,
                       toFp ? b_.movif(src) : b_.movfi(src));
            return;
        }

        struct FpOp { const char *name; Opcode op; std::size_t args; };
        static const FpOp fp_ops[] = {
            {"fadd", Opcode::FAdd, 2}, {"fsub", Opcode::FSub, 2},
            {"fmul", Opcode::FMul, 2}, {"fdiv", Opcode::FDiv, 2},
            {"fcmp", Opcode::FCmp, 2}, {"fma", Opcode::FMA, 3},
            {"fmov", Opcode::FMov, 1},
        };
        for (const FpOp &op : fp_ops) {
            if (s.op != op.name)
                continue;
            requireArgs(s, op.args, op.args);
            int src[3] = {-1, -1, -1};
            for (std::size_t i = 0; i < op.args; ++i)
                src[i] = fpRegOperand(s.args[i]);
            chargeOp(s.line, s.col);
            if (in_place) {
                const int dst = intoReg(Binding::Kind::FpReg);
                b_.fopInto(op.op, dst, src[0], src[1], src[2]);
            } else {
                chargeFpReg(s.line, s.col);
                bindResult(Binding::Kind::FpReg,
                           b_.fop(op.op, src[0], src[1], src[2]));
            }
            return;
        }

        struct IntOp { const char *name; Opcode op; };
        static const IntOp int_ops[] = {
            {"iadd", Opcode::IAdd},   {"isub", Opcode::ISub},
            {"imul", Opcode::IMul},   {"ilogic", Opcode::ILogic},
            {"ishift", Opcode::IShift}, {"icmp", Opcode::ICmp},
        };
        for (const IntOp &op : int_ops) {
            if (s.op != op.name)
                continue;
            requireArgs(s, 1, 2);
            const int s0 = intRegOperand(s.args[0]);
            const int s1 =
                s.args.size() > 1 ? intRegOperand(s.args[1]) : -1;
            chargeOp(s.line, s.col);
            if (in_place) {
                const int dst = intoReg(Binding::Kind::IntReg);
                b_.iopInto(op.op, dst, s0, s1);
            } else {
                chargeIntReg(s.line, s.col);
                bindResult(Binding::Kind::IntReg,
                           b_.iop(op.op, s0, s1));
            }
            return;
        }

        // The parser only admits known operation keywords.
        throw DslError(s.line, s.col, "unknown operation '" + s.op + "'");
    }

    void
    execStore(const Stmt &s)
    {
        Operand target;
        target.name = s.name;
        target.line = s.line;
        target.col = s.col;
        const KernelBuilder::Stream stream = streamOperand(target);
        chargeOp(s.line, s.col);
        if (s.op == "storef")
            b_.stf(stream, fpRegOperand(s.args[0]));
        else
            b_.sti(stream, intRegOperand(s.args[0]));
    }

    void
    execAdvance(const Stmt &s)
    {
        Operand target;
        target.name = s.name;
        target.line = s.line;
        target.col = s.col;
        const KernelBuilder::Stream stream = streamOperand(target);
        chargeOp(s.line, s.col);
        b_.advance(stream);
    }

    void
    execBranch(const Stmt &s)
    {
        const bool fp = s.op == "branchf";
        const int cond = fp ? fpRegOperand(s.args[0])
                            : intRegOperand(s.args[0]);
        const double prob = evalExpr(*s.e0);
        if (!(prob >= 0.0 && prob <= 1.0))
            throw DslError(s.e0->line, s.e0->col,
                           "branch probability must be between 0 and "
                           "1, got " + numText(prob));
        const double skip =
            s.e1 ? evalWhole(*s.e1, 0.0, 255.0, "branch skip") : 0.0;
        branches_.push_back(
            {s.line, s.col, opCount_, std::uint8_t(skip)});
        chargeOp(s.line, s.col);
        if (fp)
            b_.brf(cond, float(prob), std::uint8_t(skip));
        else
            b_.br(cond, float(prob), std::uint8_t(skip));
    }

    void
    execLoop(const Stmt &s)
    {
        const double trips =
            evalWhole(*s.e0, 0.0, kMaxLoopTrips, "loop count");
        for (double i = 0.0; i < trips; i += 1.0) {
            // A fresh scope per iteration: declarations inside the
            // body allocate new registers each time around, exactly
            // like a C++ `for` over builder calls.
            scopes_.emplace_back();
            if (!s.name.empty()) {
                Binding b;
                b.kind = Binding::Kind::LoopIndex;
                b.value = i;
                scopes_.back().emplace(s.name, b);
            }
            execStmts(s.body);
            scopes_.pop_back();
        }
    }

    void
    execIf(const Stmt &s)
    {
        const bool taken = evalCond(s.cond);
        scopes_.emplace_back();
        execStmts(taken ? s.body : s.elseBody);
        scopes_.pop_back();
    }

    // --- final checks -------------------------------------------------

    void
    checkBranchSkips()
    {
        // build() appends the loop-counter update and the back-edge, so
        // the final body has opCount_ + 2 ops; a taken branch lands on
        // op (idx + 1 + skip), which must stay inside it (mirrors
        // Kernel::validate, with a source position instead of a panic).
        for (const PendingBranch &pb : branches_) {
            if (pb.skip > 0 &&
                pb.opIdx + 1 + pb.skip >= opCount_ + 2)
                throw DslError(pb.line, pb.col,
                               "branch skip runs past the loop "
                               "back-edge");
        }
    }

    void
    checkOverridesUsed()
    {
        for (const auto &[name, value] : overrides_) {
            (void)value;
            bool declared = false;
            for (const auto &[pname, pvalue] : params_) {
                (void)pvalue;
                if (pname == name)
                    declared = true;
            }
            if (!declared)
                throw DslError(0, 0,
                               "unknown param '" + name +
                                   "' (the kernel does not declare "
                                   "it)");
        }
    }

    const Program &prog_;
    const ParamOverrides &overrides_;
    KernelBuilder b_;
    std::vector<std::map<std::string, Binding>> scopes_;
    std::vector<std::pair<std::string, double>> params_;
    std::vector<PendingBranch> branches_;
    std::size_t opCount_ = 0;
    int intRegs_ = 1;  ///< The builder pre-allocates the loop counter.
    int fpRegs_ = 0;
};

/** One DSL kernel on every context, on the canonical workload layout. */
class DslKernelFactory : public TraceSourceFactory
{
  public:
    DslKernelFactory(std::string text, ParamOverrides overrides)
        : text_(std::move(text)), overrides_(std::move(overrides))
    {
        CompiledKernel c = compileDsl(text_, overrides_);
        kernel_ = std::move(c.kernel);

        // A kernel named after a modelled benchmark takes that
        // benchmark's layout slot (making its sources byte-identical
        // to the C++ original's); anything else hashes into the
        // remaining slots below the 6-bit region-encoding limit.
        const std::size_t idx = specFp95Index(kernel_.name);
        if (idx < specFp95Names().size()) {
            slot_ = idx;
        } else {
            const auto *bytes = reinterpret_cast<const std::uint8_t *>(
                kernel_.name.data());
            slot_ = 10 + fnv1a(bytes, kernel_.name.size()) % 50;
        }

        // Two factories share a warm-start prefix only when both the
        // text and every resolved param value coincide.
        const auto *text_bytes =
            reinterpret_cast<const std::uint8_t *>(text_.data());
        fingerprint_ = "dsl:" + kernel_.name + "@" +
                       std::to_string(fnv1a(text_bytes, text_.size()));
        for (const auto &[name, value] : c.params)
            fingerprint_ += ":" + name + "=" + numText(value);
    }

    std::vector<std::unique_ptr<TraceSource>>
    make(std::uint32_t num_threads, std::uint64_t seed) const override
    {
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (ThreadId t = 0; t < num_threads; ++t)
            sources.push_back(std::make_unique<KernelTraceSource>(
                kernel_, workloadRegionBase(t, slot_),
                workloadPcBase(slot_),
                workloadSourceSeed(seed, t, slot_)));
        return sources;
    }

    std::unique_ptr<TraceSourceFactory>
    clone() const override
    {
        return std::make_unique<DslKernelFactory>(*this);
    }

    const std::string &name() const override { return kernel_.name; }

    std::string fingerprint() const override { return fingerprint_; }

  private:
    std::string text_;
    ParamOverrides overrides_;
    Kernel kernel_;
    std::size_t slot_ = 0;
    std::string fingerprint_;
};

} // namespace

CompiledKernel
compileDsl(const std::string &text, const ParamOverrides &overrides)
{
    const Program p = parseProgram(text);
    return Interp(p, overrides).run();
}

Kernel
compileKernel(const std::string &text, const ParamOverrides &overrides)
{
    return compileDsl(text, overrides).kernel;
}

std::unique_ptr<TraceSourceFactory>
makeDslFactory(const std::string &text, const ParamOverrides &overrides)
{
    return std::make_unique<DslKernelFactory>(text, overrides);
}

std::string
readKernelFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw DslError(0, 0,
                       "cannot read kernel file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace mtdae::dsl
