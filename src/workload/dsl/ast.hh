/**
 * @file
 * AST of the kernel DSL. The parser (parser.hh) produces a Program;
 * the interpreter (interp.hh) evaluates it into a Kernel. printProgram
 * renders a canonical text form whose reparse is structurally equal to
 * the original — the round-trip contract the property tests enforce.
 */

#ifndef MTDAE_WORKLOAD_DSL_AST_HH
#define MTDAE_WORKLOAD_DSL_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mtdae::dsl {

/** A compile-time scalar expression over numbers, params and indices. */
struct Expr
{
    enum class Kind : std::uint8_t {
        Num,     ///< Literal; value in num.
        Var,     ///< Param or loop-index reference; name in name.
        Unary,   ///< -lhs.
        Binary,  ///< lhs op rhs; op one of + - * / %.
    };

    Kind kind = Kind::Num;
    double num = 0.0;
    std::string name;
    char op = 0;
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
    int line = 1;
    int col = 1;
};

/** An `if` condition: lhs [relop rhs]; empty relop means lhs != 0. */
struct Cond
{
    std::string relop;  ///< "", "==", "!=", "<", "<=", ">", ">=".
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
};

/** A value operand of an operation: a name or `addr(stream)`. */
struct Operand
{
    std::string name;
    bool isAddr = false;  ///< addr(name): the stream's address register.
    int line = 1;
    int col = 1;
};

/** The initializer of a `stream` declaration. */
struct StreamInit
{
    enum class Kind : std::uint8_t { Strided, Gather, Chain };

    Kind kind = Kind::Strided;
    std::unique_ptr<Expr> footprint;
    std::unique_ptr<Expr> stride;  ///< Strided only.
    std::unique_ptr<Expr> elem;    ///< Optional; null = 8 bytes.
    std::string shareWith;         ///< Strided only; "" = own register.
    Operand index;                 ///< Gather only: the index register.
};

/** One statement (or top-level item) of a kernel program. */
struct Stmt
{
    enum class Kind : std::uint8_t {
        Param,    ///< param name = e0
        Stream,   ///< stream name = init
        Reg,      ///< reg name : int|fp
        Let,      ///< let name = op(args...)
        OpInto,   ///< op name = args...   (in-place)
        Store,    ///< storef/storei name, args[0]
        Advance,  ///< advance name
        Branch,   ///< branch/branchf args[0] prob e0 [skip e1]
        Loop,     ///< loop e0 [as name] { body }
        If,       ///< if cond { body } [else { elseBody }]
    };

    Kind kind = Kind::Param;
    int line = 1;
    int col = 1;
    std::string name;  ///< Declared name / stream name / loop variable.
    std::string op;    ///< Operation or statement keyword spelling.
    bool regIsFp = false;
    StreamInit stream;
    std::vector<Operand> args;
    std::unique_ptr<Expr> e0;
    std::unique_ptr<Expr> e1;
    Cond cond;
    std::vector<Stmt> body;
    std::vector<Stmt> elseBody;
    bool hasElse = false;
};

/** A parsed kernel program. */
struct Program
{
    std::string kernelName;
    int line = 1;
    int col = 1;
    std::vector<Stmt> items;
};

/**
 * Render @p p as canonical DSL text. parse(printProgram(p)) is
 * structurally equal to @p p (printProgram of the reparse is
 * byte-identical), which is the AST round-trip contract.
 */
std::string printProgram(const Program &p);

} // namespace mtdae::dsl

#endif // MTDAE_WORKLOAD_DSL_AST_HH
