#include "workload/dsl/parser.hh"

#include <memory>
#include <utility>

namespace mtdae::dsl {

namespace {

/** Operation names usable in `let` and in-place statements. */
bool
isOpName(const std::string &w)
{
    static const char *const ops[] = {
        "loadf", "loadi",
        "fadd", "fsub", "fmul", "fdiv", "fma", "fcmp", "fmov",
        "iadd", "isub", "imul", "ilogic", "ishift", "icmp",
        "movif", "movfi",
    };
    for (const char *op : ops)
        if (w == op)
            return true;
    return false;
}

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    Program
    run()
    {
        Program p;
        const Token &kw = peek();
        if (!atKeyword("kernel"))
            throw DslError(kw.line, kw.col,
                           "expected 'kernel' at the start of the file");
        get();
        const Token name = expectIdent("a kernel name");
        p.kernelName = name.text;
        p.line = name.line;
        p.col = name.col;
        p.items = parseStmts(/*top_level=*/true);
        return p;
    }

  private:
    static constexpr int kMaxExprDepth = 64;
    static constexpr int kMaxBlockDepth = 32;

    const Token &peek() const { return toks_[pos_]; }

    const Token &
    get()
    {
        const Token &t = toks_[pos_];
        if (t.kind != Token::Kind::Eof)
            ++pos_;
        return t;
    }

    bool
    atKeyword(const char *word) const
    {
        return peek().kind == Token::Kind::Keyword && peek().text == word;
    }

    bool
    atPunct(const char *p) const
    {
        return peek().kind == Token::Kind::Punct && peek().text == p;
    }

    Token
    expectIdent(const char *what)
    {
        const Token &t = peek();
        if (t.kind != Token::Kind::Ident)
            throw DslError(t.line, t.col,
                           std::string("expected ") + what + ", got '" +
                               t.text + "'");
        return get();
    }

    void
    expectPunct(const char *p)
    {
        const Token &t = peek();
        if (t.kind != Token::Kind::Punct || t.text != p)
            throw DslError(t.line, t.col,
                           std::string("expected '") + p + "', got '" +
                               t.text + "'");
        get();
    }

    void
    expectKeyword(const char *word)
    {
        const Token &t = peek();
        if (t.kind != Token::Kind::Keyword || t.text != word)
            throw DslError(t.line, t.col,
                           std::string("expected '") + word +
                               "', got '" + t.text + "'");
        get();
    }

    // --- expressions --------------------------------------------------

    std::unique_ptr<Expr>
    parseExpr(int depth = 0)
    {
        checkDepth(depth);
        auto lhs = parseTerm(depth + 1);
        while (atPunct("+") || atPunct("-")) {
            const Token op = get();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->op = op.text[0];
            e->line = op.line;
            e->col = op.col;
            e->lhs = std::move(lhs);
            e->rhs = parseTerm(depth + 1);
            lhs = std::move(e);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseTerm(int depth)
    {
        checkDepth(depth);
        auto lhs = parseFactor(depth + 1);
        while (atPunct("*") || atPunct("/") || atPunct("%")) {
            const Token op = get();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->op = op.text[0];
            e->line = op.line;
            e->col = op.col;
            e->lhs = std::move(lhs);
            e->rhs = parseFactor(depth + 1);
            lhs = std::move(e);
        }
        return lhs;
    }

    std::unique_ptr<Expr>
    parseFactor(int depth)
    {
        checkDepth(depth);
        const Token &t = peek();
        auto e = std::make_unique<Expr>();
        e->line = t.line;
        e->col = t.col;
        if (t.kind == Token::Kind::Number) {
            e->kind = Expr::Kind::Num;
            e->num = get().num;
            return e;
        }
        if (t.kind == Token::Kind::Ident) {
            e->kind = Expr::Kind::Var;
            e->name = get().text;
            return e;
        }
        if (atPunct("(")) {
            get();
            auto inner = parseExpr(depth + 1);
            expectPunct(")");
            return inner;
        }
        if (atPunct("-")) {
            get();
            e->kind = Expr::Kind::Unary;
            e->lhs = parseFactor(depth + 1);
            return e;
        }
        throw DslError(t.line, t.col,
                       "expected a number, a name or '(', got '" +
                           t.text + "'");
    }

    void
    checkDepth(int depth) const
    {
        if (depth > kMaxExprDepth)
            throw DslError(peek().line, peek().col,
                           "expression nested too deeply");
    }

    Cond
    parseCond()
    {
        Cond c;
        c.lhs = parseExpr();
        static const char *const relops[] = {"==", "!=", "<=", ">=",
                                             "<",  ">"};
        for (const char *op : relops) {
            if (atPunct(op)) {
                c.relop = get().text;
                c.rhs = parseExpr();
                break;
            }
        }
        return c;
    }

    // --- operands -----------------------------------------------------

    Operand
    parseOperand()
    {
        Operand o;
        const Token &t = peek();
        o.line = t.line;
        o.col = t.col;
        if (atKeyword("addr")) {
            get();
            expectPunct("(");
            o.name = expectIdent("a stream name").text;
            o.isAddr = true;
            expectPunct(")");
            return o;
        }
        o.name = expectIdent("a value name").text;
        return o;
    }

    std::vector<Operand>
    parseOperandList()
    {
        std::vector<Operand> args;
        args.push_back(parseOperand());
        while (atPunct(",")) {
            get();
            args.push_back(parseOperand());
        }
        return args;
    }

    // --- statements ---------------------------------------------------

    std::vector<Stmt>
    parseStmts(bool top_level)
    {
        std::vector<Stmt> items;
        for (;;) {
            if (top_level) {
                if (peek().kind == Token::Kind::Eof)
                    return items;
            } else if (atPunct("}")) {
                get();
                return items;
            } else if (peek().kind == Token::Kind::Eof) {
                // The caller turns this into an "unterminated ... body"
                // diagnostic at the opening brace.
                throw UnterminatedBlock{};
            }
            items.push_back(parseStmt(top_level));
        }
    }

    struct UnterminatedBlock
    {};

    std::vector<Stmt>
    parseBlock(const char *what)
    {
        if (blockDepth_ >= kMaxBlockDepth)
            throw DslError(peek().line, peek().col,
                           "blocks nested too deeply");
        const Token &open = peek();
        expectPunct("{");
        const int open_line = open.line;
        const int open_col = open.col;
        ++blockDepth_;
        try {
            auto body = parseStmts(/*top_level=*/false);
            --blockDepth_;
            return body;
        } catch (const UnterminatedBlock &) {
            throw DslError(open_line, open_col,
                           std::string("unterminated ") + what +
                               " body (missing '}')");
        }
    }

    Stmt
    parseStmt(bool top_level)
    {
        const Token &t = peek();
        Stmt s;
        s.line = t.line;
        s.col = t.col;

        if (t.kind == Token::Kind::Keyword && isOpName(t.text)) {
            // In-place operation: `op dst = src[, src...]`.
            s.kind = Stmt::Kind::OpInto;
            s.op = get().text;
            s.name = expectIdent("a destination register").text;
            expectPunct("=");
            s.args = parseOperandList();
            return s;
        }

        if (atKeyword("param")) {
            get();
            if (!top_level)
                throw DslError(t.line, t.col,
                               "param declarations must be at the top "
                               "level");
            s.kind = Stmt::Kind::Param;
            s.name = expectIdent("a param name").text;
            expectPunct("=");
            s.e0 = parseExpr();
            return s;
        }
        if (atKeyword("stream")) {
            get();
            s.kind = Stmt::Kind::Stream;
            s.name = expectIdent("a stream name").text;
            expectPunct("=");
            s.stream = parseStreamInit();
            return s;
        }
        if (atKeyword("reg")) {
            get();
            s.kind = Stmt::Kind::Reg;
            s.name = expectIdent("a register name").text;
            expectPunct(":");
            if (atKeyword("int")) {
                get();
                s.regIsFp = false;
            } else if (atKeyword("fp")) {
                get();
                s.regIsFp = true;
            } else {
                throw DslError(peek().line, peek().col,
                               "expected 'int' or 'fp', got '" +
                                   peek().text + "'");
            }
            return s;
        }
        if (atKeyword("let")) {
            get();
            s.kind = Stmt::Kind::Let;
            s.name = expectIdent("a value name").text;
            expectPunct("=");
            const Token &op = peek();
            if (op.kind != Token::Kind::Keyword || !isOpName(op.text))
                throw DslError(op.line, op.col,
                               "expected an operation after '=', got '" +
                                   op.text + "'");
            s.op = get().text;
            expectPunct("(");
            s.args = parseOperandList();
            expectPunct(")");
            return s;
        }
        if (atKeyword("storef") || atKeyword("storei")) {
            s.kind = Stmt::Kind::Store;
            s.op = get().text;
            s.name = expectIdent("a stream name").text;
            expectPunct(",");
            s.args.push_back(parseOperand());
            return s;
        }
        if (atKeyword("advance")) {
            get();
            s.kind = Stmt::Kind::Advance;
            s.name = expectIdent("a stream name").text;
            return s;
        }
        if (atKeyword("branch") || atKeyword("branchf")) {
            s.kind = Stmt::Kind::Branch;
            s.op = get().text;
            s.args.push_back(parseOperand());
            expectKeyword("prob");
            s.e0 = parseExpr();
            if (atKeyword("skip")) {
                get();
                s.e1 = parseExpr();
            }
            return s;
        }
        if (atKeyword("loop")) {
            get();
            s.kind = Stmt::Kind::Loop;
            s.e0 = parseExpr();
            if (atKeyword("as")) {
                get();
                s.name = expectIdent("a loop variable").text;
            }
            s.body = parseBlock("loop");
            return s;
        }
        if (atKeyword("if")) {
            get();
            s.kind = Stmt::Kind::If;
            s.cond = parseCond();
            s.body = parseBlock("if");
            if (atKeyword("else")) {
                get();
                s.hasElse = true;
                s.elseBody = parseBlock("else");
            }
            return s;
        }

        if (t.kind == Token::Kind::Ident)
            throw DslError(t.line, t.col,
                           "unknown statement '" + t.text + "'");
        throw DslError(t.line, t.col,
                       "expected a statement, got '" + t.text + "'");
    }

    StreamInit
    parseStreamInit()
    {
        StreamInit init;
        const Token &t = peek();
        if (atKeyword("strided")) {
            get();
            init.kind = StreamInit::Kind::Strided;
            expectPunct("(");
            init.footprint = parseExpr();
            expectPunct(",");
            init.stride = parseExpr();
            if (atPunct(",")) {
                get();
                init.elem = parseExpr();
            }
            expectPunct(")");
            if (atKeyword("share")) {
                get();
                init.shareWith = expectIdent("a stream name").text;
            }
            return init;
        }
        if (atKeyword("gather")) {
            get();
            init.kind = StreamInit::Kind::Gather;
            expectPunct("(");
            init.footprint = parseExpr();
            if (atPunct(",")) {
                get();
                init.elem = parseExpr();
            }
            expectPunct(")");
            expectKeyword("index");
            init.index = parseOperand();
            return init;
        }
        if (atKeyword("chain")) {
            get();
            init.kind = StreamInit::Kind::Chain;
            expectPunct("(");
            init.footprint = parseExpr();
            if (atPunct(",")) {
                get();
                init.elem = parseExpr();
            }
            expectPunct(")");
            return init;
        }
        throw DslError(t.line, t.col,
                       "expected 'strided', 'gather' or 'chain', got '" +
                           t.text + "'");
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
    int blockDepth_ = 0;
};

} // namespace

Program
parseProgram(const std::string &text)
{
    return Parser(lex(text)).run();
}

} // namespace mtdae::dsl
