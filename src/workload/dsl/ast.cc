#include "workload/dsl/ast.hh"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace mtdae::dsl {

namespace {

/**
 * Shortest decimal form that parses back to the same double AND lexes
 * as a DSL numeric literal: whole values print as plain integers and
 * fractions in fixed notation — never scientific (the lexer has no
 * exponent syntax), so printProgram() output always reparses.
 */
std::string
numText(double v)
{
    char buf[348];
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) <= 9007199254740992.0) {
        const auto res =
            std::to_chars(buf, buf + sizeof(buf), std::int64_t(v));
        return std::string(buf, res.ptr);
    }
    const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                   std::chars_format::fixed);
    return std::string(buf, res.ptr);
}

void
printExpr(const Expr &e, std::string &out)
{
    switch (e.kind) {
      case Expr::Kind::Num:
        out += numText(e.num);
        return;
      case Expr::Kind::Var:
        out += e.name;
        return;
      case Expr::Kind::Unary:
        out += "(-";
        printExpr(*e.lhs, out);
        out += ")";
        return;
      case Expr::Kind::Binary:
        out += "(";
        printExpr(*e.lhs, out);
        out += " ";
        out += e.op;
        out += " ";
        printExpr(*e.rhs, out);
        out += ")";
        return;
    }
}

void
printOperand(const Operand &o, std::string &out)
{
    if (o.isAddr) {
        out += "addr(";
        out += o.name;
        out += ")";
    } else {
        out += o.name;
    }
}

void
printStreamInit(const StreamInit &s, std::string &out)
{
    switch (s.kind) {
      case StreamInit::Kind::Strided:
        out += "strided(";
        printExpr(*s.footprint, out);
        out += ", ";
        printExpr(*s.stride, out);
        if (s.elem) {
            out += ", ";
            printExpr(*s.elem, out);
        }
        out += ")";
        if (!s.shareWith.empty()) {
            out += " share ";
            out += s.shareWith;
        }
        return;
      case StreamInit::Kind::Gather:
        out += "gather(";
        printExpr(*s.footprint, out);
        if (s.elem) {
            out += ", ";
            printExpr(*s.elem, out);
        }
        out += ") index ";
        printOperand(s.index, out);
        return;
      case StreamInit::Kind::Chain:
        out += "chain(";
        printExpr(*s.footprint, out);
        if (s.elem) {
            out += ", ";
            printExpr(*s.elem, out);
        }
        out += ")";
        return;
    }
}

void printStmts(const std::vector<Stmt> &stmts, int depth,
                std::string &out);

void
printStmt(const Stmt &s, int depth, std::string &out)
{
    out.append(std::size_t(depth) * 4, ' ');
    switch (s.kind) {
      case Stmt::Kind::Param:
        out += "param " + s.name + " = ";
        printExpr(*s.e0, out);
        break;
      case Stmt::Kind::Stream:
        out += "stream " + s.name + " = ";
        printStreamInit(s.stream, out);
        break;
      case Stmt::Kind::Reg:
        out += "reg " + s.name + " : ";
        out += s.regIsFp ? "fp" : "int";
        break;
      case Stmt::Kind::Let:
        out += "let " + s.name + " = " + s.op + "(";
        for (std::size_t i = 0; i < s.args.size(); ++i) {
            if (i)
                out += ", ";
            printOperand(s.args[i], out);
        }
        out += ")";
        break;
      case Stmt::Kind::OpInto:
        out += s.op + " " + s.name + " = ";
        for (std::size_t i = 0; i < s.args.size(); ++i) {
            if (i)
                out += ", ";
            printOperand(s.args[i], out);
        }
        break;
      case Stmt::Kind::Store:
        out += s.op + " " + s.name + ", ";
        printOperand(s.args[0], out);
        break;
      case Stmt::Kind::Advance:
        out += "advance " + s.name;
        break;
      case Stmt::Kind::Branch:
        out += s.op + " ";
        printOperand(s.args[0], out);
        out += " prob ";
        printExpr(*s.e0, out);
        if (s.e1) {
            out += " skip ";
            printExpr(*s.e1, out);
        }
        break;
      case Stmt::Kind::Loop:
        out += "loop ";
        printExpr(*s.e0, out);
        if (!s.name.empty())
            out += " as " + s.name;
        out += " {\n";
        printStmts(s.body, depth + 1, out);
        out.append(std::size_t(depth) * 4, ' ');
        out += "}";
        break;
      case Stmt::Kind::If:
        out += "if ";
        printExpr(*s.cond.lhs, out);
        if (!s.cond.relop.empty()) {
            out += " " + s.cond.relop + " ";
            printExpr(*s.cond.rhs, out);
        }
        out += " {\n";
        printStmts(s.body, depth + 1, out);
        out.append(std::size_t(depth) * 4, ' ');
        out += "}";
        if (s.hasElse) {
            out += " else {\n";
            printStmts(s.elseBody, depth + 1, out);
            out.append(std::size_t(depth) * 4, ' ');
            out += "}";
        }
        break;
    }
    out += "\n";
}

void
printStmts(const std::vector<Stmt> &stmts, int depth, std::string &out)
{
    for (const Stmt &s : stmts)
        printStmt(s, depth, out);
}

} // namespace

std::string
printProgram(const Program &p)
{
    std::string out = "kernel " + p.kernelName + "\n";
    printStmts(p.items, 0, out);
    return out;
}

} // namespace mtdae::dsl
