#include "workload/dsl/lexer.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace mtdae::dsl {

const std::vector<std::string> &
dslKeywords()
{
    static const std::vector<std::string> words = [] {
        std::vector<std::string> w = {
            // structure
            "kernel", "param", "stream", "reg", "let", "advance",
            "loop", "as", "if", "else",
            // streams
            "strided", "gather", "chain", "share", "index", "addr",
            // register classes
            "int", "fp",
            // memory / control statements
            "storef", "storei", "branch", "branchf", "prob", "skip",
            // operations
            "loadf", "loadi",
            "fadd", "fsub", "fmul", "fdiv", "fma", "fcmp", "fmov",
            "iadd", "isub", "imul", "ilogic", "ishift", "icmp",
            "movif", "movfi",
        };
        std::sort(w.begin(), w.end());
        return w;
    }();
    return words;
}

bool
isDslKeyword(const std::string &word)
{
    const auto &words = dslKeywords();
    return std::binary_search(words.begin(), words.end(), word);
}

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
digit(char c)
{
    return c >= '0' && c <= '9';
}

} // namespace

std::vector<Token>
lex(const std::string &text)
{
    std::vector<Token> out;
    int line = 1;
    int col = 1;
    std::size_t i = 0;

    auto advance = [&](std::size_t n) {
        for (std::size_t k = 0; k < n; ++k) {
            if (text[i + k] == '\n') {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        i += n;
    };

    while (i < text.size()) {
        const char c = text[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        if (c == '#') {  // comment to end of line
            std::size_t n = 0;
            while (i + n < text.size() && text[i + n] != '\n')
                ++n;
            advance(n);
            continue;
        }

        Token tok;
        tok.line = line;
        tok.col = col;

        if (identStart(c)) {
            std::size_t n = 1;
            while (i + n < text.size() && identCont(text[i + n]))
                ++n;
            tok.text = text.substr(i, n);
            tok.kind = isDslKeyword(tok.text) ? Token::Kind::Keyword
                                              : Token::Kind::Ident;
            advance(n);
            out.push_back(std::move(tok));
            continue;
        }

        if (digit(c)) {
            std::size_t n = 1;
            while (i + n < text.size() && digit(text[i + n]))
                ++n;
            if (i + n < text.size() && text[i + n] == '.' &&
                i + n + 1 < text.size() && digit(text[i + n + 1])) {
                ++n;
                while (i + n < text.size() && digit(text[i + n]))
                    ++n;
            }
            const std::string digits = text.substr(i, n);
            double mult = 1.0;
            if (i + n < text.size()) {
                const char s = text[i + n];
                if (s == 'K')
                    mult = 1024.0;
                else if (s == 'M')
                    mult = 1024.0 * 1024.0;
                else if (s == 'G')
                    mult = 1024.0 * 1024.0 * 1024.0;
                if (mult != 1.0)
                    ++n;
            }
            // A trailing identifier character makes the literal
            // ambiguous (e.g. "4Kb", "12x"): reject it outright.
            if (i + n < text.size() && identCont(text[i + n]))
                throw DslError(line, col, "bad numeric literal '" +
                                              text.substr(i, n + 1) +
                                              "'");
            tok.kind = Token::Kind::Number;
            tok.text = text.substr(i, n);
            tok.num = std::strtod(digits.c_str(), nullptr) * mult;
            advance(n);
            out.push_back(std::move(tok));
            continue;
        }

        // Two-character operators first, then single punctuation.
        static const char *const two[] = {"==", "!=", "<=", ">="};
        bool matched = false;
        for (const char *op : two) {
            if (text.compare(i, 2, op) == 0) {
                tok.kind = Token::Kind::Punct;
                tok.text = op;
                advance(2);
                out.push_back(std::move(tok));
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        static const std::string singles = "=,(){}:+-*/%<>";
        if (singles.find(c) != std::string::npos) {
            tok.kind = Token::Kind::Punct;
            tok.text = std::string(1, c);
            advance(1);
            out.push_back(std::move(tok));
            continue;
        }

        throw DslError(line, col,
                       "unexpected character '" + std::string(1, c) +
                           "'");
    }

    Token eof;
    eof.kind = Token::Kind::Eof;
    eof.text = "<eof>";
    eof.line = line;
    eof.col = col;
    out.push_back(std::move(eof));
    return out;
}

} // namespace mtdae::dsl
