/**
 * @file
 * Lexer of the kernel DSL (docs/KERNEL_DSL.md): turns `.mk` text into a
 * token stream with line/column positions, so every later stage can
 * attach an exact source location to its diagnostics.
 */

#ifndef MTDAE_WORKLOAD_DSL_LEXER_HH
#define MTDAE_WORKLOAD_DSL_LEXER_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mtdae::dsl {

/**
 * A diagnostic from any stage of the DSL front end (lexer, parser,
 * interpreter). Unlike the simulator's MTDAE_FATAL/PANIC paths, DSL
 * errors are recoverable — a bad kernel file is user input, and the
 * tests (and fuzzer) assert messages without dying — so they travel as
 * exceptions. what() renders as "line:col: message".
 */
class DslError : public std::runtime_error
{
  public:
    DslError(int error_line, int error_col, const std::string &msg)
        : std::runtime_error(std::to_string(error_line) + ":" +
                             std::to_string(error_col) + ": " + msg),
          line(error_line), col(error_col), message(msg)
    {}

    int line;             ///< 1-based source line.
    int col;              ///< 1-based source column.
    std::string message;  ///< The message without the position prefix.
};

/** One lexical token. */
struct Token
{
    enum class Kind : std::uint8_t {
        Ident,    ///< Unreserved identifier.
        Keyword,  ///< Reserved word (see dslKeywords()).
        Number,   ///< Numeric literal; value in num.
        Punct,    ///< Punctuation/operator; spelling in text.
        Eof,      ///< End of input.
    };

    Kind kind = Kind::Eof;
    std::string text;  ///< Spelling (idents, keywords, puncts).
    double num = 0.0;  ///< Value (numbers only), suffix applied.
    int line = 1;      ///< 1-based source line.
    int col = 1;       ///< 1-based source column.
};

/**
 * The reserved words of the kernel DSL, sorted lexicographically. The
 * docs-drift test locks this list against the table in
 * docs/KERNEL_DSL.md in both directions.
 */
const std::vector<std::string> &dslKeywords();

/** True when @p word is a reserved word. */
bool isDslKeyword(const std::string &word);

/**
 * Tokenize @p text. Comments run from '#' to end of line; numeric
 * literals take an optional K/M/G (binary) suffix.
 *
 * @throws DslError on a malformed token
 */
std::vector<Token> lex(const std::string &text);

} // namespace mtdae::dsl

#endif // MTDAE_WORKLOAD_DSL_LEXER_HH
