/**
 * @file
 * Recursive-descent parser of the kernel DSL: token stream -> Program
 * AST. Grammar in docs/KERNEL_DSL.md. All failures throw DslError with
 * the exact source position; the parser never crashes on malformed
 * input (fuzzed in tests/test_properties.cc).
 */

#ifndef MTDAE_WORKLOAD_DSL_PARSER_HH
#define MTDAE_WORKLOAD_DSL_PARSER_HH

#include <string>

#include "workload/dsl/ast.hh"
#include "workload/dsl/lexer.hh"

namespace mtdae::dsl {

/**
 * Parse a kernel program.
 *
 * @throws DslError on any lexical or syntactic fault
 */
Program parseProgram(const std::string &text);

} // namespace mtdae::dsl

#endif // MTDAE_WORKLOAD_DSL_PARSER_HH
