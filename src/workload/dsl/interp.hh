/**
 * @file
 * Interpreter of the kernel DSL: evaluates a parsed Program against
 * KernelBuilder, producing the same Kernel a hand-written C++ builder
 * would — register ids are allocated in statement order, so a DSL port
 * that mirrors a C++ builder's call sequence yields a byte-identical
 * kernel (the golden-equivalence contract of tests/test_dsl.cc).
 *
 * All semantic faults (unknown identifiers, type mismatches, budget
 * overruns) throw DslError with the exact source position; the
 * interpreter pre-checks every constraint Kernel::validate() panics on,
 * so no text input can crash the process.
 */

#ifndef MTDAE_WORKLOAD_DSL_INTERP_HH
#define MTDAE_WORKLOAD_DSL_INTERP_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workload/dsl/ast.hh"
#include "workload/dsl/lexer.hh"
#include "workload/kernel.hh"
#include "workload/trace_source.hh"

namespace mtdae::dsl {

/**
 * Param values overriding the defaults declared in the kernel text,
 * e.g. from --kernel-param or a sweep grid. Later entries win on a
 * repeated name; a name no `param` declares is an error.
 */
using ParamOverrides = std::vector<std::pair<std::string, double>>;

/** A compiled kernel plus its resolved params, in declaration order. */
struct CompiledKernel
{
    Kernel kernel;
    std::vector<std::pair<std::string, double>> params;
};

/**
 * Parse, validate and evaluate kernel text.
 *
 * @throws DslError on any lexical, syntactic or semantic fault
 */
CompiledKernel compileDsl(const std::string &text,
                          const ParamOverrides &overrides = {});

/** compileDsl, keeping only the kernel. */
Kernel compileKernel(const std::string &text,
                     const ParamOverrides &overrides = {});

/**
 * Factory binding a DSL kernel to every hardware context, mirroring
 * makeBenchmarkFactory: thread t runs the kernel on its own region of
 * the canonical workload layout. A kernel named after one of the ten
 * modelled benchmarks takes that benchmark's layout slot, so its
 * sources — and therefore its RunResult — are byte-identical to the
 * C++ original's; other names hash into the remaining slots. The
 * fingerprint folds the kernel text and the resolved param values, so
 * warm-start prefixes are only ever shared between identical workloads.
 *
 * @throws DslError when the text does not compile
 */
std::unique_ptr<TraceSourceFactory>
makeDslFactory(const std::string &text,
               const ParamOverrides &overrides = {});

/**
 * Read a kernel file whole.
 *
 * @throws DslError (position 0:0) when the file cannot be read
 */
std::string readKernelFile(const std::string &path);

} // namespace mtdae::dsl

#endif // MTDAE_WORKLOAD_DSL_INTERP_HH
