#include "isa/inst.hh"

#include <sstream>

namespace mtdae {

namespace {

void
printReg(std::ostream &os, const RegRef &r)
{
    os << (r.cls == RegClass::Int ? 'r' : 'f') << int(r.idx);
}

} // namespace

std::string
TraceInst::disasm() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << ": " << mnemonic(op);
    bool first = true;
    if (dst.valid()) {
        os << ' ';
        printReg(os, dst);
        first = false;
    }
    for (const auto &s : src) {
        if (!s.valid())
            continue;
        os << (first ? " " : ", ");
        printReg(os, s);
        first = false;
    }
    if (isMem(op))
        os << " @0x" << std::hex << addr << std::dec;
    if (isCondBranch(op))
        os << (taken ? " [taken]" : " [not-taken]");
    return os.str();
}

} // namespace mtdae
