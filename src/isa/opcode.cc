#include "isa/opcode.hh"

#include "common/log.hh"

namespace mtdae {

bool
isLoad(Opcode op)
{
    return op == Opcode::LdI || op == Opcode::LdF;
}

bool
isStore(Opcode op)
{
    return op == Opcode::StI || op == Opcode::StF;
}

bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

bool
isBranch(Opcode op)
{
    return op == Opcode::Br || op == Opcode::BrF || op == Opcode::Jmp;
}

bool
isCondBranch(Opcode op)
{
    return op == Opcode::Br || op == Opcode::BrF;
}

bool
isFpOp(Opcode op)
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FMA:
      case Opcode::FCmp:
      case Opcode::FMov:
        return true;
      default:
        return false;
    }
}

Unit
unitOf(Opcode op)
{
    // Memory and control always execute on the AP (the paper dispatches
    // *all* memory instructions to the AP); MovIF produces an FP value and
    // executes on the EP; FP computation executes on the EP; everything
    // else is integer work on the AP.
    if (isMem(op) || isBranch(op))
        return Unit::AP;
    if (op == Opcode::MovIF || isFpOp(op))
        return Unit::EP;
    return Unit::AP;
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop:    return "nop";
      case Opcode::IAdd:   return "iadd";
      case Opcode::ISub:   return "isub";
      case Opcode::IMul:   return "imul";
      case Opcode::ILogic: return "ilogic";
      case Opcode::IShift: return "ishift";
      case Opcode::ICmp:   return "icmp";
      case Opcode::FAdd:   return "fadd";
      case Opcode::FSub:   return "fsub";
      case Opcode::FMul:   return "fmul";
      case Opcode::FDiv:   return "fdiv";
      case Opcode::FMA:    return "fma";
      case Opcode::FCmp:   return "fcmp";
      case Opcode::FMov:   return "fmov";
      case Opcode::MovIF:  return "movif";
      case Opcode::MovFI:  return "movfi";
      case Opcode::LdI:    return "ldi";
      case Opcode::LdF:    return "ldf";
      case Opcode::StI:    return "sti";
      case Opcode::StF:    return "stf";
      case Opcode::Br:     return "br";
      case Opcode::BrF:    return "brf";
      case Opcode::Jmp:    return "jmp";
      default:
        MTDAE_PANIC("mnemonic: bad opcode ", int(op));
    }
}

} // namespace mtdae
