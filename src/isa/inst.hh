/**
 * @file
 * TraceInst: one instruction of a dynamic trace, as produced by the
 * workload substrate and consumed by the core. Trace-driven simulation
 * (as in the paper) records opcodes, registers, effective addresses and
 * branch outcomes — never data values.
 */

#ifndef MTDAE_ISA_INST_HH
#define MTDAE_ISA_INST_HH

#include <array>
#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace mtdae {

/**
 * A single dynamic trace instruction.
 */
struct TraceInst
{
    Opcode op = Opcode::Nop;          ///< Operation.
    RegRef dst = RegRef::none();      ///< Destination register, if any.
    std::array<RegRef, 3> src = {RegRef::none(), RegRef::none(),
                                 RegRef::none()};  ///< Source registers.
    Addr pc = 0;                      ///< Instruction address.
    Addr addr = 0;                    ///< Effective address (memory ops).
    bool taken = false;               ///< Branch outcome (branches).

    /** Number of valid source registers. */
    int
    numSrcs() const
    {
        int n = 0;
        for (const auto &s : src)
            if (s.valid())
                ++n;
        return n;
    }

    /** Unit this instruction is steered to. */
    Unit unit() const { return unitOf(op); }

    /** Human-readable one-line disassembly (for tests and debugging). */
    std::string disasm() const;
};

} // namespace mtdae

#endif // MTDAE_ISA_INST_HH
