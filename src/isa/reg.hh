/**
 * @file
 * Architectural register references for the mini load/store ISA.
 *
 * The ISA has two 32-entry architectural register files, mirroring the
 * DEC Alpha split the paper relies on for its data-type steering rule:
 * integer registers live in the AP file, FP registers in the EP file.
 */

#ifndef MTDAE_ISA_REG_HH
#define MTDAE_ISA_REG_HH

#include <cstdint>

namespace mtdae {

/** Which architectural register file a register belongs to. */
enum class RegClass : std::uint8_t {
    Int,  ///< Integer register (renamed into the AP physical file).
    Fp,   ///< Floating-point register (renamed into the EP physical file).
};

/**
 * A reference to one architectural register, or "none".
 */
struct RegRef
{
    RegClass cls = RegClass::Int;  ///< Register file.
    std::uint8_t idx = kNone;      ///< Index within the file, or kNone.

    /** Sentinel index meaning "no register". */
    static constexpr std::uint8_t kNone = 0xff;

    /** True when this reference names a real register. */
    bool valid() const { return idx != kNone; }

    /** Make an integer register reference. */
    static RegRef intReg(std::uint8_t i) { return {RegClass::Int, i}; }

    /** Make an FP register reference. */
    static RegRef fpReg(std::uint8_t i) { return {RegClass::Fp, i}; }

    /** Make the "no register" reference. */
    static RegRef none() { return {RegClass::Int, kNone}; }

    bool
    operator==(const RegRef &o) const
    {
        return cls == o.cls && idx == o.idx;
    }
};

} // namespace mtdae

#endif // MTDAE_ISA_REG_HH
