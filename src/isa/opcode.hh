/**
 * @file
 * Opcodes of the mini load/store ISA and their static traits, including
 * the paper's data-type steering rule (which processing unit an opcode is
 * dispatched to).
 */

#ifndef MTDAE_ISA_OPCODE_HH
#define MTDAE_ISA_OPCODE_HH

#include <cstdint>

namespace mtdae {

/** The two decoupled processing units. */
enum class Unit : std::uint8_t {
    AP,  ///< Address Processor: integer, memory and control instructions.
    EP,  ///< Execute Processor: floating-point computation.
};

/**
 * Instruction opcodes. The set is Alpha-flavoured but minimal: enough to
 * express the dependence and memory behaviour the paper's workloads show.
 */
enum class Opcode : std::uint8_t {
    Nop,    ///< No operation (pipeline filler).
    // AP integer ALU
    IAdd,   ///< Integer add (also address arithmetic / induction updates).
    ISub,   ///< Integer subtract.
    IMul,   ///< Integer multiply (same AP latency; units are general).
    ILogic, ///< Integer logical op.
    IShift, ///< Integer shift (index scaling).
    ICmp,   ///< Integer compare, produces an int condition.
    // EP floating point
    FAdd,   ///< FP add.
    FSub,   ///< FP subtract.
    FMul,   ///< FP multiply.
    FDiv,   ///< FP divide (uniform EP latency, per Figure 2).
    FMA,    ///< Fused multiply-add (three sources).
    FCmp,   ///< FP compare, produces an FP condition register.
    FMov,   ///< FP register move.
    // Cross-file moves
    MovIF,  ///< Move int -> fp (executes on the EP, reads an AP reg).
    MovFI,  ///< Move fp -> int (executes on the AP, reads an EP reg).
    // Memory (all steered to the AP)
    LdI,    ///< Integer load (indices, pointers, scalars).
    LdF,    ///< FP load (writes an EP register from the AP).
    StI,    ///< Integer store.
    StF,    ///< FP store (address from AP, data from EP).
    // Control (resolved on the AP)
    Br,     ///< Conditional branch on an integer register.
    BrF,    ///< Conditional branch on an FP condition (loss-of-decoupling).
    Jmp,    ///< Unconditional jump (loop back-edges).

    NumOpcodes,  ///< Count; not a real opcode.
};

/** Number of opcodes in the ISA. */
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

/** True for LdI/LdF. */
bool isLoad(Opcode op);

/** True for StI/StF. */
bool isStore(Opcode op);

/** True for any memory-accessing opcode. */
bool isMem(Opcode op);

/** True for Br/BrF/Jmp. */
bool isBranch(Opcode op);

/** True for conditional branches (Br/BrF). */
bool isCondBranch(Opcode op);

/** True for FP-computation opcodes (EP-resident work). */
bool isFpOp(Opcode op);

/**
 * The paper's steering rule: memory, integer and control -> AP;
 * FP computation (and int->fp moves) -> EP.
 */
Unit unitOf(Opcode op);

/** Short mnemonic for tracing/disassembly. */
const char *mnemonic(Opcode op);

} // namespace mtdae

#endif // MTDAE_ISA_OPCODE_HH
