#include "policy/policy.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/serialize.hh"

namespace mtdae {

namespace {

/**
 * Shared mechanics of every standard policy: a round-robin rotation
 * advanced one step per cycle, optionally refined by a stable sort on
 * a per-thread key. With a stable sort, filtering ineligible threads
 * before or after the sort yields the same relative order, which is
 * what lets the Simulator apply eligibility after the policy ran.
 */
class RotatingOrder
{
  public:
    explicit RotatingOrder(std::uint32_t nthreads) : nthreads_(nthreads) {}

    /** Fill @p out with all tids starting at the rotation base. */
    void
    rotation(std::vector<ThreadId> &out) const
    {
        out.clear();
        if (nthreads_ == 1) {
            // Single-thread machines dominate sweep grids; skip the
            // modular walk (and the callers' stable_sort) outright.
            out.push_back(0);
            return;
        }
        out.reserve(nthreads_);
        for (std::uint32_t i = 0; i < nthreads_; ++i)
            out.push_back((rr_ + i) % nthreads_);
    }

    /**
     * Rotation refined by @p key: fewest-first, ties keep rotation
     * order (the ICOUNT shape — RR-2.8 in the SMT fetch literature).
     */
    template <typename KeyFn>
    void
    rotationSortedBy(const std::vector<ThreadState> &threads, KeyFn key,
                     std::vector<ThreadId> &out) const
    {
        rotation(out);
        if (out.size() > 1)
            std::stable_sort(out.begin(), out.end(),
                             [&](ThreadId a, ThreadId b) {
                                 return key(threads[a]) < key(threads[b]);
                             });
    }

    /**
     * Rotation refined by @p key divided by the thread's priority
     * weight, fewest-first: a * w(b) < b * w(a) compares the exact
     * rationals key/weight without division (both factors fit u32, so
     * the u64 products cannot overflow). Ties — including every pair
     * on a uniform-weight machine with equal keys — keep rotation
     * order, so weight vectors of all ones reduce to the unweighted
     * sort.
     */
    template <typename KeyFn>
    void
    rotationSortedWeighted(const std::vector<ThreadState> &threads,
                           KeyFn key, std::vector<ThreadId> &out) const
    {
        rotation(out);
        if (out.size() > 1)
            std::stable_sort(
                out.begin(), out.end(), [&](ThreadId a, ThreadId b) {
                    const ThreadState &ta = threads[a];
                    const ThreadState &tb = threads[b];
                    return std::uint64_t(key(ta)) * tb.weight <
                           std::uint64_t(key(tb)) * ta.weight;
                });
    }

    void advance() { rr_ = (rr_ + 1) % nthreads_; }

    /** Advance @p n times in O(1): n modular increments collapse. */
    void skip(std::uint64_t n) { rr_ = std::uint32_t((rr_ + n) % nthreads_); }

    /** Current rotation base (checkpointing). */
    std::uint32_t position() const { return rr_; }

    /** Overwrite the rotation base (checkpoint restore). */
    void setPosition(std::uint32_t rr) { rr_ = rr % nthreads_; }

  private:
    std::uint32_t nthreads_;
    std::uint32_t rr_ = 0;
};

/**
 * Every standard policy is "rotation, optionally sorted by one
 * ThreadState key", so the implementations are a key table rather
 * than a class hierarchy: null keys mean pure round-robin. Novel
 * policies (per-unit, gating, adaptive) subclass the interfaces in
 * policy.hh directly.
 */
using KeyFn = std::uint32_t (*)(const ThreadState &);

std::uint32_t
keyFetchBuf(const ThreadState &t)
{
    return t.fetchBufOccupancy;
}

std::uint32_t
keyFrontEnd(const ThreadState &t)
{
    // Back-end ICOUNT counts everything between fetch and issue, not
    // just the fetch buffer: prioritise the thread clogging the
    // shared stages least.
    return t.frontEndOccupancy();
}

std::uint32_t
keyBranches(const ThreadState &t)
{
    return t.unresolvedBranches;
}

std::uint32_t
keyMisses(const ThreadState &t)
{
    return t.outstandingMisses;
}

std::uint32_t
keyIqWindow(const ThreadState &t)
{
    return t.iqOccupancyWindow;
}

/** The ordering keys of one PolicyKind, per consulting seam. */
struct PolicyKeys
{
    KeyFn fetch;  ///< FetchPolicy key; null = pure rotation.
    KeyFn arb;    ///< ArbitrationPolicy key; null = pure rotation.
};

PolicyKeys
keysFor(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Icount:
        return {keyFetchBuf, keyFrontEnd};
      case PolicyKind::RoundRobin:
        return {nullptr, nullptr};
      case PolicyKind::BrCount:
        return {keyBranches, keyBranches};
      case PolicyKind::MissCount:
        return {keyMisses, keyMisses};
      case PolicyKind::Stall:
      case PolicyKind::Flush:
      case PolicyKind::Split:
      case PolicyKind::Adaptive:
      case PolicyKind::Weighted:
        break;  // gating/per-unit/adaptive/weighted have own classes
    }
    MTDAE_PANIC("keysFor() on the non-keyed policy '",
                policyName(kind), "'");
}

class KeyedFetchPolicy final : public FetchPolicy
{
  public:
    KeyedFetchPolicy(PolicyKind kind, std::uint32_t nthreads)
        : kind_(kind), key_(keysFor(kind).fetch), rot_(nthreads)
    {}

    std::string_view name() const override { return policyName(kind_); }

    void
    fetchOrder(const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        if (key_)
            rot_.rotationSortedBy(threads, key_, out);
        else
            rot_.rotation(out);
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    PolicyKind kind_;
    KeyFn key_;
    RotatingOrder rot_;
};

class KeyedArbitrationPolicy final : public ArbitrationPolicy
{
  public:
    KeyedArbitrationPolicy(PolicyKind kind, std::uint32_t nthreads)
        : kind_(kind), key_(keysFor(kind).arb), rot_(nthreads)
    {}

    std::string_view name() const override { return policyName(kind_); }

    void
    dispatchOrder(const std::vector<ThreadState> &threads,
                  std::vector<ThreadId> &out) override
    {
        order(threads, out);
    }

    void
    issueOrder(Unit unit, const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        // The standard policies order both units (and dispatch) the
        // same way; per-unit specialisation stays open through the
        // interface's Unit parameter.
        (void)unit;
        order(threads, out);
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    void
    order(const std::vector<ThreadState> &threads,
          std::vector<ThreadId> &out) const
    {
        if (key_)
            rot_.rotationSortedBy(threads, key_, out);
        else
            rot_.rotation(out);
    }

    PolicyKind kind_;
    KeyFn key_;
    RotatingOrder rot_;
};

/**
 * The STALL / FLUSH fetch-gating schemes: ICOUNT ordering (rotation
 * stably sorted by fetch-buffer occupancy), but a thread with an
 * outstanding L1 load miss may not fetch at all. FLUSH additionally
 * asks the Simulator to squash the gated thread's not-yet-dispatched
 * fetch buffer, handing its dispatch slots to the other threads; the
 * squashed instructions are replayed once the miss resolves.
 *
 * On the decoupled machine this gates the *AP's* runahead on miss
 * pressure while the EP keeps draining its Instruction Queue — the
 * gating never touches already-dispatched work.
 */
class GatingFetchPolicy final : public FetchPolicy
{
  public:
    GatingFetchPolicy(PolicyKind kind, std::uint32_t nthreads)
        : kind_(kind), rot_(nthreads)
    {
        MTDAE_ASSERT(kind == PolicyKind::Stall ||
                         kind == PolicyKind::Flush,
                     "GatingFetchPolicy built from a non-gating kind");
    }

    std::string_view name() const override { return policyName(kind_); }

    void
    fetchOrder(const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        rot_.rotationSortedBy(threads, keyFetchBuf, out);
    }

    bool
    mayFetch(const ThreadState &t) const override
    {
        return t.outstandingMisses == 0;
    }

    bool
    shouldFlush(const ThreadState &t) const override
    {
        return kind_ == PolicyKind::Flush && t.outstandingMisses > 0;
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    PolicyKind kind_;
    RotatingOrder rot_;
};

/**
 * Per-unit arbitration exploiting the decoupled AP/EP split: the AP —
 * the unit that *generates* miss traffic — visits threads with the
 * fewest outstanding L1 load misses first (don't pile more runahead
 * onto a thread already waiting on memory), while the EP — the unit
 * that *drains* the decoupling queues — visits threads by trailing
 * 64-cycle IQ occupancy, fewest first (reward threads that keep their
 * IQ drained; a thread whose IQ has been backed up all window long is
 * EP-bound and yields). Dispatch uses the front-end ICOUNT key, which
 * balances the shared rename bandwidth.
 */
class SplitArbitrationPolicy final : public ArbitrationPolicy
{
  public:
    explicit SplitArbitrationPolicy(std::uint32_t nthreads)
        : rot_(nthreads)
    {}

    std::string_view
    name() const override
    {
        return policyName(PolicyKind::Split);
    }

    void
    dispatchOrder(const std::vector<ThreadState> &threads,
                  std::vector<ThreadId> &out) override
    {
        rot_.rotationSortedBy(threads, keyFrontEnd, out);
    }

    void
    issueOrder(Unit unit, const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        if (unit == Unit::AP)
            rot_.rotationSortedBy(threads, keyMisses, out);
        else
            rot_.rotationSortedBy(threads, keyIqWindow, out);
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    RotatingOrder rot_;
};

/**
 * The phase-reactive fetch policy (ROADMAP item 4): both its gating
 * and its ranking switch on the trailing outstanding-miss window.
 *
 *  - Gating: a thread is vetoed (STALL-style, never flushed) only
 *    while it has an outstanding L1 load miss AND its miss window has
 *    reached threshold * kPolicyWindowCycles — i.e. it has averaged at
 *    least `threshold` outstanding misses over the whole trailing
 *    window. A single cold miss in an otherwise-hitting phase never
 *    gates; sustained miss pressure does.
 *  - Ranking: when every thread's miss window is zero (perceived
 *    memory latency near zero — decoupling is hiding everything),
 *    ranking degenerates to pure round-robin; the moment any window is
 *    non-zero the policy switches to the ICOUNT key (fetch-buffer
 *    occupancy), which balances the front end under contention.
 *
 * Both decisions are pure functions of the ThreadState snapshots, so
 * the determinism contract holds unchanged. The veto is *unstable*
 * while a gated-or-gateable thread's window is still converging
 * (vetoStable() below): the idle fast-forward engine then steps those
 * cycles instead of skipping them, which is what keeps --cycle-skip
 * byte-identical for this policy.
 */
class AdaptiveFetchPolicy final : public FetchPolicy
{
  public:
    AdaptiveFetchPolicy(std::uint32_t threshold, std::uint32_t nthreads)
        : threshold_(threshold), rot_(nthreads)
    {}

    std::string_view
    name() const override
    {
        return policyName(PolicyKind::Adaptive);
    }

    void
    fetchOrder(const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        bool memory_phase = false;
        for (const ThreadState &t : threads)
            memory_phase |= t.missWindow != 0;
        if (memory_phase)
            rot_.rotationSortedBy(threads, keyFetchBuf, out);
        else
            rot_.rotation(out);
    }

    bool
    mayFetch(const ThreadState &t) const override
    {
        return t.outstandingMisses == 0 ||
               t.missWindow < threshold_ * kPolicyWindowCycles;
    }

    bool
    vetoStable(const ThreadState &t) const override
    {
        // With no outstanding miss the gate cannot engage no matter
        // where the window moves; otherwise the verdict is frozen only
        // once every window slot equals the (frozen) current value, so
        // further samples of it change nothing. A sum comparison is
        // NOT enough: a mixed ring can sum to outstanding * window and
        // still decay below the threshold as it slides.
        return t.outstandingMisses == 0 || t.missWindowUniform;
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    std::uint32_t threshold_;
    RotatingOrder rot_;
};

/**
 * Weighted fetch: ICOUNT with each thread's fetch-buffer occupancy
 * divided by its priority weight (exactly, via cross-multiplication).
 * A weight-4 foreground thread gets a port as long as it holds fewer
 * than 4x the buffered instructions of a weight-1 background thread;
 * uniform weights reduce to plain icount. Pure ordering — no gating.
 */
class WeightedFetchPolicy final : public FetchPolicy
{
  public:
    explicit WeightedFetchPolicy(std::uint32_t nthreads) : rot_(nthreads)
    {}

    std::string_view
    name() const override
    {
        return policyName(PolicyKind::Weighted);
    }

    void
    fetchOrder(const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        rot_.rotationSortedWeighted(threads, keyFetchBuf, out);
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    RotatingOrder rot_;
};

/**
 * Weighted dispatch/issue: back-end ICOUNT (front-end occupancy) with
 * the same weight division, on dispatch and both issue units alike. A
 * heavy thread may clog the shared stages proportionally more before
 * yielding its turn.
 */
class WeightedArbitrationPolicy final : public ArbitrationPolicy
{
  public:
    explicit WeightedArbitrationPolicy(std::uint32_t nthreads)
        : rot_(nthreads)
    {}

    std::string_view
    name() const override
    {
        return policyName(PolicyKind::Weighted);
    }

    void
    dispatchOrder(const std::vector<ThreadState> &threads,
                  std::vector<ThreadId> &out) override
    {
        rot_.rotationSortedWeighted(threads, keyFrontEnd, out);
    }

    void
    issueOrder(Unit unit, const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        (void)unit;
        rot_.rotationSortedWeighted(threads, keyFrontEnd, out);
    }

    void endCycle() override { rot_.advance(); }
    void skipCycles(std::uint64_t n) override { rot_.skip(n); }

    void save(ByteWriter &w) const override { w.u32(rot_.position()); }
    void restore(ByteReader &r) override { rot_.setPosition(r.u32()); }

  private:
    RotatingOrder rot_;
};

} // namespace

std::unique_ptr<FetchPolicy>
makeFetchPolicy(const SimConfig &cfg)
{
    MTDAE_ASSERT(policyIsFetch(cfg.fetchPolicy),
                 "'", policyName(cfg.fetchPolicy),
                 "' is not a fetch policy (SimConfig::validate "
                 "should have rejected it)");
    if (cfg.fetchPolicy == PolicyKind::Stall ||
        cfg.fetchPolicy == PolicyKind::Flush)
        return std::make_unique<GatingFetchPolicy>(cfg.fetchPolicy,
                                                   cfg.numThreads);
    if (cfg.fetchPolicy == PolicyKind::Adaptive)
        return std::make_unique<AdaptiveFetchPolicy>(
            cfg.adaptiveMissThreshold, cfg.numThreads);
    if (cfg.fetchPolicy == PolicyKind::Weighted)
        return std::make_unique<WeightedFetchPolicy>(cfg.numThreads);
    return std::make_unique<KeyedFetchPolicy>(cfg.fetchPolicy,
                                              cfg.numThreads);
}

std::unique_ptr<ArbitrationPolicy>
makeArbitrationPolicy(const SimConfig &cfg)
{
    MTDAE_ASSERT(policyIsIssue(cfg.issuePolicy),
                 "'", policyName(cfg.issuePolicy),
                 "' is not a dispatch/issue policy (SimConfig::validate "
                 "should have rejected it)");
    if (cfg.issuePolicy == PolicyKind::Split)
        return std::make_unique<SplitArbitrationPolicy>(cfg.numThreads);
    if (cfg.issuePolicy == PolicyKind::Weighted)
        return std::make_unique<WeightedArbitrationPolicy>(
            cfg.numThreads);
    return std::make_unique<KeyedArbitrationPolicy>(cfg.issuePolicy,
                                                    cfg.numThreads);
}

} // namespace mtdae
