#include "policy/policy.hh"

#include <algorithm>

#include "common/log.hh"

namespace mtdae {

namespace {

/**
 * Shared mechanics of every standard policy: a round-robin rotation
 * advanced one step per cycle, optionally refined by a stable sort on
 * a per-thread key. With a stable sort, filtering ineligible threads
 * before or after the sort yields the same relative order, which is
 * what lets the Simulator apply eligibility after the policy ran.
 */
class RotatingOrder
{
  public:
    explicit RotatingOrder(std::uint32_t nthreads) : nthreads_(nthreads) {}

    /** Fill @p out with all tids starting at the rotation base. */
    void
    rotation(std::vector<ThreadId> &out) const
    {
        out.clear();
        out.reserve(nthreads_);
        for (std::uint32_t i = 0; i < nthreads_; ++i)
            out.push_back((rr_ + i) % nthreads_);
    }

    /**
     * Rotation refined by @p key: fewest-first, ties keep rotation
     * order (the ICOUNT shape — RR-2.8 in the SMT fetch literature).
     */
    template <typename KeyFn>
    void
    rotationSortedBy(const std::vector<ThreadState> &threads, KeyFn key,
                     std::vector<ThreadId> &out) const
    {
        rotation(out);
        std::stable_sort(out.begin(), out.end(),
                         [&](ThreadId a, ThreadId b) {
                             return key(threads[a]) < key(threads[b]);
                         });
    }

    void advance() { rr_ = (rr_ + 1) % nthreads_; }

  private:
    std::uint32_t nthreads_;
    std::uint32_t rr_ = 0;
};

/**
 * Every standard policy is "rotation, optionally sorted by one
 * ThreadState key", so the implementations are a key table rather
 * than a class hierarchy: null keys mean pure round-robin. Novel
 * policies (per-unit, gating, adaptive) subclass the interfaces in
 * policy.hh directly.
 */
using KeyFn = std::uint32_t (*)(const ThreadState &);

std::uint32_t
keyFetchBuf(const ThreadState &t)
{
    return t.fetchBufOccupancy;
}

std::uint32_t
keyFrontEnd(const ThreadState &t)
{
    // Back-end ICOUNT counts everything between fetch and issue, not
    // just the fetch buffer: prioritise the thread clogging the
    // shared stages least.
    return t.frontEndOccupancy();
}

std::uint32_t
keyBranches(const ThreadState &t)
{
    return t.unresolvedBranches;
}

std::uint32_t
keyMisses(const ThreadState &t)
{
    return t.outstandingMisses;
}

/** The ordering keys of one PolicyKind, per consulting seam. */
struct PolicyKeys
{
    KeyFn fetch;  ///< FetchPolicy key; null = pure rotation.
    KeyFn arb;    ///< ArbitrationPolicy key; null = pure rotation.
};

PolicyKeys
keysFor(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Icount:
        return {keyFetchBuf, keyFrontEnd};
      case PolicyKind::RoundRobin:
        return {nullptr, nullptr};
      case PolicyKind::BrCount:
        return {keyBranches, keyBranches};
      case PolicyKind::MissCount:
        return {keyMisses, keyMisses};
    }
    MTDAE_PANIC("unreachable PolicyKind");
}

class KeyedFetchPolicy final : public FetchPolicy
{
  public:
    KeyedFetchPolicy(PolicyKind kind, std::uint32_t nthreads)
        : kind_(kind), key_(keysFor(kind).fetch), rot_(nthreads)
    {}

    std::string_view name() const override { return policyName(kind_); }

    void
    fetchOrder(const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        if (key_)
            rot_.rotationSortedBy(threads, key_, out);
        else
            rot_.rotation(out);
    }

    void endCycle() override { rot_.advance(); }

  private:
    PolicyKind kind_;
    KeyFn key_;
    RotatingOrder rot_;
};

class KeyedArbitrationPolicy final : public ArbitrationPolicy
{
  public:
    KeyedArbitrationPolicy(PolicyKind kind, std::uint32_t nthreads)
        : kind_(kind), key_(keysFor(kind).arb), rot_(nthreads)
    {}

    std::string_view name() const override { return policyName(kind_); }

    void
    dispatchOrder(const std::vector<ThreadState> &threads,
                  std::vector<ThreadId> &out) override
    {
        order(threads, out);
    }

    void
    issueOrder(Unit unit, const std::vector<ThreadState> &threads,
               std::vector<ThreadId> &out) override
    {
        // The standard policies order both units (and dispatch) the
        // same way; per-unit specialisation stays open through the
        // interface's Unit parameter.
        (void)unit;
        order(threads, out);
    }

    void endCycle() override { rot_.advance(); }

  private:
    void
    order(const std::vector<ThreadState> &threads,
          std::vector<ThreadId> &out) const
    {
        if (key_)
            rot_.rotationSortedBy(threads, key_, out);
        else
            rot_.rotation(out);
    }

    PolicyKind kind_;
    KeyFn key_;
    RotatingOrder rot_;
};

} // namespace

std::unique_ptr<FetchPolicy>
makeFetchPolicy(const SimConfig &cfg)
{
    return std::make_unique<KeyedFetchPolicy>(cfg.fetchPolicy,
                                              cfg.numThreads);
}

std::unique_ptr<ArbitrationPolicy>
makeArbitrationPolicy(const SimConfig &cfg)
{
    return std::make_unique<KeyedArbitrationPolicy>(cfg.issuePolicy,
                                                    cfg.numThreads);
}

} // namespace mtdae
