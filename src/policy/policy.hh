/**
 * @file
 * Pluggable thread-arbitration policies: the scheduler of the shared
 * pipeline stages as an explicit, swappable layer instead of loops
 * hardwired into the Simulator.
 *
 * Two seams, consulted once per cycle each:
 *
 *  - FetchPolicy       — which threads get the I-cache ports this cycle,
 *                        and in what priority order. Beyond ordering, a
 *                        fetch policy can *gate*: mayFetch() vetoes a
 *                        thread's fetch outright, and shouldFlush()
 *                        asks the Simulator to squash the thread's
 *                        not-yet-dispatched fetch buffer (the STALL /
 *                        FLUSH schemes of the SMT fetch literature).
 *  - ArbitrationPolicy — the thread visit order for the shared dispatch
 *                        stage and for each issue unit (the slot
 *                        accounting consumes the *same* order the issue
 *                        stage used, so the Figure 3 attribution can
 *                        never drift from the arbitration). The Unit
 *                        parameter lets a policy order the AP and the
 *                        EP by different keys (the `split` policy).
 *
 * Determinism contract: a policy may keep private per-cycle state (the
 * round-robin rotation), but its output must be a pure function of that
 * state and of the ThreadState snapshots it is handed — never of wall
 * clock, allocation addresses or scheduling. This is what keeps every
 * sweep byte-identical at any --jobs count.
 *
 * Policies see the machine only through ThreadState: a per-context
 * occupancy/blocked snapshot taken at the start of the consulting
 * stage. They never touch Context or Simulator internals.
 */

#ifndef MTDAE_POLICY_POLICY_HH
#define MTDAE_POLICY_POLICY_HH

#include <memory>
#include <string_view>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "isa/opcode.hh"

namespace mtdae {

class ByteWriter;
class ByteReader;

/**
 * Length, in cycles, of every trailing-window ThreadState statistic
 * (iqOccupancyWindow, missWindow). One shared constant so a policy can
 * reason about saturation: a value constant for a full window yields a
 * sum of `current_value * kPolicyWindowCycles`. Note the converse does
 * NOT hold — a mixed sample ring can coincidentally produce the same
 * sum — which is why ThreadState carries an explicit
 * missWindowUniform flag for stability reasoning.
 */
inline constexpr std::uint32_t kPolicyWindowCycles = 64;

/**
 * Read-only per-context snapshot handed to policies — the only state a
 * policy may base its ordering or gating on. Built by
 * Context::policyState() at the start of each consulting pipeline
 * stage (issue, dispatch, fetch), so within one stage every policy
 * call sees the same values; a later stage of the same cycle sees the
 * effects of the earlier stages. Each field below names the machine
 * state it mirrors and the pipeline point that updates that state.
 */
struct ThreadState
{
    /** Hardware context id; stable for the simulation's lifetime. */
    ThreadId tid = 0;

    /**
     * Fetched instructions pending dispatch (the ICOUNT fetch key):
     * Context::fetchBuf.size(). Grows at fetch, shrinks at dispatch,
     * and drops to zero when a flush-gating policy squashes the buffer.
     */
    std::uint32_t fetchBufOccupancy = 0;
    /** AP pending-issue queue occupancy (Context::apQ.size()): grows
     *  at dispatch, shrinks as the AP issues. */
    std::uint32_t apQueueOccupancy = 0;
    /** EP Instruction Queue occupancy (Context::iq.size()) — the
     *  decoupling queue: grows at dispatch, shrinks as the EP issues. */
    std::uint32_t iqOccupancy = 0;
    /** Reorder-buffer occupancy (Context::rob.size()): grows at
     *  dispatch, shrinks at graduation. */
    std::uint32_t robOccupancy = 0;
    /** Unresolved conditional branches (the BrCount key):
     *  incremented at fetch, decremented at branch resolution
     *  (writeback) and when a fetch-buffer flush squashes a
     *  not-yet-dispatched branch. */
    std::uint32_t unresolvedBranches = 0;
    /**
     * Outstanding L1 load misses (the MissCount key and the
     * stall/flush gating trigger): PerceivedTracker::outstanding(),
     * incremented when a load misses the L1 at issue
     * (PerceivedTracker::open()), decremented when the fill lands and
     * the load completes (close() at writeback). Unaffected by
     * statistics resets.
     */
    std::uint32_t outstandingMisses = 0;
    /**
     * Sum of the per-cycle EP Instruction Queue occupancy samples over
     * the trailing Context::kIqWindow (64) cycles — the `split`
     * policy's EP drain-rate key. Sampled once per cycle at the end of
     * Simulator::step(), so it is constant across all of a cycle's
     * consulting stages and excludes the current cycle.
     */
    std::uint32_t iqOccupancyWindow = 0;
    /**
     * Sum of the per-cycle outstanding-L1-load-miss samples over the
     * trailing kPolicyWindowCycles (64) cycles — the adaptive policy's
     * phase-detection key. Sampled at the same point as
     * iqOccupancyWindow (end of Simulator::step()), so the two windows
     * always cover the same cycles.
     */
    std::uint32_t missWindow = 0;
    /**
     * True when every sample in the trailing miss window equals the
     * current outstandingMisses — i.e. the window has genuinely
     * saturated and cannot move while outstandingMisses stays frozen.
     * The sum alone cannot establish this (a mixed ring can
     * coincidentally sum to outstandingMisses * kPolicyWindowCycles
     * and still decay as it slides), so policies whose vetoStable()
     * reasons about window freezing must consult this flag, never the
     * sum.
     */
    bool missWindowUniform = false;
    /**
     * The thread's QoS priority weight (SimConfig::threadWeight(tid)):
     * constant for the simulation's lifetime, >= 1, consumed by the
     * Weighted policies and the fairness metrics. 1 on uniform
     * machines.
     */
    std::uint32_t weight = 1;

    /**
     * True when the thread may fetch this cycle: not gated on a
     * mispredicted branch or redirect, instructions remain (trace not
     * exhausted, or flushed instructions awaiting replay), fetch
     * buffer not full. Computed by the Simulator; fetch policies
     * may use it but the Simulator re-checks it regardless.
     */
    bool fetchEligible = false;

    /** Occupancy of everything fetched but not yet issued. */
    std::uint32_t
    frontEndOccupancy() const
    {
        return fetchBufOccupancy + apQueueOccupancy + iqOccupancy;
    }

    /** Field-wise equality (the snapshot-cache coherence check). */
    bool operator==(const ThreadState &) const = default;
};

/**
 * Decides which threads fetch this cycle. fetchOrder() is called once
 * per cycle; the Simulator walks the returned priority order, skips
 * ineligible threads, and fetches the first fetchThreadsPerCycle
 * eligible ones.
 */
class FetchPolicy
{
  public:
    virtual ~FetchPolicy() = default;

    /** Registry name ("icount", ...), for labels and error messages. */
    virtual std::string_view name() const = 0;

    /**
     * Emit every thread id, highest fetch priority first, into @p out
     * (cleared first). @p threads is indexed by tid.
     */
    virtual void fetchOrder(const std::vector<ThreadState> &threads,
                            std::vector<ThreadId> &out) = 0;

    /**
     * Gating veto: may thread @p t fetch at all this cycle? Consulted
     * by the Simulator for every thread before the ranked walk hands
     * out I-cache ports; a vetoed thread neither fetches nor consumes
     * a port (ordering policies rank it, but the walk skips it — with
     * a stable-sorted order that is equivalent to excluding it before
     * ranking). Must be a pure function of @p t. Default: never veto.
     */
    virtual bool
    mayFetch(const ThreadState &t) const
    {
        (void)t;
        return true;
    }

    /**
     * Squash request: should the Simulator flush thread @p t's
     * not-yet-dispatched fetch buffer this cycle? Consulted at the
     * start of the fetch stage, before ordering; on true the Simulator
     * returns the buffered instructions to the front of the thread's
     * stream for later re-fetch (Simulator::flushFetchBuffer) so their
     * dispatch slots go to other threads. Must be a pure function of
     * @p t. Default: never flush.
     */
    virtual bool
    shouldFlush(const ThreadState &t) const
    {
        (void)t;
        return false;
    }

    /**
     * Is the mayFetch() verdict for @p t guaranteed to hold for as
     * long as the thread's *non-window* observable state (occupancies,
     * outstandingMisses) stays frozen? The idle fast-forward engine
     * (Simulator::trySkipIdle) may only treat a vetoed thread as
     * dormant when its veto is stable: trailing windows keep evolving
     * through an idle span, so a verdict that reads them can flip
     * mid-span even though the machine does nothing. A policy whose
     * mayFetch() ignores the window fields returns true
     * unconditionally (the default); the adaptive policy returns true
     * only once the miss window is uniformly frozen
     * (ThreadState::missWindowUniform — the sum test is insufficient).
     * Must be a pure function of @p t.
     */
    virtual bool
    vetoStable(const ThreadState &t) const
    {
        (void)t;
        return true;
    }

    /** Advance per-cycle state (rotations); called once per cycle. */
    virtual void endCycle() {}

    /**
     * Advance per-cycle state by @p n cycles at once; must leave the
     * policy in exactly the state n endCycle() calls would (the idle
     * fast-forward engine's byte-identity contract). The default
     * matches the default endCycle(): no per-cycle state, no-op.
     */
    virtual void skipCycles(std::uint64_t n) { (void)n; }

    /** Serialize private per-cycle state (rotations). Policies are
     *  otherwise stateless, so the default writes nothing. */
    virtual void save(ByteWriter &w) const { (void)w; }

    /** Restore state saved by save(). */
    virtual void restore(ByteReader &r) { (void)r; }
};

/**
 * Decides the thread visit order of the shared back-end stages:
 * dispatch, and issue per unit. Both orders are computed once per
 * cycle from the same pre-stage snapshot.
 */
class ArbitrationPolicy
{
  public:
    virtual ~ArbitrationPolicy() = default;

    /** Registry name ("round-robin", ...). */
    virtual std::string_view name() const = 0;

    /** Visit order for this cycle's dispatch stage (into @p out). */
    virtual void dispatchOrder(const std::vector<ThreadState> &threads,
                               std::vector<ThreadId> &out) = 0;

    /**
     * Visit order for @p unit's issue this cycle (into @p out). The
     * Simulator reuses this exact order for the unused-slot
     * classification of the same cycle.
     */
    virtual void issueOrder(Unit unit,
                            const std::vector<ThreadState> &threads,
                            std::vector<ThreadId> &out) = 0;

    /** Advance per-cycle state (rotations); called once per cycle. */
    virtual void endCycle() {}

    /** Advance per-cycle state by @p n cycles at once; must equal n
     *  endCycle() calls byte for byte (see FetchPolicy::skipCycles). */
    virtual void skipCycles(std::uint64_t n) { (void)n; }

    /** Serialize private per-cycle state (rotations). */
    virtual void save(ByteWriter &w) const { (void)w; }

    /** Restore state saved by save(). */
    virtual void restore(ByteReader &r) { (void)r; }
};

/** Build the fetch policy selected by @p cfg.fetchPolicy. */
std::unique_ptr<FetchPolicy> makeFetchPolicy(const SimConfig &cfg);

/** Build the arbitration policy selected by @p cfg.issuePolicy. */
std::unique_ptr<ArbitrationPolicy> makeArbitrationPolicy(const SimConfig &cfg);

} // namespace mtdae

#endif // MTDAE_POLICY_POLICY_HH
