/**
 * @file
 * Pluggable thread-arbitration policies: the scheduler of the shared
 * pipeline stages as an explicit, swappable layer instead of loops
 * hardwired into the Simulator.
 *
 * Two seams, consulted once per cycle each:
 *
 *  - FetchPolicy       — which threads get the I-cache ports this cycle,
 *                        and in what priority order.
 *  - ArbitrationPolicy — the thread visit order for the shared dispatch
 *                        stage and for each issue unit (the slot
 *                        accounting consumes the *same* order the issue
 *                        stage used, so the Figure 3 attribution can
 *                        never drift from the arbitration).
 *
 * Determinism contract: a policy may keep private per-cycle state (the
 * round-robin rotation), but its output must be a pure function of that
 * state and of the ThreadState snapshots it is handed — never of wall
 * clock, allocation addresses or scheduling. This is what keeps every
 * sweep byte-identical at any --jobs count.
 *
 * Policies see the machine only through ThreadState: a per-context
 * occupancy/blocked snapshot taken at the start of the consulting
 * stage. They never touch Context or Simulator internals.
 */

#ifndef MTDAE_POLICY_POLICY_HH
#define MTDAE_POLICY_POLICY_HH

#include <memory>
#include <string_view>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "isa/opcode.hh"

namespace mtdae {

/**
 * Read-only per-context snapshot handed to policies — the only state a
 * policy may base its ordering on.
 */
struct ThreadState
{
    ThreadId tid = 0;

    /** Fetched instructions pending dispatch (the ICOUNT key). */
    std::uint32_t fetchBufOccupancy = 0;
    /** AP pending-issue queue occupancy. */
    std::uint32_t apQueueOccupancy = 0;
    /** EP Instruction Queue occupancy. */
    std::uint32_t iqOccupancy = 0;
    /** Reorder-buffer occupancy. */
    std::uint32_t robOccupancy = 0;
    /** Unresolved conditional branches (the BrCount key). */
    std::uint32_t unresolvedBranches = 0;
    /** Outstanding L1 load misses (the MissCount key), from the
     *  per-thread PerceivedTracker the memory system feeds. */
    std::uint32_t outstandingMisses = 0;

    /**
     * True when the thread may fetch this cycle: not gated on a
     * mispredicted branch or redirect, trace not exhausted, fetch
     * buffer not full. Computed by the Simulator; fetch policies
     * may use it but the Simulator re-checks it regardless.
     */
    bool fetchEligible = false;

    /** Occupancy of everything fetched but not yet issued. */
    std::uint32_t
    frontEndOccupancy() const
    {
        return fetchBufOccupancy + apQueueOccupancy + iqOccupancy;
    }
};

/**
 * Decides which threads fetch this cycle. fetchOrder() is called once
 * per cycle; the Simulator walks the returned priority order, skips
 * ineligible threads, and fetches the first fetchThreadsPerCycle
 * eligible ones.
 */
class FetchPolicy
{
  public:
    virtual ~FetchPolicy() = default;

    /** Registry name ("icount", ...), for labels and error messages. */
    virtual std::string_view name() const = 0;

    /**
     * Emit every thread id, highest fetch priority first, into @p out
     * (cleared first). @p threads is indexed by tid.
     */
    virtual void fetchOrder(const std::vector<ThreadState> &threads,
                            std::vector<ThreadId> &out) = 0;

    /** Advance per-cycle state (rotations); called once per cycle. */
    virtual void endCycle() {}
};

/**
 * Decides the thread visit order of the shared back-end stages:
 * dispatch, and issue per unit. Both orders are computed once per
 * cycle from the same pre-stage snapshot.
 */
class ArbitrationPolicy
{
  public:
    virtual ~ArbitrationPolicy() = default;

    /** Registry name ("round-robin", ...). */
    virtual std::string_view name() const = 0;

    /** Visit order for this cycle's dispatch stage (into @p out). */
    virtual void dispatchOrder(const std::vector<ThreadState> &threads,
                               std::vector<ThreadId> &out) = 0;

    /**
     * Visit order for @p unit's issue this cycle (into @p out). The
     * Simulator reuses this exact order for the unused-slot
     * classification of the same cycle.
     */
    virtual void issueOrder(Unit unit,
                            const std::vector<ThreadState> &threads,
                            std::vector<ThreadId> &out) = 0;

    /** Advance per-cycle state (rotations); called once per cycle. */
    virtual void endCycle() {}
};

/** Build the fetch policy selected by @p cfg.fetchPolicy. */
std::unique_ptr<FetchPolicy> makeFetchPolicy(const SimConfig &cfg);

/** Build the arbitration policy selected by @p cfg.issuePolicy. */
std::unique_ptr<ArbitrationPolicy> makeArbitrationPolicy(const SimConfig &cfg);

} // namespace mtdae

#endif // MTDAE_POLICY_POLICY_HH
