/**
 * @file
 * Ablation (ours, enabled by the pluggable arbitration layer in
 * src/policy/policy.hh): what is the thread scheduler worth? Crosses
 * every fetch policy with every dispatch/issue policy on the L2 = 64
 * suite-mix machine and reports IPC and perceived latency at 1 and 4
 * contexts. The icount/round-robin cell is the paper's machine; a
 * single-threaded machine should be nearly policy-invariant (one
 * thread always wins arbitration), while the 4-thread spread shows
 * how much the SMT literature's fetch-policy results carry over to a
 * decoupled machine.
 */

#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(120000);

    TextTable t;
    t.addRow({"fetch", "issue", "1T IPC", "1T perceived", "4T IPC",
              "4T perceived"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"fetch_policy", "issue_policy", "threads", "ipc",
                   "perceived"});

    SweepSpec spec;
    for (const PolicyKind fp : allPolicies()) {
        for (const PolicyKind ip : allPolicies()) {
            for (const std::uint32_t n : {1u, 4u}) {
                SimConfig cfg = paperConfigSeeded(n, true, 64);
                cfg.fetchPolicy = fp;
                cfg.issuePolicy = ip;
                spec.addSuiteMix(cfg, insts * n,
                                 std::string(policyName(fp)) + "/" +
                                     policyName(ip) + " " +
                                     std::to_string(n) + "T");
            }
        }
    }
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::size_t k = 0;
    for (const PolicyKind fp : allPolicies()) {
        for (const PolicyKind ip : allPolicies()) {
            std::vector<std::string> row = {policyName(fp),
                                            policyName(ip)};
            for (const std::uint32_t n : {1u, 4u}) {
                const RunResult &r = runs.at(k++);
                row.push_back(TextTable::fmt(r.ipc));
                row.push_back(TextTable::fmt(r.perceivedAll, 1));
                csv.push_back({policyName(fp), policyName(ip),
                               std::to_string(n),
                               TextTable::fmt(r.ipc, 4),
                               TextTable::fmt(r.perceivedAll, 4)});
            }
            t.addRow(row);
        }
    }

    emitTable("Ablation: thread-arbitration policies at L2 = 64 "
              "(fetch x issue grid)", t, csv, "ablation_policy.csv");
    return 0;
}
