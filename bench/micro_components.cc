/**
 * @file
 * google-benchmark microbenchmarks of the simulator components: raw
 * throughput of the RNG, the BHT, the cache model, trace expansion and
 * whole-machine simulation (cycles/second and instructions/second).
 */

#include <benchmark/benchmark.h>

#include "branch/bht.hh"
#include "common/rng.hh"
#include "core/context.hh"
#include "core/simulator.hh"
#include "harness/experiment.hh"
#include "memory/memory_system.hh"
#include "workload/spec_fp95.hh"
#include "workload/trace_source.hh"

using namespace mtdae;

static void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

static void
BM_BhtPredictUpdate(benchmark::State &state)
{
    Bht bht(2048);
    Addr pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bht.predict(pc));
        bht.update(pc, (pc & 4) != 0);
        pc += 4;
    }
}
BENCHMARK(BM_BhtPredictUpdate);

static void
BM_CacheHit(benchmark::State &state)
{
    SimConfig cfg;
    MemorySystem mem(cfg);
    mem.beginCycle(0);
    (void)mem.load(0x1000, 0);
    Cycle now = 0;
    for (auto _ : state) {
        mem.beginCycle(++now);
        benchmark::DoNotOptimize(mem.load(0x1000, now));
    }
}
BENCHMARK(BM_CacheHit);

static void
BM_CacheStreamingMiss(benchmark::State &state)
{
    SimConfig cfg;
    MemorySystem mem(cfg);
    Addr a = 0;
    Cycle now = 0;
    for (auto _ : state) {
        mem.beginCycle(++now);
        benchmark::DoNotOptimize(mem.load(a, now));
        a += 32;
    }
}
BENCHMARK(BM_CacheStreamingMiss);

static void
BM_TraceExpansion(benchmark::State &state)
{
    const std::string bench =
        specFp95Names()[std::size_t(state.range(0))];
    auto src = makeSpecFp95Source(bench, 0, 1);
    TraceInst ti;
    for (auto _ : state) {
        if (!src->next(ti))
            state.SkipWithError("trace ended");
        benchmark::DoNotOptimize(ti);
    }
    state.SetLabel(bench);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceExpansion)->DenseRange(0, 9);

static void
BM_SimulatorCycles(benchmark::State &state)
{
    const std::uint32_t threads = std::uint32_t(state.range(0));
    SimConfig cfg = paperConfig(threads, true, 16);
    cfg.warmupInsts = 0;
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (ThreadId t = 0; t < threads; ++t)
        sources.push_back(makeSuiteMixSource(t, 1));
    Simulator sim(cfg, std::move(sources));
    std::uint64_t insts_before = 0;
    for (auto _ : state) {
        sim.step();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["insts_per_cycle"] = benchmark::Counter(
        double(sim.totalGraduated() - insts_before) /
        double(state.iterations()));
}
BENCHMARK(BM_SimulatorCycles)->Arg(1)->Arg(4)->Arg(8);

// --- Hot-loop micros (docs/PERFORMANCE.md) ----------------------------

/** Cost of one from-scratch ThreadState rebuild — the unit of work the
 *  incremental snapshot cache avoids on clean cycles. */
static void
BM_PolicyStateRebuild(benchmark::State &state)
{
    SimConfig cfg;
    Context ctx(0, cfg, makeSuiteMixSource(0, 1));
    Cycle now = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(ctx.policyState(cfg, ++now));
}
BENCHMARK(BM_PolicyStateRebuild);

/** Store-forwarding lookup against a full-size SAQ: Arg(0) = the
 *  reference linear walk, Arg(1) = the word-count index the issue
 *  stage uses (Context::saqForwardsFast). */
static void
BM_SaqForwardLookup(benchmark::State &state)
{
    const bool fast = state.range(1) != 0;
    const std::size_t entries = std::size_t(state.range(0));
    SimConfig cfg;
    Context ctx(0, cfg, makeSuiteMixSource(0, 1));
    for (std::size_t i = 0; i < entries; ++i) {
        SaqEntry e;
        e.seq = InstSeq(i);
        e.addrValid = (i % 2) == 0;
        e.addr = Addr(i) << 3;
        ctx.saq.push_back(e);
        if (e.addrValid)
            ctx.saqDeposit(e.addr);
    }
    Addr probe = 0;
    for (auto _ : state) {
        probe = (probe + 8) & 0x1fff;
        if (fast)
            benchmark::DoNotOptimize(ctx.saqForwardsFast(probe));
        else
            benchmark::DoNotOptimize(
                ctx.saqForwards(InstSeq(1) << 30, probe));
    }
}
BENCHMARK(BM_SaqForwardLookup)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

/** step() with the profiling instrumentation off (Arg 0) vs. on
 *  (Arg 1): the gap is the cost of --profile itself. */
static void
BM_SimulatorStepProfiled(benchmark::State &state)
{
    SimConfig cfg = paperConfig(4, true, 64);
    cfg.warmupInsts = 0;
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (ThreadId t = 0; t < 4; ++t)
        sources.push_back(makeSuiteMixSource(t, 1));
    Simulator sim(cfg, std::move(sources));
    sim.setProfiling(state.range(0) != 0);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorStepProfiled)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
