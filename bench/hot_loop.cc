/**
 * @file
 * Hot-loop benchmark: wall-time and simulated instructions/second of a
 * fig4-shaped measure-phase grid (threads x decoupled x L2 latency on
 * the paper machine, suite-mix workload), run cold (every job simulates
 * its own warmup) and warm (shared warmup checkpoints). This is the
 * binary scripts/bench_hotloop.sh times: BENCH_hotloop.json compares
 * its insts/sec against the committed per-runner-class baseline, so
 * hot-loop regressions fail CI instead of hiding behind byte-identity.
 *
 * When the tree is built with MTDAE_PROFILE (the default), the binary
 * also runs one representative point with per-stage profiling enabled
 * and prints the breakdown as machine-readable `PROFILE` lines.
 *
 * Output contract (consumed by scripts/bench_hotloop.sh):
 *   HOTLOOP insts=<n> cold_ms=<ms> warm_ms=<ms> cold_ips=<n> warm_ips=<n>
 *   PROFILE stage=<name> ns=<n> pct=<p>       (one per pipeline stage)
 *   PROFILE total_ns=<n> cycles=<n> insts_per_sec=<n>
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;

namespace {

/**
 * The fig4-shaped grid: per (threads, decoupled, latency) machine, two
 * points differing only in measure budget on one explicit seed stream,
 * so each machine's pair shares a warmup prefix (the warm mode's
 * checkpoint fan-out; the default index-derived seeds would make every
 * prefixKey() unique).
 */
SweepSpec
makeSpec(std::uint64_t insts)
{
    const std::vector<std::uint32_t> threads = {1, 2, 4};
    const std::vector<std::uint32_t> lats = {1, 64, 256};
    const std::vector<std::uint64_t> mults = {1, 2};

    SweepSpec spec;
    std::uint64_t stream = 0;
    for (const std::uint32_t n : threads) {
        for (const bool dec : {true, false}) {
            for (const std::uint32_t lat : lats) {
                SimConfig cfg = paperConfigSeeded(n, dec, lat);
                cfg.warmupInsts = 4000 * n;
                for (const std::uint64_t m : mults)
                    spec.addSuiteMix(cfg, insts * n * m,
                                     std::to_string(n) + "T " +
                                         (dec ? "dec" : "non-dec") +
                                         " L2=" + std::to_string(lat) +
                                         " x" + std::to_string(m),
                                     stream);
                ++stream;
            }
        }
    }
    return spec;
}

double
millis(std::chrono::steady_clock::time_point a,
       std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

bool
sameResult(const RunResult &a, const RunResult &b)
{
    // Wall-clock profile fields are deliberately excluded: only the
    // simulated results are part of the byte-identity contract.
    return a.cycles == b.cycles && a.insts == b.insts && a.ipc == b.ipc &&
           a.perceivedFp == b.perceivedFp &&
           a.perceivedInt == b.perceivedInt &&
           a.perceivedAll == b.perceivedAll && a.fpMisses == b.fpMisses &&
           a.intMisses == b.intMisses &&
           a.loadMissRatio == b.loadMissRatio &&
           a.storeMissRatio == b.storeMissRatio &&
           a.missRatio == b.missRatio && a.mergedRatio == b.mergedRatio &&
           a.busUtilization == b.busUtilization &&
           a.avgFillLatency == b.avgFillLatency &&
           a.ap.counts == b.ap.counts && a.ep.counts == b.ep.counts &&
           a.mispredictRate == b.mispredictRate;
}

#if defined(MTDAE_PROFILE) && MTDAE_PROFILE
/**
 * Run one representative point (the 4T decoupled L2=64 machine) with
 * per-stage profiling and print the breakdown: where a measure-phase
 * cycle's wall time actually goes.
 */
void
profiledBreakdown(std::uint64_t insts)
{
    SimConfig cfg = paperConfigSeeded(4, true, 64);
    cfg.warmupInsts = 4000 * 4;
    Simulator sim(cfg, makeSuiteMixFactory()->make(cfg.numThreads,
                                                   cfg.seed));
    sim.setProfiling(true);
    const RunResult r = sim.run(insts * 4);
    const StageProfile &p = r.profile;

    TextTable t;
    t.addRow({"stage", "ns/cycle", "pct"});
    for (std::size_t s = 0; s < kNumStages; ++s) {
        const double pct =
            p.totalNs ? 100.0 * double(p.ns[s]) / double(p.totalNs) : 0.0;
        const double per_cycle =
            p.cycles ? double(p.ns[s]) / double(p.cycles) : 0.0;
        t.addRow({stageName(Stage(s)), TextTable::fmt(per_cycle, 1),
                  TextTable::fmt(pct, 1)});
        std::printf("PROFILE stage=%s ns=%llu pct=%.1f\n",
                    stageName(Stage(s)),
                    static_cast<unsigned long long>(p.ns[s]), pct);
    }
    const double secs = double(p.totalNs) / 1e9;
    const double ips = secs > 0.0 ? double(r.insts) / secs : 0.0;
    std::printf("PROFILE total_ns=%llu cycles=%llu insts_per_sec=%.0f\n",
                static_cast<unsigned long long>(p.totalNs),
                static_cast<unsigned long long>(p.cycles), ips);
    std::cout << "\n== Profiled measure phase (4T decoupled L2=64) ==\n";
    t.print(std::cout);
}
#endif

} // namespace

int
main()
{
    const std::uint64_t insts = instsBudget(20000);
    const SweepSpec spec = makeSpec(insts);

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<RunResult> cold =
        JobRunner(envJobs(), false).run(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const std::vector<RunResult> warm =
        JobRunner(envJobs(), true).run(spec);
    const auto t2 = std::chrono::steady_clock::now();

    std::uint64_t total_insts = 0;
    for (std::size_t i = 0; i < cold.size(); ++i) {
        if (!sameResult(cold[i], warm[i])) {
            std::cerr << "FAIL: warm-started job '"
                      << spec.jobs()[i].label
                      << "' diverged from the cold run\n";
            return 1;
        }
        total_insts += cold[i].insts;
    }

    const double cold_ms = millis(t0, t1);
    const double warm_ms = millis(t1, t2);
    const double cold_ips =
        cold_ms > 0.0 ? double(total_insts) / (cold_ms / 1e3) : 0.0;
    const double warm_ips =
        warm_ms > 0.0 ? double(total_insts) / (warm_ms / 1e3) : 0.0;

    TextTable t;
    t.addRow({"mode", "wall ms", "Minsts/s"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"mode", "wall_ms", "insts", "insts_per_sec"});
    const auto emit = [&](const char *mode, double ms, double ips) {
        t.addRow({mode, TextTable::fmt(ms, 1),
                  TextTable::fmt(ips / 1e6, 2)});
        csv.push_back({mode, TextTable::fmt(ms, 1),
                       std::to_string(total_insts),
                       TextTable::fmt(ips, 0)});
    };
    emit("cold", cold_ms, cold_ips);
    emit("warm", warm_ms, warm_ips);

    std::printf("HOTLOOP insts=%llu cold_ms=%.1f warm_ms=%.1f "
                "cold_ips=%.0f warm_ips=%.0f\n",
                static_cast<unsigned long long>(total_insts), cold_ms,
                warm_ms, cold_ips, warm_ips);

    emitTable("Hot loop: fig4-shaped measure-phase grid, cold vs "
              "warm-started (results byte-identical)",
              t, csv, "hot_loop.csv");

#if defined(MTDAE_PROFILE) && MTDAE_PROFILE
    profiledBreakdown(insts);
#endif
    return 0;
}
