/**
 * @file
 * Reproduces paper Figure 3: the issue-slot breakdown of the AP and the
 * EP as hardware contexts are added (L2 latency 16, decoupled, suite-mix
 * workload), plus the quoted IPC trajectory (2.68 @1T -> 6.19 @3T ->
 * 6.65 @4T, AP ~90% busy at 3T).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/slot_stats.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(300000);
    const std::vector<std::uint32_t> threads = {1, 2, 3, 4, 5, 6};

    TextTable t;
    t.addRow({"threads", "IPC", "unit", "useful%", "wait-mem%",
              "wait-fu%", "idle/wrong-path%", "other%"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"threads", "ipc", "unit", "useful", "wait_mem",
                   "wait_fu", "idle", "other"});

    SweepSpec spec;
    for (const std::uint32_t n : threads)
        spec.addSuiteMix(paperConfigSeeded(n, true, 16), insts * n,
                         std::to_string(n) + "T suite mix");
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::size_t k = 0;
    for (const std::uint32_t n : threads) {
        const RunResult &r = runs.at(k++);
        for (const bool is_ap : {true, false}) {
            const SlotBreakdown &bd = is_ap ? r.ap : r.ep;
            auto pct = [&](SlotUse u) {
                return TextTable::fmt(100.0 * bd.fraction(u), 1);
            };
            t.addRow({std::to_string(n), TextTable::fmt(r.ipc),
                      is_ap ? "AP" : "EP", pct(SlotUse::Useful),
                      pct(SlotUse::WaitMem), pct(SlotUse::WaitFu),
                      pct(SlotUse::Idle), pct(SlotUse::Other)});
            csv.push_back({std::to_string(n), TextTable::fmt(r.ipc, 4),
                           is_ap ? "AP" : "EP",
                           TextTable::fmt(bd.fraction(SlotUse::Useful), 4),
                           TextTable::fmt(bd.fraction(SlotUse::WaitMem), 4),
                           TextTable::fmt(bd.fraction(SlotUse::WaitFu), 4),
                           TextTable::fmt(bd.fraction(SlotUse::Idle), 4),
                           TextTable::fmt(bd.fraction(SlotUse::Other), 4)});
        }
    }

    emitTable("Figure 3: issue-slot breakdown vs. hardware contexts "
              "(L2=16, decoupled)", t, csv, "fig3_issue_breakdown.csv");
    return 0;
}
