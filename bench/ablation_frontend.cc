/**
 * @file
 * Front-end ablations (ours):
 *
 * 1. Unit-width asymmetry. The paper notes a 15% effective-peak loss
 *    from AP/EP load imbalance and leaves "a different issue width in
 *    each processor unit" as future work — this sweep quantifies it on
 *    the suite mix, holding the total width at 8.
 * 2. Direction predictor: the paper's bimodal BHT vs. gshare, and the
 *    speculation-depth limit (unresolved branches per thread).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/slot_stats.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(200000);

    {
        TextTable t;
        t.addRow({"AP+EP units", "4T IPC", "AP useful%", "EP useful%"});
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"ap_units", "ep_units", "ipc", "ap_useful",
                       "ep_useful"});
        const std::vector<std::pair<std::uint32_t, std::uint32_t>>
            splits = {{2, 6}, {3, 5}, {4, 4}, {5, 3}, {6, 2}};
        SweepSpec spec;
        for (const auto &[ap, ep] : splits) {
            SimConfig cfg = paperConfigSeeded(4, true, 16);
            cfg.apUnits = ap;
            cfg.epUnits = ep;
            spec.addSuiteMix(cfg, insts * 4,
                             std::to_string(ap) + "+" +
                                 std::to_string(ep) + " units");
        }
        const std::vector<RunResult> runs = runSweepJobs(spec);
        std::size_t k = 0;
        for (const auto &[ap, ep] : splits) {
            const RunResult &r = runs.at(k++);
            t.addRow({std::to_string(ap) + "+" + std::to_string(ep),
                      TextTable::fmt(r.ipc),
                      TextTable::fmt(100 * r.ap.fraction(SlotUse::Useful),
                                     1),
                      TextTable::fmt(100 * r.ep.fraction(SlotUse::Useful),
                                     1)});
            csv.push_back({std::to_string(ap), std::to_string(ep),
                           TextTable::fmt(r.ipc, 4),
                           TextTable::fmt(r.ap.fraction(SlotUse::Useful),
                                          4),
                           TextTable::fmt(r.ep.fraction(SlotUse::Useful),
                                          4)});
        }
        emitTable("Ablation: AP/EP issue-width split (total 8, 4T, "
                  "L2=16) — the paper's future-work knob", t, csv,
                  "ablation_unit_width.csv");
    }

    {
        TextTable t;
        t.addRow({"predictor", "max unresolved", "4T IPC", "mispredict%",
                  "AP idle%"});
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"predictor", "max_branches", "ipc", "mispredict",
                       "ap_idle"});
        SweepSpec spec;
        for (const auto kind : {SimConfig::PredictorKind::Bimodal,
                                SimConfig::PredictorKind::Gshare}) {
            for (const std::uint32_t depth : {1u, 4u, 16u}) {
                SimConfig cfg = paperConfigSeeded(4, true, 16);
                cfg.predictor = kind;
                cfg.maxUnresolvedBranches = depth;
                spec.addSuiteMix(
                    cfg, insts * 4,
                    std::string(kind == SimConfig::PredictorKind::Bimodal
                                    ? "bimodal"
                                    : "gshare") +
                        " depth " + std::to_string(depth));
            }
        }
        const std::vector<RunResult> runs = runSweepJobs(spec);
        std::size_t k = 0;
        for (const auto kind : {SimConfig::PredictorKind::Bimodal,
                                SimConfig::PredictorKind::Gshare}) {
            for (const std::uint32_t depth : {1u, 4u, 16u}) {
                const RunResult &r = runs.at(k++);
                const char *name =
                    kind == SimConfig::PredictorKind::Bimodal
                        ? "bimodal" : "gshare";
                t.addRow({name, std::to_string(depth),
                          TextTable::fmt(r.ipc),
                          TextTable::fmt(100 * r.mispredictRate, 1),
                          TextTable::fmt(
                              100 * r.ap.fraction(SlotUse::Idle), 1)});
                csv.push_back({name, std::to_string(depth),
                               TextTable::fmt(r.ipc, 4),
                               TextTable::fmt(r.mispredictRate, 4),
                               TextTable::fmt(
                                   r.ap.fraction(SlotUse::Idle), 4)});
            }
        }
        emitTable("Ablation: direction predictor and speculation depth "
                  "(4T, L2=16)", t, csv, "ablation_frontend.csv");
    }

    return 0;
}
