/**
 * @file
 * Reproduces paper Figure 4 (a-c): latency tolerance of the eight
 * configurations (1-4 threads, decoupled and non-decoupled) over the
 * L2 latency sweep, on the rotated suite-mix workload.
 *
 *  4-a: average perceived load-miss latency
 *  4-b: % IPC loss relative to the 1-cycle-latency machine
 *  4-c: absolute IPC
 */

#include <iostream>
#include <map>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(300000);
    const auto &lats = paperLatencies();
    const std::vector<std::uint32_t> threads = {1, 2, 3, 4};

    struct Key
    {
        std::uint32_t t;
        bool dec;
        bool operator<(const Key &o) const
        {
            return t != o.t ? t < o.t : dec < o.dec;
        }
    };
    SweepSpec spec;
    for (const std::uint32_t n : threads)
        for (const bool dec : {true, false})
            for (const std::uint32_t lat : lats)
                spec.addSuiteMix(paperConfigSeeded(n, dec, lat),
                                 insts * n,
                                 std::to_string(n) + "T " +
                                     (dec ? "dec" : "non-dec") +
                                     " L2=" + std::to_string(lat));
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::map<Key, std::map<std::uint32_t, RunResult>> results;
    std::size_t k = 0;
    for (const std::uint32_t n : threads)
        for (const bool dec : {true, false})
            for (const std::uint32_t lat : lats)
                results[{n, dec}][lat] = runs.at(k++);

    auto config_name = [](const Key &k) {
        return std::to_string(k.t) + "T " +
               (k.dec ? "decoupled" : "non-decoupled");
    };

    auto emit_series = [&](const std::string &title,
                           const std::string &csv_name, auto value_of) {
        TextTable t;
        std::vector<std::string> header = {"config"};
        for (const std::uint32_t lat : lats)
            header.push_back("L2=" + std::to_string(lat));
        t.addRow(header);
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"threads", "decoupled", "l2_latency", "value"});
        for (const auto &[key, series] : results) {
            std::vector<std::string> row = {config_name(key)};
            for (const std::uint32_t lat : lats) {
                const double v = value_of(key, series.at(lat));
                row.push_back(TextTable::fmt(v, 2));
                csv.push_back({std::to_string(key.t),
                               key.dec ? "1" : "0",
                               std::to_string(lat),
                               TextTable::fmt(v, 4)});
            }
            t.addRow(row);
        }
        emitTable(title, t, csv, csv_name);
    };

    emit_series("Figure 4-a: perceived load-miss latency (cycles)",
                "fig4a_perceived.csv",
                [](const Key &, const RunResult &r) {
                    return r.perceivedAll;
                });

    emit_series("Figure 4-b: % IPC loss relative to L2 = 1",
                "fig4b_ipc_loss.csv",
                [&](const Key &k, const RunResult &r) {
                    return -ipcLossPct(results[k][1].ipc, r.ipc);
                });

    emit_series("Figure 4-c: IPC", "fig4c_ipc.csv",
                [](const Key &, const RunResult &r) { return r.ipc; });

    // The paper's headline checks, printed for EXPERIMENTS.md.
    std::cout << "\nHeadline checks:\n";
    for (const std::uint32_t n : threads) {
        const double d32 =
            ipcLossPct(results[{n, true}][1].ipc,
                       results[{n, true}][32].ipc);
        const double n32 =
            ipcLossPct(results[{n, false}][1].ipc,
                       results[{n, false}][32].ipc);
        std::cout << "  " << n << "T @L2=32: decoupled loses "
                  << TextTable::fmt(d32, 1) << "% (paper: <4%), "
                  << "non-decoupled loses " << TextTable::fmt(n32, 1)
                  << "% (paper: >23%)\n";
    }
    std::cout << "  4T @L2=256 decoupled perceived latency: "
              << TextTable::fmt(results[{4, true}][256].perceivedAll, 1)
              << " cycles (paper: <5)\n";
    return 0;
}
