/**
 * @file
 * Reproduces paper Figure 1 (a-d): the latency-hiding effectiveness of
 * a single-threaded decoupled machine across the SPEC FP95 models and
 * L2 latencies 1..256, with queues scaled proportionally to the latency
 * (paper Section 2).
 *
 *  1-a: average perceived FP-load miss latency
 *  1-b: average perceived integer-load miss latency
 *  1-c: L1 miss ratios at L2 = 256 (loads/stores, plus delayed hits)
 *  1-d: % IPC loss relative to the 1-cycle-latency machine
 */

#include <iostream>
#include <map>

#include "bench_util.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(250000);
    const auto &lats = paperLatencies();
    const auto &names = specFp95Names();

    SweepSpec spec;
    for (const auto &bench : names)
        for (const std::uint32_t lat : lats)
            spec.addBenchmark(paperConfigSeeded(1, true, lat), bench,
                              insts,
                              bench + " L2=" + std::to_string(lat));
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::map<std::string, std::map<std::uint32_t, RunResult>> results;
    std::size_t k = 0;
    for (const auto &bench : names)
        for (const std::uint32_t lat : lats)
            results[bench][lat] = runs.at(k++);

    auto series_table = [&](auto value_of) {
        TextTable t;
        std::vector<std::string> header = {"benchmark"};
        for (const std::uint32_t lat : lats)
            header.push_back("L2=" + std::to_string(lat));
        t.addRow(header);
        for (const auto &bench : names) {
            std::vector<std::string> row = {bench};
            for (const std::uint32_t lat : lats)
                row.push_back(TextTable::fmt(
                    value_of(results[bench][lat], lat), 2));
            t.addRow(row);
        }
        return t;
    };
    auto series_csv = [&](auto value_of) {
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"benchmark", "l2_latency", "value"});
        for (const auto &bench : names)
            for (const std::uint32_t lat : lats)
                csv.push_back({bench, std::to_string(lat),
                               TextTable::fmt(
                                   value_of(results[bench][lat], lat),
                                   4)});
        return csv;
    };

    auto fp = [](const RunResult &r, std::uint32_t) {
        return r.perceivedFp;
    };
    emitTable("Figure 1-a: avg perceived FP-load miss latency (cycles), "
              "1 thread, decoupled", series_table(fp), series_csv(fp),
              "fig1a_perceived_fp.csv");

    auto ip = [](const RunResult &r, std::uint32_t) {
        return r.perceivedInt;
    };
    emitTable("Figure 1-b: avg perceived integer-load miss latency "
              "(cycles)", series_table(ip), series_csv(ip),
              "fig1b_perceived_int.csv");

    {
        TextTable t;
        t.addRow({"benchmark", "load-miss%", "store-miss%",
                  "delayed-hit%"});
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"benchmark", "load_miss", "store_miss",
                       "delayed_hits"});
        for (const auto &bench : names) {
            const RunResult &r = results[bench][256];
            t.addRow({bench, TextTable::fmt(100 * r.loadMissRatio, 1),
                      TextTable::fmt(100 * r.storeMissRatio, 1),
                      TextTable::fmt(100 * r.mergedRatio, 1)});
            csv.push_back({bench, TextTable::fmt(r.loadMissRatio, 4),
                           TextTable::fmt(r.storeMissRatio, 4),
                           TextTable::fmt(r.mergedRatio, 4)});
        }
        emitTable("Figure 1-c: L1 miss ratios at L2 = 256", t, csv,
                  "fig1c_miss_ratios.csv");
    }

    {
        TextTable t;
        std::vector<std::string> header = {"benchmark"};
        for (const std::uint32_t lat : lats)
            header.push_back("L2=" + std::to_string(lat));
        t.addRow(header);
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"benchmark", "l2_latency", "ipc", "ipc_loss_pct"});
        for (const auto &bench : names) {
            const double base = results[bench][1].ipc;
            std::vector<std::string> row = {bench};
            for (const std::uint32_t lat : lats) {
                const double pct =
                    ipcLossPct(base, results[bench][lat].ipc);
                row.push_back(TextTable::fmt(-pct, 1));
                csv.push_back({bench, std::to_string(lat),
                               TextTable::fmt(results[bench][lat].ipc, 4),
                               TextTable::fmt(pct, 2)});
            }
            t.addRow(row);
        }
        emitTable("Figure 1-d: % IPC change relative to L2 = 1", t, csv,
                  "fig1d_ipc_loss.csv");
    }

    return 0;
}
