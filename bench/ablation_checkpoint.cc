/**
 * @file
 * Ablation (ours, enabled by the checkpoint engine in
 * src/core/snapshot.hh): what is warm-start prefix sharing worth? A
 * sweep grid routinely varies only the *measure* budget or a
 * post-warmup knob across points that share (config, seed, workload) —
 * their warmup prefixes coincide, so the JobRunner can simulate the
 * prefix once per group and fan the checkpoint out. This binary runs
 * the same grid cold (every job re-simulates its own warmup) and warm
 * (shared checkpoints), asserts the results are *exactly* equal — the
 * restore-equivalence contract of tests/test_checkpoint.cc, exercised
 * here at bench scale — and reports the wall-time and simulated
 * instructions/second of both modes.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

namespace {

/**
 * The shared-prefix grid: per thread count, three points that differ
 * only in measure budget. Each thread-count group gets one explicit
 * seed stream so its members share a warmup prefix (the default
 * index-derived seeds would make every prefixKey() unique).
 */
SweepSpec
makeSpec(std::uint64_t insts)
{
    const std::vector<std::uint32_t> threads = {1, 2, 4};
    const std::vector<std::uint64_t> mults = {1, 2, 4};

    SweepSpec spec;
    std::uint64_t stream = 0;
    for (const std::uint32_t n : threads) {
        SimConfig cfg = paperConfigSeeded(n, true, 16);
        cfg.perfectL2 = false;
        cfg.warmupInsts = 4000 * n;
        for (const std::uint64_t m : mults)
            spec.addSuiteMix(cfg, insts * n * m,
                             std::to_string(n) + "T x" + std::to_string(m),
                             stream);
        ++stream;
    }
    return spec;
}

double
millis(std::chrono::steady_clock::time_point a,
       std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

bool
sameResult(const RunResult &a, const RunResult &b)
{
    return a.cycles == b.cycles && a.insts == b.insts && a.ipc == b.ipc &&
           a.perceivedFp == b.perceivedFp &&
           a.perceivedInt == b.perceivedInt &&
           a.perceivedAll == b.perceivedAll && a.fpMisses == b.fpMisses &&
           a.intMisses == b.intMisses &&
           a.loadMissRatio == b.loadMissRatio &&
           a.storeMissRatio == b.storeMissRatio &&
           a.missRatio == b.missRatio && a.mergedRatio == b.mergedRatio &&
           a.busUtilization == b.busUtilization &&
           a.avgFillLatency == b.avgFillLatency &&
           a.l2MissRatio == b.l2MissRatio &&
           a.dramRowHitRatio == b.dramRowHitRatio &&
           a.dramBusUtilization == b.dramBusUtilization &&
           a.ap.counts == b.ap.counts && a.ep.counts == b.ep.counts &&
           a.mispredictRate == b.mispredictRate;
}

} // namespace

int
main()
{
    const std::uint64_t insts = instsBudget(40000);
    const SweepSpec spec = makeSpec(insts);

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<RunResult> cold =
        JobRunner(envJobs(), false).run(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const std::vector<RunResult> warm =
        JobRunner(envJobs(), true).run(spec);
    const auto t2 = std::chrono::steady_clock::now();

    std::uint64_t total_insts = 0;
    for (std::size_t i = 0; i < cold.size(); ++i) {
        if (!sameResult(cold[i], warm[i])) {
            std::cerr << "FAIL: warm-started job '"
                      << spec.jobs()[i].label
                      << "' diverged from the cold run\n";
            return 1;
        }
        total_insts += cold[i].insts;
    }

    const double cold_ms = millis(t0, t1);
    const double warm_ms = millis(t1, t2);

    TextTable t;
    t.addRow({"mode", "wall ms", "Minsts/s", "speedup"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"mode", "wall_ms", "insts", "insts_per_sec", "speedup"});
    const auto emit = [&](const char *mode, double ms, double speedup) {
        const double ips = ms > 0.0 ? double(total_insts) / (ms / 1e3)
                                    : 0.0;
        t.addRow({mode, TextTable::fmt(ms, 1), TextTable::fmt(ips / 1e6, 2),
                  TextTable::fmt(speedup, 2)});
        csv.push_back({mode, TextTable::fmt(ms, 1),
                       std::to_string(total_insts), TextTable::fmt(ips, 0),
                       TextTable::fmt(speedup, 2)});
    };
    emit("cold", cold_ms, 1.0);
    emit("warm", warm_ms, warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);

    emitTable("Ablation: warm-start prefix sharing (shared-warmup grid, "
              "cold vs checkpointed; results byte-identical)",
              t, csv, "ablation_checkpoint.csv");
    return 0;
}
