/**
 * @file
 * Reproduces paper Figure 5: IPC versus hardware contexts for the
 * decoupled and non-decoupled machines at L2 = 16 (1-7 threads) and
 * L2 = 64 (1-16 threads), plus the external-bus utilisation that
 * explains why the non-decoupled machine stops scaling (89% at 12
 * threads and 98% at 16 in the paper).
 */

#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(200000);

    TextTable t;
    t.addRow({"L2", "threads", "decoupled-IPC", "non-dec-IPC",
              "dec-bus%", "non-dec-bus%"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"l2_latency", "threads", "decoupled", "ipc",
                   "bus_util"});

    auto sweep = [&](std::uint32_t lat, std::uint32_t max_threads) {
        for (std::uint32_t n = 1; n <= max_threads; ++n) {
            RunResult dec, nodec;
            for (const bool d : {true, false}) {
                const SimConfig cfg = paperConfig(n, d, lat);
                const RunResult r = runSuiteMix(cfg, insts * n);
                (d ? dec : nodec) = r;
                csv.push_back({std::to_string(lat), std::to_string(n),
                               d ? "1" : "0", TextTable::fmt(r.ipc, 4),
                               TextTable::fmt(r.busUtilization, 4)});
            }
            t.addRow({std::to_string(lat), std::to_string(n),
                      TextTable::fmt(dec.ipc), TextTable::fmt(nodec.ipc),
                      TextTable::fmt(100 * dec.busUtilization, 1),
                      TextTable::fmt(100 * nodec.busUtilization, 1)});
        }
    };

    sweep(16, 7);
    sweep(64, 16);

    emitTable("Figure 5: IPC vs. hardware contexts (decoupled vs. "
              "non-decoupled)", t, csv, "fig5_thread_scaling.csv");

    return 0;
}
