/**
 * @file
 * Reproduces paper Figure 5: IPC versus hardware contexts for the
 * decoupled and non-decoupled machines at L2 = 16 (1-7 threads) and
 * L2 = 64 (1-16 threads), plus the external-bus utilisation that
 * explains why the non-decoupled machine stops scaling (89% at 12
 * threads and 98% at 16 in the paper).
 */

#include <iostream>
#include <utility>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(200000);

    TextTable t;
    t.addRow({"L2", "threads", "decoupled-IPC", "non-dec-IPC",
              "dec-bus%", "non-dec-bus%"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"l2_latency", "threads", "decoupled", "ipc",
                   "bus_util"});

    // The paper's two sweeps: L2=16 to 7 threads, L2=64 to 16.
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> sweeps =
        {{16, 7}, {64, 16}};

    SweepSpec spec;
    for (const auto &[lat, max_threads] : sweeps)
        for (std::uint32_t n = 1; n <= max_threads; ++n)
            for (const bool d : {true, false})
                spec.addSuiteMix(paperConfigSeeded(n, d, lat),
                                 insts * n,
                                 std::to_string(n) + "T " +
                                     (d ? "dec" : "non-dec") + " L2=" +
                                     std::to_string(lat));
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::size_t k = 0;
    for (const auto &[lat, max_threads] : sweeps) {
        for (std::uint32_t n = 1; n <= max_threads; ++n) {
            RunResult dec, nodec;
            for (const bool d : {true, false}) {
                const RunResult &r = runs.at(k++);
                (d ? dec : nodec) = r;
                csv.push_back({std::to_string(lat), std::to_string(n),
                               d ? "1" : "0", TextTable::fmt(r.ipc, 4),
                               TextTable::fmt(r.busUtilization, 4)});
            }
            t.addRow({std::to_string(lat), std::to_string(n),
                      TextTable::fmt(dec.ipc), TextTable::fmt(nodec.ipc),
                      TextTable::fmt(100 * dec.busUtilization, 1),
                      TextTable::fmt(100 * nodec.busUtilization, 1)});
        }
    }

    emitTable("Figure 5: IPC vs. hardware contexts (decoupled vs. "
              "non-decoupled)", t, csv, "fig5_thread_scaling.csv");

    return 0;
}
