/**
 * @file
 * Ablation (ours): the lockup-free memory system as an enabler of
 * decoupling. Sweeps the MSHR count and the L1 port count at L2 = 64:
 * decoupling can only slip ahead as far as the cache accepts
 * outstanding misses, so a blocking-ish cache (1 MSHR) forfeits most of
 * the benefit regardless of queue sizes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(120000);

    {
        TextTable t;
        t.addRow({"MSHRs", "1T IPC", "4T IPC", "4T bus%"});
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"mshrs", "threads", "ipc", "bus_util"});
        SweepSpec spec;
        for (const std::uint32_t m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            for (const std::uint32_t n : {1u, 4u}) {
                SimConfig cfg = paperConfigSeeded(n, true, 64);
                cfg.mshrs = m;
                spec.addSuiteMix(cfg, insts * n,
                                 std::to_string(m) + " MSHRs " +
                                     std::to_string(n) + "T");
            }
        }
        const std::vector<RunResult> runs = runSweepJobs(spec);
        std::size_t k = 0;
        for (const std::uint32_t m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            std::vector<std::string> row = {std::to_string(m)};
            double bus4 = 0;
            for (const std::uint32_t n : {1u, 4u}) {
                const RunResult &r = runs.at(k++);
                row.push_back(TextTable::fmt(r.ipc));
                if (n == 4)
                    bus4 = r.busUtilization;
                csv.push_back({std::to_string(m), std::to_string(n),
                               TextTable::fmt(r.ipc, 4),
                               TextTable::fmt(r.busUtilization, 4)});
            }
            row.push_back(TextTable::fmt(100 * bus4, 1));
            t.addRow(row);
        }
        emitTable("Ablation: MSHR count at L2 = 64 (lockup-free-ness)",
                  t, csv, "ablation_mshrs.csv");
    }

    {
        TextTable t;
        t.addRow({"L1 ports", "1T IPC", "4T IPC"});
        std::vector<std::vector<std::string>> csv;
        csv.push_back({"ports", "threads", "ipc"});
        SweepSpec spec;
        for (const std::uint32_t p : {1u, 2u, 4u, 8u}) {
            for (const std::uint32_t n : {1u, 4u}) {
                SimConfig cfg = paperConfigSeeded(n, true, 64);
                cfg.l1Ports = p;
                spec.addSuiteMix(cfg, insts * n,
                                 std::to_string(p) + " ports " +
                                     std::to_string(n) + "T");
            }
        }
        const std::vector<RunResult> runs = runSweepJobs(spec);
        std::size_t k = 0;
        for (const std::uint32_t p : {1u, 2u, 4u, 8u}) {
            std::vector<std::string> row = {std::to_string(p)};
            for (const std::uint32_t n : {1u, 4u}) {
                const RunResult &r = runs.at(k++);
                row.push_back(TextTable::fmt(r.ipc));
                csv.push_back({std::to_string(p), std::to_string(n),
                               TextTable::fmt(r.ipc, 4)});
            }
            t.addRow(row);
        }
        emitTable("Ablation: L1 data-cache ports at L2 = 64", t, csv,
                  "ablation_ports.csv");
    }

    return 0;
}
