/**
 * @file
 * Ablation (ours, enabled by the fetch-gating hooks in
 * src/policy/policy.hh): what is gating the AP's runahead worth when
 * memory is real? Compares the plain ICOUNT fetch ordering against the
 * STALL (suspend fetch while a thread has an outstanding L1 load miss)
 * and FLUSH (additionally squash the gated thread's not-yet-dispatched
 * fetch buffer) gating policies on the finite L2 + DRAM backend, at
 * 2 and 4 contexts over a swept L2 size. On the perfect L2 the gate
 * barely engages; with a small finite L2 the decoupled AP's runahead
 * *is* the miss traffic, so gating it trades prefetch depth against
 * cache and bus pressure from the co-scheduled threads.
 */

#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(120000);
    const std::vector<PolicyKind> gating = {
        PolicyKind::Icount, PolicyKind::Stall, PolicyKind::Flush};
    const std::vector<std::uint32_t> sizes_kb = {64, 256, 1024};

    TextTable t;
    t.addRow({"fetch", "l2_kb", "2T IPC", "2T perceived", "4T IPC",
              "4T perceived"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"fetch_policy", "l2_kb", "threads", "ipc",
                   "perceived", "avg_fill"});

    SweepSpec spec;
    for (const PolicyKind fp : gating) {
        for (const std::uint32_t kb : sizes_kb) {
            for (const std::uint32_t n : {2u, 4u}) {
                SimConfig cfg = paperConfigSeeded(n, true, 16);
                cfg.perfectL2 = false;
                cfg.l2Bytes = kb * 1024;
                cfg.fetchPolicy = fp;
                spec.addSuiteMix(cfg, insts * n,
                                 std::string(policyName(fp)) + " L2 " +
                                     std::to_string(kb) + "KB " +
                                     std::to_string(n) + "T");
            }
        }
    }
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::size_t k = 0;
    for (const PolicyKind fp : gating) {
        for (const std::uint32_t kb : sizes_kb) {
            std::vector<std::string> row = {policyName(fp),
                                            std::to_string(kb)};
            for (const std::uint32_t n : {2u, 4u}) {
                const RunResult &r = runs.at(k++);
                row.push_back(TextTable::fmt(r.ipc));
                row.push_back(TextTable::fmt(r.perceivedAll, 1));
                csv.push_back({policyName(fp), std::to_string(kb),
                               std::to_string(n),
                               TextTable::fmt(r.ipc, 4),
                               TextTable::fmt(r.perceivedAll, 4),
                               TextTable::fmt(r.avgFillLatency, 1)});
            }
            t.addRow(row);
        }
    }

    emitTable("Ablation: fetch gating (stall/flush vs icount) on the "
              "finite L2 + DRAM backend", t, csv, "ablation_gating.csv");
    return 0;
}
