/**
 * @file
 * Idle fast-forward benchmark: wall-time and simulated
 * instructions/second of a fig4-shaped grid (threads x decoupled x L2
 * latency, suite-mix plus a pointer-chase DSL kernel) with the
 * cycle-skip engine off vs. on, each timed cold (every job simulates
 * its own warmup) and warm (shared warmup checkpoints). The binary
 * self-verifies that skip-on results are identical to skip-off results
 * point by point — the speedup is free or it does not count.
 *
 * The grid deliberately mixes both regimes: decoupled suite-mix
 * machines rarely go idle (the access processor keeps the memory
 * system busy — the paper's point), while the non-decoupled baselines
 * and the dependent-load pointer chase stall for whole latency spans
 * the skip engine can jump.
 *
 * Output contract (consumed by scripts/bench_skip.sh):
 *   SKIP lat=<n> off_cold_ips=<n> on_cold_ips=<n> off_warm_ips=<n>
 *        on_warm_ips=<n> speedup=<x> skip_rate=<r>
 *   SKIPTOTAL off_cold_ips=<n> on_cold_ips=<n> speedup=<x>
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

namespace {

/**
 * The dependent-load kernel, inlined so the binary stays flag-less and
 * runnable from any directory: every hop loads the next address, so
 * the whole perceived latency sits on the critical path and the
 * decoupled machine idles between fills (examples/kernels/
 * pointer_chase.mk is the documented original).
 */
const char *const kChaseKernel = R"(
kernel bench_chase

param footprint = 1M
param node = 16
param unroll = 4

stream nodes = chain(footprint, node)
reg sum : fp

loop unroll {
    let p = loadi(nodes)
    ilogic p = p
    let v = loadf(nodes)
    fadd sum = sum, v
    advance nodes
}
)";

/**
 * The fig4-shaped grid at one latency. Explicit seed streams keep the
 * skip-off and skip-on specs on identical per-job seeds, and the
 * {1,2}-multiplier pairs share a warmup prefix (the warm mode's
 * checkpoint fan-out), exactly as in bench/hot_loop.
 */
SweepSpec
makeSpec(std::uint32_t lat, std::uint64_t insts, bool skip)
{
    const std::vector<std::uint32_t> threads = {1, 2, 4};
    const std::vector<std::uint64_t> mults = {1, 2};

    SweepSpec spec;
    std::uint64_t stream = 0;
    for (const std::uint32_t n : threads) {
        for (const bool dec : {true, false}) {
            SimConfig cfg = paperConfigSeeded(n, dec, lat);
            cfg.warmupInsts = 4000 * n;
            cfg.cycleSkip = skip;
            for (const std::uint64_t m : mults)
                spec.addSuiteMix(cfg, insts * n * m,
                                 std::to_string(n) + "T " +
                                     (dec ? "dec" : "non-dec") + " L2=" +
                                     std::to_string(lat) + " x" +
                                     std::to_string(m),
                                 stream);
            ++stream;
        }
        SimConfig cfg = paperConfigSeeded(n, true, lat);
        cfg.warmupInsts = 4000 * n;
        cfg.cycleSkip = skip;
        for (const std::uint64_t m : mults)
            spec.addDsl(cfg, kChaseKernel, {}, insts * n * m,
                        std::to_string(n) + "T chase L2=" +
                            std::to_string(lat) + " x" +
                            std::to_string(m),
                        stream);
        ++stream;
    }
    return spec;
}

double
millis(std::chrono::steady_clock::time_point a,
       std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

bool
sameResult(const RunResult &a, const RunResult &b)
{
    // cyclesSkipped/skipEvents and the wall-clock profile fields are
    // deliberately excluded: only the simulated results are part of
    // the byte-identity contract.
    return a.cycles == b.cycles && a.insts == b.insts && a.ipc == b.ipc &&
           a.perceivedFp == b.perceivedFp &&
           a.perceivedInt == b.perceivedInt &&
           a.perceivedAll == b.perceivedAll && a.fpMisses == b.fpMisses &&
           a.intMisses == b.intMisses &&
           a.loadMissRatio == b.loadMissRatio &&
           a.storeMissRatio == b.storeMissRatio &&
           a.missRatio == b.missRatio && a.mergedRatio == b.mergedRatio &&
           a.busUtilization == b.busUtilization &&
           a.avgFillLatency == b.avgFillLatency &&
           a.ap.counts == b.ap.counts && a.ep.counts == b.ep.counts &&
           a.mispredictRate == b.mispredictRate;
}

struct LatPoint {
    std::uint32_t lat = 0;
    double off_cold_ips = 0, on_cold_ips = 0;
    double off_warm_ips = 0, on_warm_ips = 0;
    double skip_rate = 0;
};

} // namespace

int
main()
{
    const std::uint64_t insts = instsBudget(10000);
    const std::vector<std::uint32_t> lats = {10, 100, 500};

    TextTable t;
    t.addRow({"L2 lat", "off Minsts/s", "on Minsts/s", "speedup",
              "skip rate"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"l2_latency", "off_cold_ips", "on_cold_ips",
                   "off_warm_ips", "on_warm_ips", "speedup",
                   "skip_rate"});

    double total_off_ms = 0, total_on_ms = 0;
    std::uint64_t total_insts = 0;

    for (const std::uint32_t lat : lats) {
        const SweepSpec off_spec = makeSpec(lat, insts, false);
        const SweepSpec on_spec = makeSpec(lat, insts, true);

        const auto t0 = std::chrono::steady_clock::now();
        const auto off_cold = JobRunner(envJobs(), false).run(off_spec);
        const auto t1 = std::chrono::steady_clock::now();
        const auto on_cold = JobRunner(envJobs(), false).run(on_spec);
        const auto t2 = std::chrono::steady_clock::now();
        const auto off_warm = JobRunner(envJobs(), true).run(off_spec);
        const auto t3 = std::chrono::steady_clock::now();
        const auto on_warm = JobRunner(envJobs(), true).run(on_spec);
        const auto t4 = std::chrono::steady_clock::now();

        std::uint64_t lat_insts = 0, cycles = 0, skipped = 0;
        for (std::size_t i = 0; i < off_cold.size(); ++i) {
            if (!sameResult(off_cold[i], on_cold[i]) ||
                !sameResult(off_cold[i], off_warm[i]) ||
                !sameResult(off_cold[i], on_warm[i])) {
                std::cerr << "FAIL: job '" << off_spec.jobs()[i].label
                          << "' diverged across skip/warm modes\n";
                return 1;
            }
            lat_insts += off_cold[i].insts;
            cycles += on_cold[i].cycles;
            skipped += on_cold[i].cyclesSkipped;
        }

        LatPoint p;
        p.lat = lat;
        const auto ips = [&](double ms) {
            return ms > 0.0 ? double(lat_insts) / (ms / 1e3) : 0.0;
        };
        p.off_cold_ips = ips(millis(t0, t1));
        p.on_cold_ips = ips(millis(t1, t2));
        p.off_warm_ips = ips(millis(t2, t3));
        p.on_warm_ips = ips(millis(t3, t4));
        p.skip_rate = cycles ? double(skipped) / double(cycles) : 0.0;
        total_off_ms += millis(t0, t1);
        total_on_ms += millis(t1, t2);
        total_insts += lat_insts;

        const double speedup =
            p.off_cold_ips > 0.0 ? p.on_cold_ips / p.off_cold_ips : 0.0;
        t.addRow({std::to_string(lat),
                  TextTable::fmt(p.off_cold_ips / 1e6, 2),
                  TextTable::fmt(p.on_cold_ips / 1e6, 2),
                  TextTable::fmt(speedup, 2),
                  TextTable::fmt(p.skip_rate, 3)});
        csv.push_back({std::to_string(lat),
                       TextTable::fmt(p.off_cold_ips, 0),
                       TextTable::fmt(p.on_cold_ips, 0),
                       TextTable::fmt(p.off_warm_ips, 0),
                       TextTable::fmt(p.on_warm_ips, 0),
                       TextTable::fmt(speedup, 3),
                       TextTable::fmt(p.skip_rate, 4)});
        std::printf("SKIP lat=%u off_cold_ips=%.0f on_cold_ips=%.0f "
                    "off_warm_ips=%.0f on_warm_ips=%.0f speedup=%.3f "
                    "skip_rate=%.4f\n",
                    lat, p.off_cold_ips, p.on_cold_ips, p.off_warm_ips,
                    p.on_warm_ips, speedup, p.skip_rate);
    }

    const double total_off_ips =
        total_off_ms > 0.0 ? double(total_insts) / (total_off_ms / 1e3)
                           : 0.0;
    const double total_on_ips =
        total_on_ms > 0.0 ? double(total_insts) / (total_on_ms / 1e3)
                          : 0.0;
    std::printf("SKIPTOTAL off_cold_ips=%.0f on_cold_ips=%.0f "
                "speedup=%.3f\n",
                total_off_ips, total_on_ips,
                total_off_ips > 0.0 ? total_on_ips / total_off_ips : 0.0);

    emitTable("Idle fast-forward: fig4-shaped grid, cycle-skip off vs "
              "on (results verified identical)",
              t, csv, "skip_ff.csv");
    return 0;
}
