/**
 * @file
 * Ablation (ours, motivated by the decoupling mechanics in
 * docs/ARCHITECTURE.md): how much slippage does
 * decoupling actually need? Sweeps the EP Instruction Queue depth at
 * L2 = 64 and reports IPC and perceived latency — with a 1-entry IQ
 * the machine degenerates towards the non-decoupled baseline, and the
 * benefit saturates once the queue covers the miss latency.
 */

#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint64_t insts = instsBudget(120000);
    const std::vector<std::uint32_t> depths = {1, 2, 4, 8, 16, 32,
                                               48, 96, 192, 384};

    TextTable t;
    t.addRow({"IQ entries", "1T IPC", "1T perceived", "4T IPC",
              "4T perceived"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"iq_entries", "threads", "ipc", "perceived"});

    SweepSpec spec;
    for (const std::uint32_t depth : depths) {
        for (const std::uint32_t n : {1u, 4u}) {
            SimConfig cfg = paperConfigSeeded(n, true, 64);
            cfg.iqEntries = depth;
            spec.addSuiteMix(cfg, insts * n,
                             "IQ " + std::to_string(depth) + " " +
                                 std::to_string(n) + "T");
        }
    }
    // Reference: the non-decoupled machine (queues disabled entirely).
    for (const std::uint32_t n : {1u, 4u})
        spec.addSuiteMix(paperConfigSeeded(n, false, 64), insts * n,
                         "non-decoupled " + std::to_string(n) + "T");
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::size_t k = 0;
    for (const std::uint32_t depth : depths) {
        std::vector<std::string> row = {std::to_string(depth)};
        for (const std::uint32_t n : {1u, 4u}) {
            const RunResult &r = runs.at(k++);
            row.push_back(TextTable::fmt(r.ipc));
            row.push_back(TextTable::fmt(r.perceivedAll, 1));
            csv.push_back({std::to_string(depth), std::to_string(n),
                           TextTable::fmt(r.ipc, 4),
                           TextTable::fmt(r.perceivedAll, 4)});
        }
        t.addRow(row);
    }

    for (const std::uint32_t n : {1u, 4u}) {
        const RunResult &r = runs.at(k++);
        t.addRow({"non-dec", n == 1 ? TextTable::fmt(r.ipc) : "",
                  n == 1 ? TextTable::fmt(r.perceivedAll, 1) : "",
                  n == 4 ? TextTable::fmt(r.ipc) : "",
                  n == 4 ? TextTable::fmt(r.perceivedAll, 1) : ""});
        csv.push_back({"0", std::to_string(n), TextTable::fmt(r.ipc, 4),
                       TextTable::fmt(r.perceivedAll, 4)});
    }

    emitTable("Ablation: EP Instruction Queue depth at L2 = 64 "
              "(slippage requirement)", t, csv,
              "ablation_queue_depth.csv");
    return 0;
}
