/**
 * @file
 * Ablation (ours, enabled by the QoS weights and adaptive gate in
 * src/policy/policy.hh): what do priority weights and adaptive fetch
 * gating buy in fairness terms? Sweeps the thread-weight vector
 * (uniform, 4:1, 16:1 foreground:background) across four policy pairs
 * — the icount/round-robin baseline, fully weighted arbitration, and
 * the adaptive fetch gate with each back end — on the finite L2 +
 * DRAM backend at 4 contexts, and reports weighted speedup, the
 * harmonic-mean and max-min fairness indices, and the worst per-thread
 * slowdown. Weighted arbitration should convert weight skew into
 * proportional progress (max-min near the ideal), while the adaptive
 * gate should lift harmonic-mean fairness by suppressing cache hogs
 * during memory phases.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"

using namespace mtdae;

int
main()
{
    const std::uint32_t n = 4;
    const std::uint64_t insts = instsBudget(60000);
    const std::vector<std::vector<std::uint32_t>> weight_vectors = {
        {1, 1}, {4, 1}, {16, 1}};
    const std::vector<std::pair<PolicyKind, PolicyKind>> pairs = {
        {PolicyKind::Icount, PolicyKind::RoundRobin},
        {PolicyKind::Weighted, PolicyKind::Weighted},
        {PolicyKind::Adaptive, PolicyKind::RoundRobin},
        {PolicyKind::Adaptive, PolicyKind::Weighted}};

    TextTable t;
    t.addRow({"weights", "fetch", "issue", "ipc", "wspeedup",
              "fair_hm", "fair_mm", "slow_max"});
    std::vector<std::vector<std::string>> csv;
    csv.push_back({"weights", "fetch_policy", "issue_policy", "ipc",
                   "wspeedup", "fair_hmean", "fair_maxmin", "slow_max"});

    SweepSpec spec;
    for (const auto &wv : weight_vectors) {
        for (const auto &[fp, ip] : pairs) {
            SimConfig cfg = paperConfigSeeded(n, true, 16);
            cfg.perfectL2 = false;
            cfg.l2Bytes = 256 * 1024;
            cfg.fetchPolicy = fp;
            cfg.issuePolicy = ip;
            cfg.threadWeights = wv;
            spec.addSuiteMix(cfg, insts * n,
                             std::string(policyName(fp)) + "/" +
                                 std::string(policyName(ip)));
        }
    }
    const std::vector<RunResult> runs = runSweepJobs(spec);

    std::size_t k = 0;
    for (const auto &wv : weight_vectors) {
        std::string wlabel;
        for (const std::uint32_t w : wv) {
            if (!wlabel.empty())
                wlabel += ':';
            wlabel += std::to_string(w);
        }
        for (const auto &[fp, ip] : pairs) {
            const RunResult &r = runs.at(k++);
            const double slow_max =
                r.threadSlowdown.empty()
                    ? 0.0
                    : *std::max_element(r.threadSlowdown.begin(),
                                        r.threadSlowdown.end());
            t.addRow({wlabel, std::string(policyName(fp)),
                      std::string(policyName(ip)), TextTable::fmt(r.ipc),
                      TextTable::fmt(r.weightedSpeedup),
                      TextTable::fmt(r.fairnessHmean),
                      TextTable::fmt(r.fairnessMaxMin),
                      TextTable::fmt(slow_max)});
            csv.push_back({wlabel, std::string(policyName(fp)),
                           std::string(policyName(ip)),
                           TextTable::fmt(r.ipc, 4),
                           TextTable::fmt(r.weightedSpeedup, 4),
                           TextTable::fmt(r.fairnessHmean, 4),
                           TextTable::fmt(r.fairnessMaxMin, 4),
                           TextTable::fmt(slow_max, 4)});
        }
    }

    emitTable("Ablation: QoS weights x adaptive gating (fairness on the "
              "finite L2 + DRAM backend)", t, csv, "ablation_qos.csv");
    return 0;
}
