/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries: table
 * assembly and CSV emission in one call.
 */

#ifndef MTDAE_BENCH_BENCH_UTIL_HH
#define MTDAE_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"

namespace mtdae {

/** Print @p table under @p title and mirror it to results/<csv_name>. */
inline void
emitTable(const std::string &title, const TextTable &table,
          const std::vector<std::vector<std::string>> &csv_rows,
          const std::string &csv_name)
{
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
    CsvWriter csv(resultsDir() + "/" + csv_name);
    for (const auto &row : csv_rows)
        csv.row(row);
}

/** Percent IPC loss of @p ipc relative to @p base. */
inline double
ipcLossPct(double base, double ipc)
{
    return base > 0.0 ? 100.0 * (1.0 - ipc / base) : 0.0;
}

} // namespace mtdae

#endif // MTDAE_BENCH_BENCH_UTIL_HH
