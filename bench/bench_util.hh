/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries: table
 * assembly, CSV emission, and the sweep-engine plumbing the flag-less
 * binaries use (worker count from MTDAE_JOBS, base seed from
 * MTDAE_SEED).
 */

#ifndef MTDAE_BENCH_BENCH_UTIL_HH
#define MTDAE_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace mtdae {

/**
 * The paper machine for one sweep point, seeded from MTDAE_SEED (the
 * bench binaries take no flags, so the environment carries the base
 * seed; SweepSpec derives the per-job seeds from it).
 */
inline SimConfig
paperConfigSeeded(std::uint32_t threads, bool decoupled,
                  std::uint32_t l2_latency, bool scale_queues = true)
{
    SimConfig cfg = paperConfig(threads, decoupled, l2_latency,
                                scale_queues);
    cfg.seed = envSeed();
    return cfg;
}

/** Run @p spec on the MTDAE_JOBS-sized pool; results in grid order. */
inline std::vector<RunResult>
runSweepJobs(const SweepSpec &spec)
{
    return JobRunner(envJobs()).run(spec);
}

/** Print @p table under @p title and mirror it to results/<csv_name>. */
inline void
emitTable(const std::string &title, const TextTable &table,
          const std::vector<std::vector<std::string>> &csv_rows,
          const std::string &csv_name)
{
    std::cout << "\n== " << title << " ==\n";
    table.print(std::cout);
    CsvWriter csv(resultsDir() + "/" + csv_name);
    for (const auto &row : csv_rows)
        csv.row(row);
}

/** Percent IPC loss of @p ipc relative to @p base. */
inline double
ipcLossPct(double base, double ipc)
{
    return base > 0.0 ? 100.0 * (1.0 - ipc / base) : 0.0;
}

} // namespace mtdae

#endif // MTDAE_BENCH_BENCH_UTIL_HH
