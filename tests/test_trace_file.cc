/**
 * @file
 * Tests of trace recording and playback: round-trip fidelity, header
 * handling, error paths, and simulation equivalence (a replayed trace
 * must time identically to the live generator).
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "tests/test_util.hh"
#include "workload/spec_fp95.hh"
#include "workload/trace_file.hh"

using namespace mtdae;
using namespace mtdae::test;

namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

} // namespace

TEST(TraceFile, RoundTripPreservesEveryField)
{
    const std::string path = tempPath("roundtrip.mtae");
    auto src = makeSpecFp95Source("wave5", 0, 1);
    std::vector<TraceInst> original;
    {
        TraceWriter w(path);
        TraceInst ti;
        for (int i = 0; i < 5000; ++i) {
            ASSERT_TRUE(src->next(ti));
            original.push_back(ti);
            w.append(ti);
        }
    }

    TraceFileSource replay(path);
    EXPECT_EQ(replay.totalInsts(), 5000u);
    TraceInst ti;
    for (const TraceInst &want : original) {
        ASSERT_TRUE(replay.next(ti));
        EXPECT_EQ(ti.op, want.op);
        EXPECT_EQ(ti.pc, want.pc);
        EXPECT_EQ(ti.addr, want.addr);
        EXPECT_EQ(ti.taken, want.taken);
        EXPECT_TRUE(ti.dst == want.dst);
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(ti.src[i] == want.src[i]);
    }
    EXPECT_FALSE(replay.next(ti));
    std::remove(path.c_str());
}

TEST(TraceFile, RecordHelperCapsLength)
{
    const std::string path = tempPath("capped.mtae");
    auto src = makeSpecFp95Source("tomcatv", 0, 1);
    EXPECT_EQ(TraceWriter::record(*src, path, 1234), 1234u);
    TraceFileSource replay(path);
    EXPECT_EQ(replay.totalInsts(), 1234u);
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayedTraceSimulatesIdentically)
{
    // Timing must not depend on whether the trace comes from the live
    // generator or from a file.
    const std::string path = tempPath("equiv.mtae");
    {
        auto src = makeSpecFp95Source("su2cor", 0, 1);
        TraceWriter::record(*src, path, 60000);
    }

    SimConfig cfg;
    cfg.warmupInsts = 5000;

    std::vector<std::unique_ptr<TraceSource>> live;
    live.push_back(makeSpecFp95Source("su2cor", 0, 1));
    Simulator sim_live(cfg, std::move(live));
    const RunResult a = sim_live.run(40000);

    std::vector<std::unique_ptr<TraceSource>> replay;
    replay.push_back(std::make_unique<TraceFileSource>(path));
    Simulator sim_replay(cfg, std::move(replay));
    const RunResult b = sim_replay.run(40000);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_DOUBLE_EQ(a.perceivedInt, b.perceivedInt);
    EXPECT_DOUBLE_EQ(a.loadMissRatio, b.loadMissRatio);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_EXIT({ TraceFileSource bad("/nonexistent/dir/x.mtae"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFile, GarbageFileIsFatal)
{
    const std::string path = tempPath("garbage.mtae");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("this is not a trace file at all............", f);
        std::fclose(f);
    }
    EXPECT_EXIT({ TraceFileSource bad(path); },
                ::testing::ExitedWithCode(1), "not an mtdae trace");
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceReplaysAsEmpty)
{
    const std::string path = tempPath("empty.mtae");
    {
        TraceWriter w(path);
    }
    TraceFileSource replay(path);
    EXPECT_EQ(replay.totalInsts(), 0u);
    TraceInst ti;
    EXPECT_FALSE(replay.next(ti));
    std::remove(path.c_str());
}
