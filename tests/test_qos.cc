/**
 * @file
 * The QoS/adaptive arbitration fortress: registry membership of the
 * adaptive and weighted policies, the adaptive gate's exact threshold
 * boundaries and veto-stability semantics (including the
 * equal-sum-mixed-ring regression), its memory-phase ordering switch,
 * the weighted comparator's cross-multiplied order and tie-breaks,
 * the fairness arithmetic of computeQosMetrics() against hand-computed
 * values, forward progress under skewed weights for every policy pair,
 * and byte-identity of the ablate-qos grid across worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "harness/cli.hh"
#include "policy/policy.hh"
#include "test_util.hh"

namespace mtdae {
namespace {

SimConfig
qosCfg(std::uint32_t nthreads, PolicyKind fetch, PolicyKind issue)
{
    SimConfig cfg;
    cfg.numThreads = nthreads;
    cfg.fetchPolicy = fetch;
    cfg.issuePolicy = issue;
    return cfg;
}

/** n default-constructed snapshots with tids assigned. */
std::vector<ThreadState>
blankStates(std::uint32_t n)
{
    std::vector<ThreadState> ts(n);
    for (std::uint32_t i = 0; i < n; ++i)
        ts[i].tid = i;
    return ts;
}

using Order = std::vector<ThreadId>;

// --- Registry membership ------------------------------------------------

TEST(QosRegistry, AdaptiveIsFetchOnlyWeightedIsBothSeams)
{
    const auto &fp = fetchPolicies();
    const auto &ip = issuePolicies();
    EXPECT_EQ(std::count(fp.begin(), fp.end(), PolicyKind::Adaptive), 1);
    EXPECT_EQ(std::count(ip.begin(), ip.end(), PolicyKind::Adaptive), 0);
    EXPECT_EQ(std::count(fp.begin(), fp.end(), PolicyKind::Weighted), 1);
    EXPECT_EQ(std::count(ip.begin(), ip.end(), PolicyKind::Weighted), 1);
    EXPECT_TRUE(policyIsFetch(PolicyKind::Adaptive));
    EXPECT_FALSE(policyIsIssue(PolicyKind::Adaptive));
    EXPECT_TRUE(policyIsFetch(PolicyKind::Weighted));
    EXPECT_TRUE(policyIsIssue(PolicyKind::Weighted));
}

TEST(QosConfig, WeightsTileAcrossThreadsAndRejectZero)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.threadWeight(0), 1u);  // empty vector: uniform
    EXPECT_EQ(cfg.threadWeight(7), 1u);
    cfg.threadWeights = {4, 1};
    EXPECT_EQ(cfg.threadWeight(0), 4u);
    EXPECT_EQ(cfg.threadWeight(1), 1u);
    EXPECT_EQ(cfg.threadWeight(2), 4u);  // tiled modulo the vector
    EXPECT_EQ(cfg.threadWeight(3), 1u);
}

// --- Adaptive gate: exact threshold boundaries --------------------------

TEST(AdaptiveGate, GatesExactlyAtThresholdTimesWindow)
{
    SimConfig cfg = qosCfg(2, PolicyKind::Adaptive, PolicyKind::RoundRobin);
    cfg.adaptiveMissThreshold = 2;
    auto pol = makeFetchPolicy(cfg);

    ThreadState t;
    t.outstandingMisses = 1;
    t.missWindow = 2 * kPolicyWindowCycles - 1;  // one below the gate
    EXPECT_TRUE(pol->mayFetch(t));
    t.missWindow = 2 * kPolicyWindowCycles;  // exactly at the gate
    EXPECT_FALSE(pol->mayFetch(t));
    t.missWindow = 2 * kPolicyWindowCycles + 1;
    EXPECT_FALSE(pol->mayFetch(t));
}

TEST(AdaptiveGate, NeverGatesWithoutAnOutstandingMiss)
{
    SimConfig cfg = qosCfg(2, PolicyKind::Adaptive, PolicyKind::RoundRobin);
    cfg.adaptiveMissThreshold = 1;
    auto pol = makeFetchPolicy(cfg);

    ThreadState t;
    t.outstandingMisses = 0;
    t.missWindow = 100 * kPolicyWindowCycles;  // stale window, no miss
    EXPECT_TRUE(pol->mayFetch(t));
}

TEST(AdaptiveGate, VetoIsStableOnlyOnAUniformWindow)
{
    SimConfig cfg = qosCfg(2, PolicyKind::Adaptive, PolicyKind::RoundRobin);
    cfg.adaptiveMissThreshold = 1;
    auto pol = makeFetchPolicy(cfg);

    ThreadState t;
    t.outstandingMisses = 0;
    EXPECT_TRUE(pol->vetoStable(t));  // gate cannot engage at all

    t.outstandingMisses = 1;
    t.missWindowUniform = true;
    t.missWindow = kPolicyWindowCycles;
    EXPECT_TRUE(pol->vetoStable(t));

    // The regression that motivated the uniformity flag: a mixed ring
    // (say one 2-sample, one 0-sample, 62 1-samples) sums to exactly
    // outstanding * window yet keeps moving as it slides, so the sum
    // test alone would wrongly freeze the verdict mid-idle-span.
    t.missWindowUniform = false;
    EXPECT_FALSE(pol->vetoStable(t));
}

TEST(AdaptiveGate, OrderingSwitchesBetweenRotationAndIcount)
{
    SimConfig cfg = qosCfg(3, PolicyKind::Adaptive, PolicyKind::RoundRobin);
    auto pol = makeFetchPolicy(cfg);
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 5;
    ts[1].fetchBufOccupancy = 0;
    ts[2].fetchBufOccupancy = 3;

    // Compute phase (all miss windows empty): pure rotation, ignoring
    // the occupancies.
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));

    // Memory phase (any nonzero miss window): ICOUNT ranking.
    ts[2].missWindow = 1;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));  // by occupancy 0 < 3 < 5
    ts[2].missWindow = 0;
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));  // back to rotation
}

// --- Weighted comparator: order and tie-breaks --------------------------

TEST(WeightedFetch, DividesOccupancyByWeightExactly)
{
    SimConfig cfg = qosCfg(2, PolicyKind::Weighted, PolicyKind::RoundRobin);
    auto ts = blankStates(2);
    ts[0].fetchBufOccupancy = 3;
    ts[0].weight = 4;
    ts[1].fetchBufOccupancy = 1;
    ts[1].weight = 1;
    auto pol = makeFetchPolicy(cfg);

    // Cross-multiplied: 3/4 < 1/1 (3*1 < 1*4), so the heavy thread
    // fetches first despite holding more instructions.
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1}));

    // 5/4 > 1/1 flips it.
    ts[0].fetchBufOccupancy = 5;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 0}));
}

TEST(WeightedFetch, EqualRatiosTieBreakByRotation)
{
    SimConfig cfg = qosCfg(2, PolicyKind::Weighted, PolicyKind::RoundRobin);
    auto ts = blankStates(2);
    ts[0].fetchBufOccupancy = 4;
    ts[0].weight = 4;
    ts[1].fetchBufOccupancy = 1;
    ts[1].weight = 1;  // 4/4 == 1/1: a tie
    auto pol = makeFetchPolicy(cfg);

    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 0}));  // rotation breaks the tie
}

TEST(WeightedFetch, UniformWeightsReduceToIcount)
{
    SimConfig cfg = qosCfg(3, PolicyKind::Weighted, PolicyKind::RoundRobin);
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 5;
    ts[1].fetchBufOccupancy = 0;
    ts[2].fetchBufOccupancy = 3;
    auto pol = makeFetchPolicy(cfg);
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
}

TEST(WeightedIssue, DispatchAndBothUnitsUseTheFrontEndKey)
{
    SimConfig cfg = qosCfg(2, PolicyKind::Icount, PolicyKind::Weighted);
    auto ts = blankStates(2);
    // Front-end occupancy = fetchBuf + apQ + iq.
    ts[0].fetchBufOccupancy = 2;
    ts[0].apQueueOccupancy = 2;
    ts[0].iqOccupancy = 2;  // 6 total at weight 4 -> 6/4
    ts[0].weight = 4;
    ts[1].apQueueOccupancy = 2;  // 2 total at weight 1 -> 2/1
    ts[1].weight = 1;
    auto pol = makeArbitrationPolicy(cfg);

    // 6/4 < 2/1 (6*1 < 2*4): the heavy thread leads on all seams.
    Order order;
    pol->dispatchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1}));
    pol->issueOrder(Unit::AP, ts, order);
    EXPECT_EQ(order, Order({0, 1}));
    pol->issueOrder(Unit::EP, ts, order);
    EXPECT_EQ(order, Order({0, 1}));
}

// --- Fairness arithmetic ------------------------------------------------

TEST(QosMetrics, MatchesHandComputedValuesUniformWeights)
{
    RunResult r;
    computeQosMetrics({300, 100}, {1, 1}, 1000, r);

    // Shares are 1/2 each; progress ratios x = (insts/total)/share:
    // x0 = (300/400)/0.5 = 1.5, x1 = (100/400)/0.5 = 0.5.
    ASSERT_EQ(r.threadSlowdown.size(), 2u);
    EXPECT_NEAR(r.threadSlowdown[0], 1.0 / 1.5, 1e-12);
    EXPECT_NEAR(r.threadSlowdown[1], 2.0, 1e-12);
    // Weighted speedup = (1*300/1000 + 1*100/1000) / 2 = 0.2.
    EXPECT_NEAR(r.weightedSpeedup, 0.2, 1e-12);
    // Harmonic mean of {1.5, 0.5} = 2 / (1/1.5 + 1/0.5) = 0.75.
    EXPECT_NEAR(r.fairnessHmean, 0.75, 1e-12);
    // Max-min = 0.5 / 1.5 = 1/3.
    EXPECT_NEAR(r.fairnessMaxMin, 1.0 / 3.0, 1e-12);
}

TEST(QosMetrics, SkewedWeightsProportionalProgressIsPerfectlyFair)
{
    RunResult r;
    // Progress exactly proportional to the 4:1 weights: every x = 1.
    computeQosMetrics({400, 100}, {4, 1}, 1000, r);
    EXPECT_NEAR(r.threadSlowdown[0], 1.0, 1e-12);
    EXPECT_NEAR(r.threadSlowdown[1], 1.0, 1e-12);
    EXPECT_NEAR(r.fairnessHmean, 1.0, 1e-12);
    EXPECT_NEAR(r.fairnessMaxMin, 1.0, 1e-12);
    EXPECT_NEAR(r.weightedSpeedup, (4 * 0.4 + 1 * 0.1) / 5.0, 1e-12);
}

TEST(QosMetrics, StarvedThreadZeroesTheFairnessIndices)
{
    RunResult r;
    computeQosMetrics({200, 0}, {1, 1}, 1000, r);
    EXPECT_EQ(r.threadSlowdown[1], 0.0);  // sentinel: no progress
    EXPECT_EQ(r.fairnessHmean, 0.0);
    EXPECT_EQ(r.fairnessMaxMin, 0.0);
}

TEST(QosMetrics, EmptyRunProducesZeroes)
{
    RunResult r;
    computeQosMetrics({0, 0}, {1, 1}, 1000, r);
    EXPECT_EQ(r.weightedSpeedup, 0.0);
    EXPECT_EQ(r.fairnessHmean, 0.0);
    EXPECT_EQ(r.fairnessMaxMin, 0.0);
}

// --- Forward progress under skewed weights ------------------------------

TEST(QosProgress, EveryPolicyPairMakesProgressWithSkewedWeights)
{
    // A 16:1 weight skew (and the adaptive gate) must never starve the
    // background thread outright, whatever the policy pair.
    const Kernel kernel = test::streamingKernel(256 * 1024);
    for (const PolicyKind fp : fetchPolicies()) {
        for (const PolicyKind ip : issuePolicies()) {
            SimConfig cfg = test::testConfig(2);
            cfg.fetchPolicy = fp;
            cfg.issuePolicy = ip;
            cfg.threadWeights = {16, 1};
            cfg.validate();
            Simulator sim = test::makeSim(cfg, kernel);
            sim.runWarmup(20000);
            const RunResult r = sim.runMeasure(2000, 40000);
            ASSERT_EQ(r.threadInsts.size(), 2u)
                << policyName(fp) << "/" << policyName(ip);
            EXPECT_GT(r.threadInsts[0], 0u)
                << policyName(fp) << "/" << policyName(ip);
            EXPECT_GT(r.threadInsts[1], 0u)
                << policyName(fp) << "/" << policyName(ip);
        }
    }
}

// --- CLI byte-identity --------------------------------------------------

TEST(QosSweep, AblateQosIsByteIdenticalAcrossWorkerCounts)
{
    const std::vector<std::string> common = {
        "ablate-qos", "--insts=1200", "--warmup=300",
        "--latencies=256", "--quiet", "--json"};
    std::vector<std::string> serial = common, parallel = common;
    serial.push_back("--jobs=1");
    parallel.push_back("--jobs=8");
    std::string serial_out, parallel_out;
    ASSERT_EQ(test::cli(serial, serial_out), 0);
    ASSERT_EQ(test::cli(parallel, parallel_out), 0);
    EXPECT_FALSE(serial_out.empty());
    EXPECT_EQ(serial_out, parallel_out);
    // The grid must actually carry the fairness columns.
    EXPECT_NE(serial_out.find("fair_hmean"), std::string::npos);
    EXPECT_NE(serial_out.find("wspeedup"), std::string::npos);
}

} // namespace
} // namespace mtdae
