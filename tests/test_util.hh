/**
 * @file
 * Shared helpers for the mtdae test suites: canned kernels with known
 * dependence/memory structure and one-call simulator construction.
 */

#ifndef MTDAE_TESTS_TEST_UTIL_HH
#define MTDAE_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/simulator.hh"
#include "harness/cli.hh"
#include "workload/kernel.hh"
#include "workload/trace_source.hh"

namespace mtdae::test {

/** Run the mtdae CLI capturing stdout into @p out; returns exit code. */
inline int
cli(const std::vector<std::string> &args, std::string &out)
{
    std::ostringstream os, es;
    const int rc = mtdae::cli::runCli(args, os, es);
    out = os.str();
    return rc;
}

/** Read a whole file as bytes (EXPECT-fails when it cannot open). */
inline std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/**
 * A perfectly decoupled streaming kernel: FP loads from large strided
 * arrays feed independent FP work; all address computation is integer
 * induction. The canonical "decoupling hides everything" workload.
 */
inline Kernel
streamingKernel(std::uint64_t footprint = 4 * 1024 * 1024)
{
    KernelBuilder b;
    auto sA = b.strided(footprint, 8);
    auto sB = b.strided(footprint, 8);
    auto sC = b.strided(footprint, 8);
    const int a = b.ldf(sA);
    const int c = b.ldf(sB);
    const int t1 = b.fop(Opcode::FMul, a, c);
    const int t2 = b.fop(Opcode::FAdd, a, c);
    const int t3 = b.fop(Opcode::FSub, t1, t2);
    const int acc = b.fpReg();
    b.fopInto(Opcode::FMA, acc, t1, t2, acc);
    b.stf(sC, t3);
    b.advance(sA);
    b.advance(sB);
    b.advance(sC);
    return b.build("streaming");
}

/**
 * A loss-of-decoupling kernel: every iteration ends in an FP-conditional
 * branch, so the AP must repeatedly wait for the EP.
 */
inline Kernel
lodKernel(std::uint64_t footprint = 4 * 1024 * 1024)
{
    KernelBuilder b;
    auto sA = b.strided(footprint, 8);
    const int a = b.ldf(sA);
    const int t = b.fop(Opcode::FMul, a, a);
    const int fc = b.fop(Opcode::FCmp, t, a);
    b.brf(fc, 0.9f, 0);
    b.advance(sA);
    return b.build("lod");
}

/**
 * A pure integer pointer-chase-ish kernel: integer loads immediately
 * consumed by address arithmetic (maximal perceived integer latency).
 */
inline Kernel
intChaseKernel(std::uint64_t footprint = 4 * 1024 * 1024)
{
    KernelBuilder b;
    auto sI = b.strided(footprint, 8);
    const int v = b.ldi(sI);
    const int w = b.iop(Opcode::IAdd, v);
    b.iopInto(Opcode::ILogic, w, w, v);
    b.advance(sI);
    return b.build("int-chase");
}

/** A kernel that never touches memory (pure compute). */
inline Kernel
computeKernel()
{
    KernelBuilder b;
    const int x = b.fpReg();
    const int y = b.fop(Opcode::FAdd, x, x);
    const int z = b.fop(Opcode::FMul, y, x);
    b.fopInto(Opcode::FMA, x, y, z, x);
    const int i = b.intReg();
    b.iopInto(Opcode::IAdd, i, i);
    return b.build("compute");
}

/** Build a simulator running @p kernel on every thread of @p cfg. */
inline Simulator
makeSim(const SimConfig &cfg, const Kernel &kernel,
        std::uint64_t iterations = std::uint64_t(1) << 62)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (ThreadId t = 0; t < cfg.numThreads; ++t)
        sources.push_back(std::make_unique<KernelTraceSource>(
            kernel, Addr(t) << 34, 0x1000, 7 + t, iterations));
    return Simulator(cfg, std::move(sources));
}

/** A small machine configuration that runs fast in unit tests. */
inline SimConfig
testConfig(std::uint32_t threads = 1, bool decoupled = true,
           std::uint32_t l2_latency = 16)
{
    SimConfig cfg;
    cfg.numThreads = threads;
    cfg.decoupled = decoupled;
    cfg.l2Latency = l2_latency;
    cfg.warmupInsts = 2000;
    return cfg;
}

} // namespace mtdae::test

#endif // MTDAE_TESTS_TEST_UTIL_HH
