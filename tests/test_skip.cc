/**
 * @file
 * The idle-cycle fast-forward engine (Simulator::trySkipIdle): the
 * skip-vs-step byte-identity contract. Running with --cycle-skip=on
 * must produce exactly the same results, serialized state and CSV
 * bytes as stepping every cycle — across every fetch x issue policy
 * pair, both memory backends, built-in and DSL kernels, and
 * checkpoints taken at any cycle — while the skip counters themselves
 * stay observability-only. Plus the never-under-report contract of
 * MemorySystem::nextEventCycle(): no hierarchy state change may land
 * strictly inside a reported quiet interval.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/snapshot.hh"
#include "harness/cli.hh"
#include "memory/memory_system.hh"
#include "policy/policy.hh"
#include "test_util.hh"
#include "workload/dsl/interp.hh"

namespace mtdae {
namespace {

using test::intChaseKernel;
using test::makeSim;
using test::streamingKernel;
using test::testConfig;

using Bytes = std::vector<std::uint8_t>;

constexpr std::uint64_t kDrainCap = 400000;

/** The matrix machine: 2 threads, moderate latency so spans form. */
SimConfig
skipCfg(bool perfect_l2, PolicyKind fetch, PolicyKind issue)
{
    SimConfig cfg = testConfig(2, true, 64);
    cfg.fetchPolicy = fetch;
    cfg.issuePolicy = issue;
    cfg.perfectL2 = perfect_l2;
    if (!perfect_l2)
        cfg.l2Bytes = 64 * 1024;  // small finite L2 + DRAM: real misses
    // Run everything through runWarmup() so the skip-enabled run loop
    // drives the whole execution without a statistics reset in the
    // middle (the serialized interval counters then stay comparable).
    cfg.warmupInsts = std::uint64_t(1) << 40;
    return cfg;
}

/** Drain @p sim through the skip-aware run loop; ASSERTs completion. */
void
drain(Simulator &sim)
{
    sim.runWarmup(kDrainCap);
    ASSERT_TRUE(sim.allDone()) << "simulation did not drain";
}

/** Step @p sim to completion one cycle at a time (never skips). */
void
stepToCompletion(Simulator &sim)
{
    for (std::uint64_t guard = 0; !sim.allDone(); ++guard) {
        ASSERT_LT(guard, kDrainCap) << "simulation did not drain";
        sim.step();
    }
}

struct MatrixCase
{
    PolicyKind fetch;
    PolicyKind issue;
    bool perfectL2;
};

std::string
matrixName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string n = std::string(policyName(info.param.fetch)) + "_" +
                    policyName(info.param.issue) + "_" +
                    (info.param.perfectL2 ? "perfectL2" : "finiteL2");
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

std::vector<MatrixCase>
matrixCases()
{
    std::vector<MatrixCase> cases;
    for (const PolicyKind fp : fetchPolicies())
        for (const PolicyKind ip : issuePolicies())
            for (const bool perfect : {true, false})
                cases.push_back({fp, ip, perfect});
    return cases;
}

class SkipMatrix : public ::testing::TestWithParam<MatrixCase>
{};

/**
 * The headline assertion, for one configuration and kernel: a full
 * skip-on execution lands on exactly the serialized state (every
 * statistic, queue, rotation and memory structure included) of the
 * skip-off execution, at the same cycle.
 */
void
expectSkipEquivalence(SimConfig cfg, const Kernel &kernel,
                      std::uint64_t iters)
{
    cfg.cycleSkip = false;
    Simulator off = makeSim(cfg, kernel, iters);
    drain(off);

    cfg.cycleSkip = true;
    Simulator on = makeSim(cfg, kernel, iters);
    drain(on);

    EXPECT_EQ(on.now(), off.now()) << "cycle count diverged";
    EXPECT_EQ(on.totalGraduated(), off.totalGraduated());
    EXPECT_EQ(on.saveSnapshot().toBytes(), off.saveSnapshot().toBytes())
        << "skip-on execution drifted from stepping";
    EXPECT_EQ(off.snapshot().cyclesSkipped, 0u);
    EXPECT_EQ(off.snapshot().skipEvents, 0u);
}

TEST_P(SkipMatrix, SkipOnEqualsSkipOffByteForByte)
{
    const MatrixCase &p = GetParam();
    expectSkipEquivalence(skipCfg(p.perfectL2, p.fetch, p.issue),
                          streamingKernel(), 150);
}

INSTANTIATE_TEST_SUITE_P(AllPolicyPairsAndBackends, SkipMatrix,
                         ::testing::ValuesIn(matrixCases()), matrixName);

TEST(SkipDsl, DslKernelsSkipIdenticallyOnBothBackends)
{
    const Kernel k = dsl::compileKernel(dsl::readKernelFile(
        std::string(MTDAE_SOURCE_DIR) +
        "/examples/kernels/pointer_chase.mk"));
    for (const bool perfect : {true, false})
        expectSkipEquivalence(skipCfg(perfect, PolicyKind::Icount,
                                      PolicyKind::RoundRobin),
                              k, 150);
}

// --- Checkpoints across the skip boundary ------------------------------

/**
 * cycleSkip is an execution strategy, not a machine parameter: a
 * checkpoint stepped out cycle by cycle must restore into a skip-on
 * simulator (and vice versa — the fingerprint ignores the knob), and
 * the fast-forwarded continuation must land on the stepped run's
 * final state byte for byte, from a checkpoint at any cycle.
 */
TEST(SkipCheckpoint, SteppedCheckpointsContinueIdenticallyUnderSkip)
{
    for (const bool perfect : {true, false}) {
        SimConfig cfg = skipCfg(perfect, PolicyKind::Icount,
                                PolicyKind::RoundRobin);
        cfg.cycleSkip = false;
        Simulator ref = makeSim(cfg, streamingKernel(), 150);
        stepToCompletion(ref);
        const std::uint64_t last = ref.now();
        const Bytes ref_final = ref.saveSnapshot().toBytes();
        ASSERT_GT(last, 2u);

        for (const std::uint64_t cycle :
             {std::uint64_t(0), last / 2, last}) {
            Simulator a = makeSim(cfg, streamingKernel(), 150);
            for (std::uint64_t c = 0; c < cycle; ++c)
                a.step();
            const Snapshot snap = a.saveSnapshot();

            SimConfig on_cfg = cfg;
            on_cfg.cycleSkip = true;
            Simulator b = makeSim(on_cfg, streamingKernel(), 150);
            ASSERT_NO_THROW(b.restoreSnapshot(snap))
                << "cycleSkip perturbed the config fingerprint";
            drain(b);
            EXPECT_EQ(b.now(), last)
                << "cycle count diverged from checkpoint at " << cycle;
            EXPECT_EQ(b.saveSnapshot().toBytes(), ref_final)
                << "skip-on continuation diverged (checkpoint at cycle "
                << cycle << ", " << (perfect ? "perfect" : "finite")
                << " L2)";
        }
    }
}

TEST(SkipCheckpoint, FingerprintIgnoresCycleSkip)
{
    SimConfig on = testConfig(2);
    SimConfig off = testConfig(2);
    on.cycleSkip = true;
    off.cycleSkip = false;
    EXPECT_EQ(configFingerprint(on), configFingerprint(off));
}

// --- Observability ------------------------------------------------------

TEST(SkipCounters, HighLatencyStallsAreActuallySkipped)
{
    // A single-thread *dependent* pointer chase (each load's address is
    // the previous load's data) at L2=256 spends most of its life
    // quiescent: the engine must fast-forward a significant share of
    // the cycles, and report it. Strided kernels do not qualify — their
    // ready-but-rejected loads retry (and count a reject) every cycle,
    // which correctly breaks quiescence.
    const Kernel k = dsl::compileKernel(dsl::readKernelFile(
        std::string(MTDAE_SOURCE_DIR) +
        "/examples/kernels/pointer_chase.mk"));
    SimConfig cfg = testConfig(1, true, 256);
    cfg.warmupInsts = 500;
    Simulator sim = makeSim(cfg, k, 4000);
    const RunResult r = sim.run(2000, kDrainCap);
    EXPECT_GT(r.skipEvents, 0u);
    EXPECT_GT(r.cyclesSkipped, r.cycles / 4)
        << "fast-forward barely engaged on a memory-bound workload";
    EXPECT_LE(r.cyclesSkipped, r.cycles);
}

TEST(SkipCounters, SkipOffReportsZero)
{
    SimConfig cfg = testConfig(1, true, 256);
    cfg.cycleSkip = false;
    cfg.warmupInsts = 500;
    Simulator sim = makeSim(cfg, intChaseKernel(), 400);
    const RunResult r = sim.run(2000, kDrainCap);
    EXPECT_EQ(r.cyclesSkipped, 0u);
    EXPECT_EQ(r.skipEvents, 0u);
}

// --- MemorySystem::nextEventCycle: never under-report -------------------

TEST(SkipWake, MemoryNextEventCycleNeverUnderReports)
{
    // Load up the hierarchy with in-flight fills, then walk it forward
    // cycle by cycle with no new accesses: between a cycle and the
    // wake it reports, no fill may land (mshrsInUse must not change).
    for (const bool perfect : {true, false}) {
        SimConfig cfg = testConfig(1);
        cfg.perfectL2 = perfect;
        cfg.l2Latency = 48;
        if (!perfect)
            cfg.l2Bytes = 64 * 1024;
        MemorySystem mem(cfg);

        Cycle c = 0;
        for (; c < 4; ++c) {
            mem.beginCycle(c);
            for (std::uint32_t p = 0; p < cfg.l1Ports; ++p)
                mem.load(Addr((c * cfg.l1Ports + p) * 4096), c);
        }
        ASSERT_GT(mem.mshrsInUse(), 0u);

        std::uint64_t guard = 0;
        while (mem.mshrsInUse() > 0) {
            ASSERT_LT(++guard, 10000u) << "fills never drained";
            const Cycle next = mem.nextEventCycle(c - 1);
            ASSERT_NE(next, kNoCycle) << "in-flight fills but no event";
            ASSERT_GT(next, c - 1);
            const std::uint32_t in_use = mem.mshrsInUse();
            // Strictly inside the reported quiet interval: frozen.
            for (; c < next; ++c) {
                mem.beginCycle(c);
                ASSERT_EQ(mem.mshrsInUse(), in_use)
                    << "fill landed at cycle " << c
                    << " inside the quiet interval ending at " << next;
            }
            mem.beginCycle(c);  // the reported wake cycle
            ++c;
        }
    }
}

// --- CLI: CSV byte-identity and the skip columns ------------------------

TEST(SkipCli, Fig4CsvIsByteIdenticalAcrossCycleSkip)
{
    // The figure CSVs carry no skip counters, so the whole file must
    // not change by a byte when the engine is disabled.
    const std::string on_dir = ::testing::TempDir() + "mtdae_skip_on";
    const std::string off_dir = ::testing::TempDir() + "mtdae_skip_off";
    const std::vector<std::string> common = {
        "fig4", "--threads-list=1,2", "--latencies=16,128",
        "--insts=1500", "--warmup-insts=500", "--quiet"};
    std::vector<std::string> on = common, off = common;
    on.insert(on.end(), {"--cycle-skip=on", "--out=" + on_dir});
    off.insert(off.end(), {"--cycle-skip=off", "--out=" + off_dir});
    std::string out;
    ASSERT_EQ(test::cli(on, out), 0);
    ASSERT_EQ(test::cli(off, out), 0);
    const std::string a = test::slurp(on_dir + "/fig4.csv");
    const std::string b = test::slurp(off_dir + "/fig4.csv");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "--cycle-skip changed the simulated results";
}

TEST(SkipCli, AblateQosCsvIsByteIdenticalAcrossCycleSkip)
{
    // The adaptive gate is the one policy whose fetch veto reads a
    // trailing window, so its stability hook (FetchPolicy::vetoStable)
    // is what keeps idle fast-forward sound on this grid — run the
    // full QoS experiment (weights x policy pairs, adaptive included)
    // with the engine on and off and demand identical CSV bytes.
    const std::string on_dir = ::testing::TempDir() + "mtdae_qos_skip_on";
    const std::string off_dir = ::testing::TempDir() + "mtdae_qos_skip_off";
    const std::vector<std::string> common = {
        "ablate-qos", "--insts=1200", "--warmup=300", "--quiet"};
    std::vector<std::string> on = common, off = common;
    on.insert(on.end(), {"--cycle-skip=on", "--out=" + on_dir});
    off.insert(off.end(), {"--cycle-skip=off", "--out=" + off_dir});
    std::string out;
    ASSERT_EQ(test::cli(on, out), 0);
    ASSERT_EQ(test::cli(off, out), 0);
    const std::string a = test::slurp(on_dir + "/ablate_qos.csv");
    const std::string b = test::slurp(off_dir + "/ablate_qos.csv");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "--cycle-skip changed the QoS grid results";
}

TEST(SkipCli, RunCsvCarriesTheSkipColumns)
{
    const std::string dir = ::testing::TempDir() + "mtdae_skip_cols";
    std::string out;
    ASSERT_EQ(test::cli({"run", "--bench=dsl",
                   "--kernel-file=" + std::string(MTDAE_SOURCE_DIR) +
                       "/examples/kernels/pointer_chase.mk",
                   "--latencies=256", "--insts=1500",
                   "--warmup-insts=500", "--quiet", "--out=" + dir},
                  out),
              0);
    const std::string csv = test::slurp(dir + "/run.csv");
    ASSERT_NE(csv.find("cycles_skipped"), std::string::npos);
    ASSERT_NE(csv.find("skip_events"), std::string::npos);
    // Header line + one data row; the skip counters are the last two
    // columns — with skip on (the default) at L2=256 they engage.
    const std::size_t nl = csv.find('\n');
    ASSERT_NE(nl, std::string::npos);
    const std::string row = csv.substr(nl + 1);
    const std::size_t last_comma = row.rfind(',');
    const std::size_t prev_comma = row.rfind(',', last_comma - 1);
    ASSERT_NE(prev_comma, std::string::npos);
    const std::string skipped =
        row.substr(prev_comma + 1, last_comma - prev_comma - 1);
    EXPECT_NE(skipped, "0") << "no cycles skipped at L2=256";
}

} // namespace
} // namespace mtdae
