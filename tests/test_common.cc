/**
 * @file
 * Unit tests for the common infrastructure: RNG, statistics primitives,
 * table/CSV output and the machine configuration.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace mtdae;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniform(13), 13u);
    EXPECT_EQ(r.uniform(0), 0u);
    EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(RunningStat, Aggregates)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum(), 12.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10);  // [0,10) [10,20) [20,30) [30,inf)
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(25);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_NEAR(h.mean(), (0 + 9 + 10 + 25 + 1000) / 5.0, 1e-9);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
}

TEST(RatioStat, Value)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    r.event(true);
    r.event(false);
    r.event(false);
    r.event(true);
    EXPECT_DOUBLE_EQ(r.value(), 0.5);
    r.reset();
    EXPECT_EQ(r.den, 0u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.addRow({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 3u);
}

TEST(TextTable, FormatsDoubles)
{
    EXPECT_EQ(TextTable::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
    EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
}

TEST(CsvWriter, WritesRows)
{
    const std::string path = ::testing::TempDir() + "/mtdae_test.csv";
    {
        CsvWriter w(path);
        ASSERT_TRUE(w.enabled());
        w.row({"a", "b", "c"});
        w.row({"1", "2", "3"});
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "a,b,c");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1,2,3");
    std::remove(path.c_str());
}

TEST(SimConfig, DefaultsAreThePaperMachine)
{
    const SimConfig cfg;
    EXPECT_EQ(cfg.apUnits, 4u);
    EXPECT_EQ(cfg.epUnits, 4u);
    EXPECT_EQ(cfg.apLatency, 1u);
    EXPECT_EQ(cfg.epLatency, 4u);
    EXPECT_EQ(cfg.iqEntries, 48u);
    EXPECT_EQ(cfg.saqEntries, 32u);
    EXPECT_EQ(cfg.apPhysRegs, 64u);
    EXPECT_EQ(cfg.epPhysRegs, 96u);
    EXPECT_EQ(cfg.l1Bytes, 64u * 1024);
    EXPECT_EQ(cfg.l1LineBytes, 32u);
    EXPECT_EQ(cfg.l1Ports, 4u);
    EXPECT_EQ(cfg.mshrs, 16u);
    EXPECT_EQ(cfg.l2Latency, 16u);
    EXPECT_EQ(cfg.busBytesPerCycle, 16u);
    EXPECT_EQ(cfg.bhtEntries, 2048u);
    EXPECT_EQ(cfg.maxUnresolvedBranches, 4u);
    EXPECT_EQ(cfg.fetchThreadsPerCycle, 2u);
    EXPECT_EQ(cfg.fetchWidth, 8u);
    EXPECT_TRUE(cfg.decoupled);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(SimConfig, LineTransferCycles)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.lineTransferCycles(), 2u);  // 32B line / 16B per cycle
    cfg.busBytesPerCycle = 8;
    EXPECT_EQ(cfg.lineTransferCycles(), 4u);
    cfg.busBytesPerCycle = 64;
    EXPECT_EQ(cfg.lineTransferCycles(), 1u);
}

class ScaledConfigTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ScaledConfigTest, ScalesProportionallyToLatency)
{
    const std::uint32_t lat = GetParam();
    const SimConfig base;
    const SimConfig c = base.scaledForLatency(lat);
    const std::uint32_t factor = std::max(1u, lat / 16u);
    EXPECT_EQ(c.l2Latency, lat);
    EXPECT_EQ(c.iqEntries, base.iqEntries * factor);
    EXPECT_EQ(c.saqEntries, base.saqEntries * factor);
    EXPECT_EQ(c.robEntries, base.robEntries * factor);
    // Only registers beyond the architectural 32 scale.
    EXPECT_EQ(c.apPhysRegs, 32u + (base.apPhysRegs - 32u) * factor);
    EXPECT_EQ(c.epPhysRegs, 32u + (base.epPhysRegs - 32u) * factor);
    // MSHRs scale but stay implementable.
    EXPECT_LE(c.mshrs, 64u);
    EXPECT_GE(c.mshrs, base.mshrs);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

INSTANTIATE_TEST_SUITE_P(PaperLatencies, ScaledConfigTest,
                         ::testing::Values(1, 16, 32, 64, 128, 256));

TEST(SimConfig, ValidateRejectsBadConfigs)
{
    SimConfig cfg;
    cfg.numThreads = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "numThreads");

    cfg = SimConfig{};
    cfg.l1LineBytes = 24;  // not a power of two
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "l1LineBytes");

    cfg = SimConfig{};
    cfg.apPhysRegs = 32;  // no rename headroom
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "apPhysRegs");

    cfg = SimConfig{};
    cfg.mshrs = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "MSHR");

    cfg = SimConfig{};
    cfg.bhtEntries = 1000;  // not a power of two
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "bht");
}
