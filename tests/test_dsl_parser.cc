/**
 * @file
 * Diagnostic tests for the kernel DSL front end: every lexer, parser
 * and interpreter error path is pinned to its exact message AND its
 * exact 1-based line:column. These strings are a compatibility
 * surface — kernel authors script against them — so a change here is a
 * deliberate interface change, not noise.
 */

#include <gtest/gtest.h>

#include <string>

#include "workload/dsl/interp.hh"
#include "workload/dsl/lexer.hh"
#include "workload/dsl/parser.hh"

using namespace mtdae;

namespace {

/** Compile @p text and require DslError{line, col, msg} exactly. */
void
expectDiag(const std::string &text, int line, int col,
           const std::string &msg,
           const dsl::ParamOverrides &overrides = {})
{
    try {
        dsl::compileKernel(text, overrides);
        ADD_FAILURE() << "compiled without error, wanted: " << msg;
    } catch (const dsl::DslError &e) {
        EXPECT_EQ(e.line, line) << e.what();
        EXPECT_EQ(e.col, col) << e.what();
        EXPECT_EQ(e.message, msg);
        // what() carries the same position as a line:col: prefix.
        EXPECT_EQ(std::string(e.what()), std::to_string(line) + ":" +
                                             std::to_string(col) + ": " +
                                             msg);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Lexer diagnostics.
// ---------------------------------------------------------------------

TEST(DslLexer, BadNumericLiteral)
{
    expectDiag("kernel k\nparam x = 4Kb\n", 2, 11,
               "bad numeric literal '4Kb'");
}

TEST(DslLexer, UnexpectedCharacter)
{
    expectDiag("kernel k\nparam x = 4 @\n", 2, 13,
               "unexpected character '@'");
}

TEST(DslLexer, KeywordTableIsSortedAndQueryable)
{
    const auto &words = dsl::dslKeywords();
    ASSERT_FALSE(words.empty());
    for (std::size_t i = 1; i < words.size(); ++i)
        EXPECT_LT(words[i - 1], words[i]) << "keyword table unsorted";
    EXPECT_TRUE(dsl::isDslKeyword("kernel"));
    EXPECT_TRUE(dsl::isDslKeyword("chain"));
    EXPECT_FALSE(dsl::isDslKeyword("while"));
}

// ---------------------------------------------------------------------
// Parser diagnostics.
// ---------------------------------------------------------------------

TEST(DslParser, FileMustStartWithKernel)
{
    expectDiag("param x = 1\n", 1, 1,
               "expected 'kernel' at the start of the file");
}

TEST(DslParser, KernelNameMustBeAnIdentifier)
{
    expectDiag("kernel 5\n", 1, 8, "expected a kernel name, got '5'");
}

TEST(DslParser, UnknownStatement)
{
    expectDiag("kernel k\nfrobnicate\n", 2, 1,
               "unknown statement 'frobnicate'");
}

TEST(DslParser, NonIdentifierStatement)
{
    expectDiag("kernel k\n= 4\n", 2, 1, "expected a statement, got '='");
}

TEST(DslParser, UnterminatedLoopBody)
{
    // The diagnostic points at the opening brace, not at EOF.
    expectDiag("kernel k\nreg x : int\nloop 2 {\niadd x = x\n", 3, 8,
               "unterminated loop body (missing '}')");
}

TEST(DslParser, UnterminatedIfBody)
{
    expectDiag("kernel k\nif 1 {\n", 2, 6,
               "unterminated if body (missing '}')");
}

TEST(DslParser, UnterminatedElseBody)
{
    expectDiag("kernel k\nif 1 {\n} else {\n", 3, 8,
               "unterminated else body (missing '}')");
}

TEST(DslParser, ParamMustBeTopLevel)
{
    expectDiag("kernel k\nloop 2 {\nparam x = 1\n}\n", 3, 1,
               "param declarations must be at the top level");
}

TEST(DslParser, RegClassMustBeIntOrFp)
{
    expectDiag("kernel k\nreg x : float\n", 2, 9,
               "expected 'int' or 'fp', got 'float'");
}

TEST(DslParser, MissingColonInRegDeclaration)
{
    expectDiag("kernel k\nreg x int\n", 2, 7, "expected ':', got 'int'");
}

TEST(DslParser, LetRequiresAnOperation)
{
    expectDiag("kernel k\nlet x = y\n", 2, 9,
               "expected an operation after '=', got 'y'");
}

TEST(DslParser, StreamInitMustBeAKnownForm)
{
    expectDiag("kernel k\nstream s = foo(4)\n", 2, 12,
               "expected 'strided', 'gather' or 'chain', got 'foo'");
}

TEST(DslParser, ExpressionNeedsAFactor)
{
    expectDiag("kernel k\nparam x = *\n", 2, 11,
               "expected a number, a name or '(', got '*'");
}

TEST(DslParser, AdvanceNeedsAStreamName)
{
    expectDiag("kernel k\nadvance 5\n", 2, 9,
               "expected a stream name, got '5'");
}

TEST(DslParser, ExpressionDepthIsBounded)
{
    std::string text = "kernel k\nparam x = ";
    for (int i = 0; i < 70; ++i)
        text += "(";
    text += "1";
    for (int i = 0; i < 70; ++i)
        text += ")";
    // Each paren level costs three recursion frames; the guard trips
    // while peeking at the 22nd '(' (column 10 + 22).
    expectDiag(text + "\n", 2, 32, "expression nested too deeply");
}

TEST(DslParser, BlockDepthIsBounded)
{
    std::string text = "kernel k\n";
    for (int i = 0; i < 40; ++i)
        text += "loop 1 {\n";
    for (int i = 0; i < 40; ++i)
        text += "}\n";
    // The 33rd nested `loop` hits the block-depth cap at its brace
    // (line 1 header + 32 accepted opens put it on line 34, column 8).
    expectDiag(text, 34, 8, "blocks nested too deeply");
}

// ---------------------------------------------------------------------
// Interpreter diagnostics: names and types.
// ---------------------------------------------------------------------

TEST(DslInterp, UnknownIdentifierInExpression)
{
    expectDiag("kernel k\nparam x = y\n", 2, 11,
               "unknown identifier 'y'");
}

TEST(DslInterp, StreamIsNotANumber)
{
    expectDiag("kernel k\nstream s = strided(4K, 8)\nparam x = s\n", 3,
               11, "type mismatch: 's' is a stream, expected a number");
}

TEST(DslInterp, DuplicateParam)
{
    expectDiag("kernel k\nparam x = 1\nparam x = 2\n", 3, 1,
               "duplicate param 'x'");
}

TEST(DslInterp, DuplicateIdentifier)
{
    expectDiag("kernel k\nreg x : int\nreg x : fp\n", 3, 1,
               "duplicate identifier 'x'");
}

TEST(DslInterp, LoadNeedsAStream)
{
    expectDiag("kernel k\nreg x : int\nlet v = loadf(x)\n", 3, 15,
               "type mismatch: 'x' is an int register, expected a "
               "stream");
}

TEST(DslInterp, StoreNeedsAStream)
{
    expectDiag("kernel k\nreg a : fp\nstoref a, a\n", 3, 1,
               "type mismatch: 'a' is an fp register, expected a "
               "stream");
}

TEST(DslInterp, IntOpRejectsFpOperand)
{
    expectDiag("kernel k\nreg a : fp\nlet v = iadd(a)\n", 3, 14,
               "type mismatch: 'a' is an fp register, expected an int "
               "register");
}

TEST(DslInterp, WrongOperandCount)
{
    expectDiag("kernel k\nreg a : fp\nlet v = fadd(a)\n", 3, 1,
               "'fadd' takes 2 operands");
}

TEST(DslInterp, FmaTakesThreeOperands)
{
    expectDiag("kernel k\nreg a : fp\nlet v = fma(a, a)\n", 3, 1,
               "'fma' takes 3 operands");
}

TEST(DslInterp, IntOpsTakeOneOrTwoOperands)
{
    expectDiag("kernel k\nreg i : int\nlet v = iadd(i, i, i)\n", 3, 1,
               "'iadd' takes 1 or 2 operands");
}

TEST(DslInterp, MovifHasNoInPlaceForm)
{
    expectDiag("kernel k\nreg a : fp\nreg i : int\nmovif a = i\n", 4, 1,
               "'movif' has no in-place form");
}

TEST(DslInterp, DivisionByZero)
{
    expectDiag("kernel k\nparam x = 1 / 0\n", 2, 13, "division by zero");
}

TEST(DslInterp, ModuloByZero)
{
    expectDiag("kernel k\nparam x = 1 % 0\n", 2, 13, "modulo by zero");
}

// ---------------------------------------------------------------------
// Interpreter diagnostics: ranges and budgets.
// ---------------------------------------------------------------------

TEST(DslInterp, FootprintOutOfRange)
{
    expectDiag("kernel k\nstream s = strided(4G, 8)\n", 2, 20,
               "stream footprint must be a whole number between 1 and "
               "1073741824, got 4294967296");
}

TEST(DslInterp, FootprintMustBeWhole)
{
    expectDiag("kernel k\nstream s = strided(4.5, 8)\n", 2, 20,
               "stream footprint must be a whole number between 1 and "
               "1073741824, got 4.5");
}

TEST(DslInterp, StrideExceedsFootprint)
{
    expectDiag("kernel k\nstream s = strided(4K, 8K)\n", 2, 24,
               "stride exceeds the stream footprint");
}

TEST(DslInterp, ZeroStride)
{
    expectDiag("kernel k\nstream s = strided(4K, 0)\n", 2, 24,
               "zero stride");
}

TEST(DslInterp, ElementSizeOutOfRange)
{
    expectDiag("kernel k\nstream s = strided(4K, 8, 9000)\n", 2, 27,
               "element size must be a whole number between 1 and "
               "4096, got 9000");
}

TEST(DslInterp, FootprintSmallerThanElement)
{
    expectDiag("kernel k\nstream s = chain(8, 16)\n", 2, 1,
               "stream footprint smaller than an element");
}

TEST(DslInterp, BranchProbabilityRange)
{
    expectDiag("kernel k\nreg c : int\nbranch c prob 1.5\n", 3, 15,
               "branch probability must be between 0 and 1, got 1.5");
}

TEST(DslInterp, BranchSkipRange)
{
    expectDiag("kernel k\nreg c : int\nbranch c prob 0.5 skip 300\n", 3,
               24,
               "branch skip must be a whole number between 0 and 255, "
               "got 300");
}

TEST(DslInterp, BranchSkipPastBackEdge)
{
    expectDiag("kernel k\nreg c : int\nicmp c = c\nbranch c prob 0.5 "
               "skip 9\n",
               4, 1, "branch skip runs past the loop back-edge");
}

TEST(DslInterp, LoopCountRange)
{
    expectDiag("kernel k\nloop 100000 { }\n", 2, 6,
               "loop count must be a whole number between 0 and 65536, "
               "got 100000");
}

TEST(DslInterp, IntRegisterBudget)
{
    expectDiag("kernel k\nloop 40 {\nreg r : int\n}\n", 3, 1,
               "too many int registers (the machine has 32)");
}

TEST(DslInterp, FpRegisterBudget)
{
    expectDiag("kernel k\nloop 40 { reg r : fp }\n", 2, 11,
               "too many fp registers (the machine has 32)");
}

TEST(DslInterp, BodyOpBudget)
{
    expectDiag("kernel k\nreg r : int\nloop 65536 { iadd r = r }\n", 3,
               14, "kernel body exceeds 4096 operations");
}

TEST(DslInterp, UnknownParamOverride)
{
    expectDiag("kernel k\nparam x = 1\nreg r : int\niadd r = r\n", 0, 0,
               "unknown param 'nope' (the kernel does not declare it)",
               {{"nope", 3}});
}

// ---------------------------------------------------------------------
// Scoping rules that must NOT error.
// ---------------------------------------------------------------------

TEST(DslInterp, LoopIterationsGetFreshScopes)
{
    // Redeclaring a name across iterations is legal (each iteration is
    // a new scope); the registers are distinct.
    const Kernel k = dsl::compileKernel(
        "kernel k\nloop 3 {\nreg r : int\niadd r = r\n}\n");
    EXPECT_EQ(k.numIntRegs, 4);  // loop counter + one per iteration
}

TEST(DslInterp, ShadowingAnOuterNameIsAnError)
{
    // Shadowing is rejected outright — an inner `reg r` while an outer
    // `r` is live would silently change which register later
    // statements touch.
    expectDiag("kernel k\nreg r : fp\nloop 2 {\nreg r : int\n}\n", 4, 1,
               "duplicate identifier 'r'");
}

TEST(DslInterp, SiblingScopesMayReuseNames)
{
    // Once a loop body's scope is popped, its names are free again.
    const Kernel k = dsl::compileKernel("kernel k\n"
                                        "loop 2 {\n"
                                        "reg r : int\n"
                                        "iadd r = r\n"
                                        "}\n"
                                        "reg r : fp\n"
                                        "fmov r = r\n");
    EXPECT_EQ(k.numFpRegs, 1);
    EXPECT_EQ(k.numIntRegs, 3);
}

TEST(DslInterp, LoopIndexIsANumber)
{
    const Kernel k = dsl::compileKernel(
        "kernel k\nreg r : int\nloop 4 as i {\nif i % 2 == 0 {\niadd r "
        "= r\n}\n}\n");
    // Iterations 0 and 2 emit; 1 and 3 do not (plus update + backedge).
    EXPECT_EQ(k.ops.size(), 4u);
}

TEST(DslInterp, ReadingTheKernelFileFailsCleanly)
{
    try {
        dsl::readKernelFile("/nonexistent/kernel.mk");
        ADD_FAILURE() << "expected DslError";
    } catch (const dsl::DslError &e) {
        EXPECT_EQ(e.line, 0);
        EXPECT_EQ(e.message,
                  "cannot read kernel file '/nonexistent/kernel.mk'");
    }
}
