/**
 * @file
 * Unit tests for the memory hierarchy: L1 hit/miss behaviour, MSHR
 * merging and exhaustion, port limits, frame conflicts, write-backs,
 * bus occupancy and the miss timing model.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "memory/bus.hh"
#include "memory/memory_system.hh"

using namespace mtdae;

namespace {

SimConfig
memConfig()
{
    SimConfig cfg;          // 64KB direct-mapped, 32B lines, 4 ports,
    cfg.l2Latency = 16;     // 16 MSHRs, 16B/cycle bus
    return cfg;
}

/** Advance @p mem cycle by cycle up to @p target. */
void
advanceTo(MemorySystem &mem, Cycle from, Cycle target)
{
    for (Cycle c = from; c <= target; ++c)
        mem.beginCycle(c);
}

} // namespace

TEST(Bus, FifoReservations)
{
    Bus bus;
    EXPECT_EQ(bus.reserve(10, 2), 12u);   // starts at 10
    EXPECT_EQ(bus.reserve(0, 2), 14u);    // queues behind the first
    EXPECT_EQ(bus.reserve(100, 2), 102u); // idle gap, then transfer
    EXPECT_EQ(bus.busyCycles(), 6u);
}

TEST(Bus, UtilizationOverInterval)
{
    Bus bus;
    bus.resetStats(0);
    bus.reserve(0, 10);
    EXPECT_NEAR(bus.utilization(20), 0.5, 1e-9);
    bus.resetStats(20);
    EXPECT_NEAR(bus.utilization(30), 0.0, 1e-9);
}

TEST(MemorySystem, ColdMissThenHit)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    const MemResult m = mem.load(0x1000, 0);
    ASSERT_TRUE(m.accepted);
    EXPECT_FALSE(m.hit);
    // Unloaded miss: L2 latency (16) + line transfer (2 cycles).
    EXPECT_EQ(m.readyAt, 18u);

    advanceTo(mem, 1, m.readyAt);
    const MemResult h = mem.load(0x1000, m.readyAt);
    ASSERT_TRUE(h.accepted);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.readyAt, m.readyAt + 1);  // 1-cycle hit
}

TEST(MemorySystem, SameLineHitsSameFrame)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.load(0x2000, 0);
    advanceTo(mem, 1, 18);
    // Any address within the 32-byte line hits.
    EXPECT_TRUE(mem.load(0x2000 + 31, 18).hit);
    EXPECT_FALSE(mem.load(0x2000 + 32, 18).hit);  // next line
}

TEST(MemorySystem, SecondaryMissMergesIntoMshr)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    const MemResult a = mem.load(0x3000, 0);
    mem.beginCycle(1);
    const MemResult b = mem.load(0x3008, 1);  // same line
    ASSERT_TRUE(b.accepted);
    EXPECT_FALSE(b.hit);
    EXPECT_TRUE(b.merged);
    EXPECT_EQ(b.readyAt, a.readyAt);  // rides the same fill
    EXPECT_EQ(mem.stats().mergedMisses, 1u);
    // Merged misses are delayed hits for the ratio statistics.
    EXPECT_EQ(mem.stats().loadMiss.num, 1u);
    EXPECT_EQ(mem.stats().loadMiss.den, 2u);
}

TEST(MemorySystem, PortLimitRejectsFifthAccess)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(mem.load(0x4000 + 64 * i, 0).accepted);
    const MemResult r = mem.load(0x8000, 0);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(mem.lastReject(), MemReject::NoPort);
    // Ports recycle the next cycle.
    mem.beginCycle(1);
    EXPECT_TRUE(mem.load(0x8000, 1).accepted);
}

TEST(MemorySystem, MshrExhaustionRejects)
{
    SimConfig cfg = memConfig();
    cfg.mshrs = 2;
    cfg.l1Ports = 8;
    MemorySystem mem(cfg);
    mem.beginCycle(0);
    // Distinct frames (the cache is 64 KB direct-mapped, so keep the
    // low 16 bits distinct) to exercise MSHR capacity, not conflicts.
    EXPECT_TRUE(mem.load(0x10000, 0).miss());
    EXPECT_TRUE(mem.load(0x20040, 0).miss());
    const MemResult r = mem.load(0x30080, 0);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(mem.lastReject(), MemReject::NoMshr);
    EXPECT_EQ(mem.mshrsInUse(), 2u);
    // After the fills land, MSHRs recycle.
    advanceTo(mem, 1, 30);
    EXPECT_TRUE(mem.load(0x30080, 30).accepted);
}

TEST(MemorySystem, FrameConflictDuringPendingFill)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    // 64KB direct-mapped: 0x0 and 0x10000 share frame 0.
    EXPECT_TRUE(mem.load(0x0, 0).miss());
    mem.beginCycle(1);
    const MemResult r = mem.load(0x10000, 1);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(mem.lastReject(), MemReject::Conflict);
    // Once the fill lands, the conflicting line can replace it.
    advanceTo(mem, 2, 19);
    EXPECT_TRUE(mem.load(0x10000, 19).miss());
}

TEST(MemorySystem, DirectMappedEviction)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.load(0x0, 0);
    advanceTo(mem, 1, 20);
    EXPECT_TRUE(mem.load(0x0, 20).hit);
    // Bring in the conflicting line; the original is evicted.
    mem.beginCycle(21);
    EXPECT_TRUE(mem.load(0x10000, 21).miss());
    advanceTo(mem, 22, 60);
    EXPECT_TRUE(mem.load(0x10000, 60).hit);
    mem.beginCycle(61);
    EXPECT_FALSE(mem.load(0x0, 61).hit);
}

TEST(MemorySystem, StoreAllocatesAndDirties)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    const MemResult s = mem.store(0x5000, 0);
    ASSERT_TRUE(s.accepted);
    EXPECT_FALSE(s.hit);  // write-allocate: store miss fetches the line
    EXPECT_EQ(mem.stats().storeMiss.num, 1u);

    // After the fill, evicting the line must write it back.
    advanceTo(mem, 1, 20);
    EXPECT_EQ(mem.stats().writebacks, 0u);
    EXPECT_TRUE(mem.load(0x5000 + 0x10000, 20).miss());
    EXPECT_EQ(mem.stats().writebacks, 1u);
}

TEST(MemorySystem, CleanEvictionDoesNotWriteBack)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.load(0x6000, 0);
    advanceTo(mem, 1, 20);
    (void)mem.load(0x6000 + 0x10000, 20);
    EXPECT_EQ(mem.stats().writebacks, 0u);
}

TEST(MemorySystem, MergedStoreDirtiesTheFill)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.load(0x7000, 0);
    mem.beginCycle(1);
    EXPECT_TRUE(mem.store(0x7008, 1).merged);
    // After the fill lands dirty, eviction writes back.
    advanceTo(mem, 2, 20);
    (void)mem.load(0x7000 + 0x10000, 20);
    EXPECT_EQ(mem.stats().writebacks, 1u);
}

TEST(MemorySystem, BusQueueingDelaysBackToBackMisses)
{
    SimConfig cfg = memConfig();
    cfg.l1Ports = 8;
    MemorySystem mem(cfg);
    mem.beginCycle(0);
    const MemResult a = mem.load(0x100000, 0);
    const MemResult b = mem.load(0x200040, 0);
    const MemResult c = mem.load(0x300080, 0);
    // The L2 is multibanked (no serialisation) but the bus carries one
    // 2-cycle line transfer at a time.
    EXPECT_EQ(a.readyAt, 18u);
    EXPECT_EQ(b.readyAt, 20u);
    EXPECT_EQ(c.readyAt, 22u);
}

TEST(MemorySystem, WritebackOccupiesBusBeforeFill)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.store(0x0, 0);  // will be dirty after its fill
    advanceTo(mem, 1, 20);
    // Evicting the dirty line: the write-back transfer [20,22) overlaps
    // the L2 access latency, so the fill still lands at 20 + 16 + 2 —
    // but the bus carried both transfers.
    const std::uint64_t busy_before = 4;  // store-miss fill earlier
    const MemResult f = mem.load(0x10000, 20);
    ASSERT_TRUE(f.miss());
    EXPECT_EQ(f.readyAt, 20 + 16 + 2u);
    EXPECT_EQ(mem.stats().writebacks, 1u);
    (void)busy_before;
}

TEST(MemorySystem, LatencyScalesWithL2Parameter)
{
    for (const std::uint32_t lat : {1u, 64u, 256u}) {
        SimConfig cfg = memConfig();
        cfg.l2Latency = lat;
        MemorySystem mem(cfg);
        mem.beginCycle(0);
        EXPECT_EQ(mem.load(0x9000, 0).readyAt, lat + 2);
    }
}

TEST(MemorySystem, ResetStatsClearsCounters)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.load(0xa000, 0);
    (void)mem.store(0xb000, 0);
    mem.resetStats(0);
    EXPECT_EQ(mem.stats().loadMiss.den, 0u);
    EXPECT_EQ(mem.stats().storeMiss.den, 0u);
    EXPECT_EQ(mem.stats().writebacks, 0u);
}

TEST(MemorySystem, MissRatioCombinesLoadsAndStores)
{
    MemorySystem mem(memConfig());
    mem.beginCycle(0);
    (void)mem.load(0xc000, 0);   // miss
    advanceTo(mem, 1, 20);
    (void)mem.load(0xc000, 20);  // hit
    (void)mem.store(0xc008, 20); // hit
    (void)mem.store(0xd000, 20); // miss
    EXPECT_NEAR(mem.stats().missRatio(), 0.5, 1e-9);
    EXPECT_NEAR(mem.stats().loadMiss.value(), 0.5, 1e-9);
    EXPECT_NEAR(mem.stats().storeMiss.value(), 0.5, 1e-9);
}
