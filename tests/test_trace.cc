/**
 * @file
 * Unit tests for trace expansion: address stream patterns, branch
 * outcomes, trip counts, hammock skips, determinism and the suite-mix
 * interleaving.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.hh"
#include "workload/spec_fp95.hh"
#include "workload/trace_source.hh"

using namespace mtdae;

namespace {

/** Drain up to @p n instructions from @p src. */
std::vector<TraceInst>
drain(TraceSource &src, std::size_t n)
{
    std::vector<TraceInst> out;
    TraceInst ti;
    while (out.size() < n && src.next(ti))
        out.push_back(ti);
    return out;
}

Kernel
tinyKernel()
{
    KernelBuilder b;
    auto s = b.strided(256, 8);
    const int x = b.ldf(s);
    b.fop(Opcode::FAdd, x, x);
    b.advance(s);
    return b.build("tiny");  // 5 ops with loop update + back-edge
}

} // namespace

TEST(KernelTraceSource, FiniteTripCountTerminates)
{
    KernelTraceSource src(tinyKernel(), 0, 0x1000, 1, 3);
    const auto insts = drain(src, 1000);
    EXPECT_EQ(insts.size(), 5u * 3u);
    EXPECT_EQ(src.emitted(), 15u);
    TraceInst ti;
    EXPECT_FALSE(src.next(ti));
}

TEST(KernelTraceSource, BackedgeTakenUntilLastIteration)
{
    KernelTraceSource src(tinyKernel(), 0, 0x1000, 1, 3);
    const auto insts = drain(src, 1000);
    // The back-edge is the last op of each iteration.
    const TraceInst &first_be = insts[4];
    const TraceInst &last_be = insts[14];
    ASSERT_EQ(first_be.op, Opcode::Br);
    EXPECT_TRUE(first_be.taken);
    EXPECT_TRUE(insts[9].taken);
    EXPECT_FALSE(last_be.taken);
}

TEST(KernelTraceSource, PcsAdvanceByFourAndWrap)
{
    KernelTraceSource src(tinyKernel(), 0, 0x1000, 1, 2);
    const auto insts = drain(src, 1000);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(insts[i].pc, 0x1000u + 4 * i);
        EXPECT_EQ(insts[5 + i].pc, 0x1000u + 4 * i);  // second iteration
    }
}

TEST(KernelTraceSource, StridedAddressesAdvanceAndWrap)
{
    KernelTraceSource src(tinyKernel(), 0x100000, 0x1000, 1, 40);
    const auto insts = drain(src, 1000);
    std::vector<Addr> loads;
    for (const auto &ti : insts)
        if (ti.op == Opcode::LdF)
            loads.push_back(ti.addr);
    ASSERT_GE(loads.size(), 33u);
    for (int i = 0; i < 31; ++i)
        EXPECT_EQ(loads[i + 1], loads[i] + 8);
    // Footprint 256 bytes = 32 elements: wraps back to the base.
    EXPECT_EQ(loads[32], loads[0]);
}

TEST(KernelTraceSource, NegativeStrideWalksBackwards)
{
    KernelBuilder b;
    auto s = b.strided(256, -8);
    const int x = b.ldi(s);
    b.iopInto(Opcode::IAdd, x, x);
    KernelTraceSource src(b.build("neg"), 0x1000000, 0x1000, 1, 10);
    const auto insts = drain(src, 1000);
    std::vector<Addr> loads;
    for (const auto &ti : insts)
        if (ti.op == Opcode::LdI)
            loads.push_back(ti.addr);
    ASSERT_GE(loads.size(), 3u);
    EXPECT_EQ(loads[1], loads[0] + 256 - 8);  // wraps below the base
    EXPECT_EQ(loads[2], loads[1] - 8);
}

TEST(KernelTraceSource, GatherAddressesAlignedAndInRange)
{
    KernelBuilder b;
    const int idx = b.intReg();
    auto g = b.gather(4096, idx, 8);
    const int v = b.ldf(g);
    b.fop(Opcode::FMul, v, v);
    b.iopInto(Opcode::IAdd, idx, idx);
    KernelTraceSource src(b.build("g"), 0x200000, 0x1000, 99, 500);
    const auto insts = drain(src, 5000);
    Addr base = ~Addr(0);
    for (const auto &ti : insts)
        if (ti.op == Opcode::LdF)
            base = std::min(base, ti.addr);
    int seen = 0;
    for (const auto &ti : insts) {
        if (ti.op != Opcode::LdF)
            continue;
        ++seen;
        EXPECT_EQ((ti.addr - base) % 8, 0u);
        EXPECT_LT(ti.addr - base, 4096u);
    }
    EXPECT_GE(seen, 400);
}

TEST(KernelTraceSource, TakenHammockSkipsOps)
{
    KernelBuilder b;
    const int c = b.intReg();
    b.iopInto(Opcode::ICmp, c, c);
    b.br(c, 1.0f, 2);  // always taken: always skips the two FP ops
    const int x = b.fpReg();
    b.fopInto(Opcode::FAdd, x, x, x);
    b.fopInto(Opcode::FMul, x, x, x);
    b.iopInto(Opcode::IAdd, c, c);
    KernelTraceSource src(b.build("skip"), 0, 0x1000, 1, 5);
    const auto insts = drain(src, 1000);
    for (const auto &ti : insts) {
        EXPECT_NE(ti.op, Opcode::FAdd);
        EXPECT_NE(ti.op, Opcode::FMul);
    }
    // 4 non-skipped ops per iteration (icmp, br, iadd, loop) + back-edge.
    EXPECT_EQ(insts.size(), 5u * 5u);
}

TEST(KernelTraceSource, NeverTakenHammockKeepsOps)
{
    KernelBuilder b;
    const int c = b.intReg();
    b.iopInto(Opcode::ICmp, c, c);
    b.br(c, 0.0f, 1);
    const int x = b.fpReg();
    b.fopInto(Opcode::FAdd, x, x, x);
    KernelTraceSource src(b.build("noskip"), 0, 0x1000, 1, 4);
    const auto insts = drain(src, 1000);
    int fadds = 0;
    for (const auto &ti : insts)
        fadds += ti.op == Opcode::FAdd;
    EXPECT_EQ(fadds, 4);
}

TEST(KernelTraceSource, DeterministicForSameSeed)
{
    const Kernel k = buildSpecFp95("wave5");
    KernelTraceSource a(k, 0x4000000, 0x1000, 5, 1u << 20);
    KernelTraceSource b(k, 0x4000000, 0x1000, 5, 1u << 20);
    const auto ia = drain(a, 2000);
    const auto ib = drain(b, 2000);
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].op, ib[i].op);
        EXPECT_EQ(ia[i].addr, ib[i].addr);
        EXPECT_EQ(ia[i].taken, ib[i].taken);
    }
}

TEST(KernelTraceSource, DifferentSeedsChangeGathers)
{
    const Kernel k = buildSpecFp95("su2cor");
    KernelTraceSource a(k, 0x4000000, 0x1000, 5, 1u << 20);
    KernelTraceSource b(k, 0x4000000, 0x1000, 6, 1u << 20);
    const auto ia = drain(a, 3000);
    const auto ib = drain(b, 3000);
    int diff = 0;
    for (std::size_t i = 0; i < ia.size(); ++i)
        diff += ia[i].addr != ib[i].addr;
    EXPECT_GT(diff, 0);
}

TEST(SequenceTraceSource, RotatesThroughBenchmarksBySegments)
{
    auto mix = makeSuiteMixSource(0, 1, 100);
    std::map<std::string, int> seen;
    TraceInst ti;
    for (int i = 0; i < 100 * 10 * 2; ++i) {
        ASSERT_TRUE(mix->next(ti));
        seen[mix->currentBenchmark()] += 1;
    }
    // Two full rotations: every benchmark appears.
    EXPECT_EQ(seen.size(), specFp95Names().size());
}

TEST(SequenceTraceSource, ThreadsStartAtDifferentBenchmarks)
{
    auto t0 = makeSuiteMixSource(0, 1);
    auto t1 = makeSuiteMixSource(1, 1);
    TraceInst ti;
    ASSERT_TRUE(t0->next(ti));
    ASSERT_TRUE(t1->next(ti));
    EXPECT_EQ(t0->currentBenchmark(), "tomcatv");
    EXPECT_EQ(t1->currentBenchmark(), "swim");
}

TEST(SequenceTraceSource, DisjointRegionsPerThreadAndBenchmark)
{
    // Thread/benchmark regions must not overlap, or "independent
    // threads" would false-share data.
    auto s0 = makeSpecFp95Source("tomcatv", 0, 1);
    auto s1 = makeSpecFp95Source("tomcatv", 1, 1);
    auto s2 = makeSpecFp95Source("swim", 0, 1);
    Addr min0 = ~Addr(0), max0 = 0, min1 = ~Addr(0), max1 = 0;
    Addr min2 = ~Addr(0), max2 = 0;
    TraceInst ti;
    for (int i = 0; i < 5000; ++i) {
        if (s0->next(ti) && isMem(ti.op)) {
            min0 = std::min(min0, ti.addr);
            max0 = std::max(max0, ti.addr);
        }
        if (s1->next(ti) && isMem(ti.op)) {
            min1 = std::min(min1, ti.addr);
            max1 = std::max(max1, ti.addr);
        }
        if (s2->next(ti) && isMem(ti.op)) {
            min2 = std::min(min2, ti.addr);
            max2 = std::max(max2, ti.addr);
        }
    }
    EXPECT_TRUE(max0 < min1 || max1 < min0);
    EXPECT_TRUE(max0 < min2 || max2 < min0);
}

TEST(SequenceTraceSource, ExhaustsWhenAllSourcesEnd)
{
    std::vector<std::unique_ptr<KernelTraceSource>> sources;
    sources.push_back(std::make_unique<KernelTraceSource>(
        tinyKernel(), 0, 0x1000, 1, 2));
    sources.push_back(std::make_unique<KernelTraceSource>(
        tinyKernel(), 1 << 20, 0x2000, 2, 3));
    SequenceTraceSource mix(std::move(sources), 7);
    const auto insts = drain(mix, 10000);
    EXPECT_EQ(insts.size(), 5u * 2 + 5u * 3);
}
