/**
 * @file
 * Unit tests for the gshare predictor and the predictor factory.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

using namespace mtdae;

TEST(Gshare, LearnsStableDirections)
{
    Gshare g(1024, 8);
    for (int i = 0; i < 64; ++i)
        g.update(0x100, true);
    EXPECT_TRUE(g.predict(0x100));
}

TEST(Gshare, LearnsAlternationThroughHistory)
{
    // A strictly alternating branch is mispredicted ~50% by a bimodal
    // table but learned by gshare once each history pattern maps to its
    // own counter.
    Gshare g(4096, 8);
    bool dir = false;
    for (int i = 0; i < 2000; ++i, dir = !dir)
        g.update(0x200, dir);
    g.resetStats();
    int wrong = 0;
    for (int i = 0; i < 400; ++i, dir = !dir)
        wrong += !g.update(0x200, dir);
    EXPECT_LT(wrong, 40);  // < 10% after training

    Bht bimodal(4096);
    for (int i = 0; i < 2000; ++i, dir = !dir)
        bimodal.update(0x200, dir);
    bimodal.resetStats();
    int bimodal_wrong = 0;
    for (int i = 0; i < 400; ++i, dir = !dir)
        bimodal_wrong += !bimodal.update(0x200, dir);
    EXPECT_GT(bimodal_wrong, 100);  // bimodal cannot learn it
}

TEST(Gshare, TracksMispredictRate)
{
    Gshare g(1024, 4);
    for (int i = 0; i < 100; ++i)
        g.update(0x300, true);
    EXPECT_EQ(g.resolved(), 100u);
    EXPECT_LT(g.mispredictRate(), 0.1);
}

TEST(GshareDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(Gshare(100, 8), "power of two");
    EXPECT_DEATH(Gshare(1024, 0), "history");
}

TEST(PredictorFactory, BuildsTheConfiguredKind)
{
    SimConfig cfg;
    cfg.predictor = SimConfig::PredictorKind::Bimodal;
    auto p = makePredictor(cfg);
    ASSERT_NE(dynamic_cast<BimodalPredictor *>(p.get()), nullptr);

    cfg.predictor = SimConfig::PredictorKind::Gshare;
    auto q = makePredictor(cfg);
    ASSERT_NE(dynamic_cast<GsharePredictor *>(q.get()), nullptr);
}

TEST(PredictorFactory, PredictorsShareTheInterface)
{
    SimConfig cfg;
    for (const auto kind : {SimConfig::PredictorKind::Bimodal,
                            SimConfig::PredictorKind::Gshare}) {
        cfg.predictor = kind;
        auto p = makePredictor(cfg);
        for (int i = 0; i < 8; ++i)
            p->update(0x40, true);
        EXPECT_TRUE(p->predict(0x40));
        p->resetStats();
        EXPECT_DOUBLE_EQ(p->mispredictRate(), 0.0);
    }
}
