/**
 * @file
 * Doc-drift gate: README.md's experiment table and the `mtdae list`
 * registry must name exactly the same experiments, in both directions,
 * so a new experiment cannot ship undocumented and the README cannot
 * advertise a subcommand that no longer exists.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "harness/cli.hh"

namespace mtdae {
namespace {

std::string
readmeText()
{
    const std::string path = std::string(MTDAE_SOURCE_DIR) + "/README.md";
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/**
 * Experiment names from README.md: the first backtick-quoted token of
 * each table row between the "### Experiments" heading and the next
 * heading.
 */
std::set<std::string>
readmeExperiments()
{
    std::set<std::string> names;
    std::istringstream is(readmeText());
    std::string line;
    bool in_section = false;
    bool in_table = false;
    while (std::getline(is, line)) {
        if (line.rfind("### Experiments", 0) == 0) {
            in_section = true;
            continue;
        }
        if (!in_section)
            continue;
        const bool table_line = line.rfind("|", 0) == 0;
        if (in_table && !table_line)
            break;  // only the section's first table lists experiments
        if (table_line)
            in_table = true;
        if (line.rfind("| `", 0) != 0)
            continue;  // header / separator row
        const std::size_t open = line.find('`');
        const std::size_t close = line.find('`', open + 1);
        if (close != std::string::npos)
            names.insert(line.substr(open + 1, close - open - 1));
    }
    return names;
}

std::set<std::string>
registeredExperiments()
{
    std::set<std::string> names;
    for (const auto &e : cli::experiments())
        names.insert(e.name);
    return names;
}

TEST(DocDrift, ReadmeHasAnExperimentTable)
{
    EXPECT_FALSE(readmeExperiments().empty())
        << "README.md lost its '### Experiments' table";
}

TEST(DocDrift, EveryRegisteredExperimentIsInTheReadmeTable)
{
    const auto documented = readmeExperiments();
    for (const auto &name : registeredExperiments())
        EXPECT_TRUE(documented.count(name))
            << "'" << name << "' is registered (mtdae list) but "
            << "missing from README.md's experiment table";
}

TEST(DocDrift, EveryReadmeTableRowNamesARegisteredExperiment)
{
    const auto registered = registeredExperiments();
    for (const auto &name : readmeExperiments())
        EXPECT_TRUE(registered.count(name))
            << "README.md documents '" << name
            << "' but mtdae does not register it";
}

TEST(DocDrift, ReadmeDocumentsThePolicyFlags)
{
    // The headline knobs of the arbitration layer must stay findable.
    const std::string text = readmeText();
    EXPECT_NE(text.find("--fetch-policy"), std::string::npos);
    EXPECT_NE(text.find("--issue-policy"), std::string::npos);
    EXPECT_NE(text.find("ablate-policy"), std::string::npos);
}

} // namespace
} // namespace mtdae
