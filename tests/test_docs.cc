/**
 * @file
 * Doc-drift gates: README.md's experiment table and the `mtdae list`
 * registry must name exactly the same experiments, and
 * docs/POLICIES.md's policy-reference table and `allPolicies()` must
 * name exactly the same policies — in both directions each — so a new
 * experiment or policy cannot ship undocumented and the docs cannot
 * advertise one that no longer exists. The same regime covers the
 * kernel DSL: docs/KERNEL_DSL.md's keyword table must equal
 * dsl::dslKeywords() and its corpus table must equal the actual
 * examples/kernels/ directory listing, both directions each.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/config.hh"
#include "harness/cli.hh"
#include "workload/dsl/lexer.hh"

namespace mtdae {
namespace {

std::string
docText(const std::string &relpath)
{
    const std::string path =
        std::string(MTDAE_SOURCE_DIR) + "/" + relpath;
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::string
readmeText()
{
    return docText("README.md");
}

std::string
policiesText()
{
    return docText("docs/POLICIES.md");
}

/**
 * First backtick-quoted token of each table row of the first table
 * after the @p heading line in @p text (the README-experiments /
 * POLICIES-reference table shape).
 */
std::set<std::string>
tableNames(const std::string &text, const std::string &heading)
{
    std::set<std::string> names;
    std::istringstream is(text);
    std::string line;
    bool in_section = false;
    bool in_table = false;
    while (std::getline(is, line)) {
        if (line.rfind(heading, 0) == 0) {
            in_section = true;
            continue;
        }
        if (!in_section)
            continue;
        const bool table_line = line.rfind("|", 0) == 0;
        if (in_table && !table_line)
            break;  // only the section's first table lists names
        if (table_line)
            in_table = true;
        if (line.rfind("| `", 0) != 0)
            continue;  // header / separator row
        const std::size_t open = line.find('`');
        const std::size_t close = line.find('`', open + 1);
        if (close != std::string::npos)
            names.insert(line.substr(open + 1, close - open - 1));
    }
    return names;
}

std::set<std::string>
readmeExperiments()
{
    return tableNames(readmeText(), "### Experiments");
}

std::set<std::string>
policiesTableNames()
{
    return tableNames(policiesText(), "## Policy reference");
}

std::set<std::string>
registeredExperiments()
{
    std::set<std::string> names;
    for (const auto &e : cli::experiments())
        names.insert(e.name);
    return names;
}

TEST(DocDrift, ReadmeHasAnExperimentTable)
{
    EXPECT_FALSE(readmeExperiments().empty())
        << "README.md lost its '### Experiments' table";
}

TEST(DocDrift, EveryRegisteredExperimentIsInTheReadmeTable)
{
    const auto documented = readmeExperiments();
    for (const auto &name : registeredExperiments())
        EXPECT_TRUE(documented.count(name))
            << "'" << name << "' is registered (mtdae list) but "
            << "missing from README.md's experiment table";
}

TEST(DocDrift, EveryReadmeTableRowNamesARegisteredExperiment)
{
    const auto registered = registeredExperiments();
    for (const auto &name : readmeExperiments())
        EXPECT_TRUE(registered.count(name))
            << "README.md documents '" << name
            << "' but mtdae does not register it";
}

TEST(DocDrift, ReadmeDocumentsThePolicyFlags)
{
    // The headline knobs of the arbitration layer must stay findable.
    const std::string text = readmeText();
    EXPECT_NE(text.find("--fetch-policy"), std::string::npos);
    EXPECT_NE(text.find("--issue-policy"), std::string::npos);
    EXPECT_NE(text.find("ablate-policy"), std::string::npos);
}

TEST(DocDrift, ReadmeDocumentsTheGatingLayer)
{
    // The gating tentpole's user surface: the experiment (also locked
    // by the table tests above, since ablate-gating is registered),
    // the policy names, and the cookbook section.
    const std::string text = readmeText();
    EXPECT_NE(text.find("ablate-gating"), std::string::npos);
    EXPECT_NE(text.find("`stall`"), std::string::npos);
    EXPECT_NE(text.find("`flush`"), std::string::npos);
    EXPECT_NE(text.find("`split`"), std::string::npos);
    EXPECT_NE(text.find("Choosing a policy"), std::string::npos);
    EXPECT_NE(text.find("docs/POLICIES.md"), std::string::npos);
}

TEST(DocDrift, ReadmeDocumentsTheQosLayer)
{
    // The QoS tentpole's user surface: the weight and threshold flags,
    // the policy names, and the benchmark script. (ablate-qos itself
    // is locked by the registry <-> experiment-table tests above.)
    const std::string text = readmeText();
    EXPECT_NE(text.find("--thread-weights"), std::string::npos);
    EXPECT_NE(text.find("--adaptive-threshold"), std::string::npos);
    EXPECT_NE(text.find("`weighted`"), std::string::npos);
    EXPECT_NE(text.find("`adaptive`"), std::string::npos);
    EXPECT_NE(text.find("fair_hmean"), std::string::npos);
    EXPECT_NE(text.find("bench_qos.sh"), std::string::npos);
}

TEST(DocDrift, PoliciesDocCoversTheQosAndStabilityContract)
{
    // docs/POLICIES.md must keep the QoS section and the veto-stability
    // contract findable: these document the invariants test_qos.cc and
    // the idle fast-forward byte-identity suites enforce.
    const std::string text = policiesText();
    EXPECT_NE(text.find("## QoS weights and fairness metrics"),
              std::string::npos);
    EXPECT_NE(text.find("vetoStable"), std::string::npos);
    EXPECT_NE(text.find("missWindowUniform"), std::string::npos);
    EXPECT_NE(text.find("--adaptive-threshold"), std::string::npos);
    EXPECT_NE(text.find("fair_maxmin"), std::string::npos);
}

TEST(DocDrift, PoliciesDocHasAReferenceTable)
{
    EXPECT_FALSE(policiesTableNames().empty())
        << "docs/POLICIES.md lost its '## Policy reference' table";
}

TEST(DocDrift, EveryRegisteredPolicyIsInThePoliciesTable)
{
    const auto documented = policiesTableNames();
    for (const PolicyKind k : allPolicies())
        EXPECT_TRUE(documented.count(policyName(k)))
            << "policy '" << policyName(k) << "' (allPolicies) is "
            << "missing from docs/POLICIES.md's reference table";
}

TEST(DocDrift, EveryPoliciesTableRowNamesARegisteredPolicy)
{
    std::set<std::string> registered;
    for (const PolicyKind k : allPolicies())
        registered.insert(policyName(k));
    for (const auto &name : policiesTableNames())
        EXPECT_TRUE(registered.count(name))
            << "docs/POLICIES.md documents policy '" << name
            << "' but allPolicies() does not register it";
}

TEST(DocDrift, PoliciesDocCoversTheContracts)
{
    // The sections the policy layer's API guide exists to provide.
    const std::string text = policiesText();
    EXPECT_NE(text.find("mayFetch"), std::string::npos);
    EXPECT_NE(text.find("shouldFlush"), std::string::npos);
    EXPECT_NE(text.find("determinism contract"), std::string::npos);
    EXPECT_NE(text.find("iqOccupancyWindow"), std::string::npos);
    EXPECT_NE(text.find("Writing your own policy"), std::string::npos);
}

TEST(DocDrift, ArchitectureDocTracksTheGatingHooks)
{
    const std::string text = docText("docs/ARCHITECTURE.md");
    EXPECT_NE(text.find("mayFetch"), std::string::npos);
    EXPECT_NE(text.find("shouldFlush"), std::string::npos);
    EXPECT_NE(text.find("`split`"), std::string::npos);
    EXPECT_NE(text.find("ablate-gating"), std::string::npos);
}

// ---------------------------------------------------------------------
// Kernel-DSL documentation.
// ---------------------------------------------------------------------

std::string
dslDocText()
{
    return docText("docs/KERNEL_DSL.md");
}

std::set<std::string>
corpusKernelFiles()
{
    const std::filesystem::path dir =
        std::filesystem::path(MTDAE_SOURCE_DIR) / "examples" / "kernels";
    std::set<std::string> names;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".mk")
            names.insert(entry.path().stem().string());
    return names;
}

TEST(DocDrift, DslDocHasAKeywordTable)
{
    EXPECT_FALSE(tableNames(dslDocText(), "### Keywords").empty())
        << "docs/KERNEL_DSL.md lost its '### Keywords' table";
}

TEST(DocDrift, EveryDslKeywordIsInTheDocTable)
{
    const auto documented = tableNames(dslDocText(), "### Keywords");
    for (const auto &word : dsl::dslKeywords())
        EXPECT_TRUE(documented.count(word))
            << "DSL keyword '" << word << "' (dslKeywords) is missing "
            << "from docs/KERNEL_DSL.md's keyword table";
}

TEST(DocDrift, EveryDslDocKeywordRowIsAReservedWord)
{
    for (const auto &word : tableNames(dslDocText(), "### Keywords"))
        EXPECT_TRUE(dsl::isDslKeyword(word))
            << "docs/KERNEL_DSL.md documents keyword '" << word
            << "' but the lexer does not reserve it";
}

TEST(DocDrift, DslDocListsTheWholeKernelCorpus)
{
    const auto documented = tableNames(dslDocText(), "## Kernel corpus");
    for (const auto &name : corpusKernelFiles())
        EXPECT_TRUE(documented.count(name))
            << "examples/kernels/" << name << ".mk exists but is "
            << "missing from docs/KERNEL_DSL.md's corpus table";
}

TEST(DocDrift, EveryDslDocCorpusRowHasAKernelFile)
{
    const auto files = corpusKernelFiles();
    EXPECT_FALSE(files.empty());
    for (const auto &name : tableNames(dslDocText(), "## Kernel corpus"))
        EXPECT_TRUE(files.count(name))
            << "docs/KERNEL_DSL.md's corpus table lists '" << name
            << "' but examples/kernels/" << name << ".mk does not exist";
}

TEST(DocDrift, DslDocCoversTheContracts)
{
    // The sections the DSL guide exists to provide: grammar, sweepable
    // params, the determinism promise, and the worked example.
    const std::string text = dslDocText();
    EXPECT_NE(text.find("```ebnf"), std::string::npos);
    EXPECT_NE(text.find("--kernel-file"), std::string::npos);
    EXPECT_NE(text.find("--kernel-param"), std::string::npos);
    EXPECT_NE(text.find("byte-identical"), std::string::npos);
    EXPECT_NE(text.find("Worked example: pointer chase"), std::string::npos);
    EXPECT_NE(text.find("chain("), std::string::npos);
}

TEST(DocDrift, ReadmeDocumentsTheDslSurface)
{
    // ablate-dsl itself is locked by the experiment-table tests above;
    // the flags and the doc pointer must stay findable too.
    const std::string text = readmeText();
    EXPECT_NE(text.find("--kernel-file"), std::string::npos);
    EXPECT_NE(text.find("--kernel-param"), std::string::npos);
    EXPECT_NE(text.find("docs/KERNEL_DSL.md"), std::string::npos);
    EXPECT_NE(text.find("examples/kernels"), std::string::npos);
}

} // namespace
} // namespace mtdae
