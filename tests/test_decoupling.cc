/**
 * @file
 * The paper's core claims as tests: decoupling hides memory latency,
 * disabling the queues exposes it, loss-of-decoupling events break the
 * slip, and the effect holds across the whole latency sweep.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"

using namespace mtdae;
using namespace mtdae::test;

namespace {

RunResult
runKernel(const Kernel &k, std::uint32_t threads, bool decoupled,
          std::uint32_t lat, std::uint64_t insts = 40000)
{
    SimConfig cfg = testConfig(threads, decoupled, lat);
    cfg = cfg.scaledForLatency(lat);
    cfg.numThreads = threads;
    cfg.decoupled = decoupled;
    cfg.warmupInsts = 5000;
    Simulator sim = makeSim(cfg, k);
    return sim.run(insts);
}

} // namespace

class LatencySweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LatencySweep, DecoupledStreamingHidesAlmostEverything)
{
    const std::uint32_t lat = GetParam();
    const RunResult r = runKernel(streamingKernel(), 1, true, lat);
    // Paper Figure 1-a: >96% of the FP-load miss latency is hidden.
    EXPECT_LT(r.perceivedFp, 0.05 * (lat + 2)) << "lat=" << lat;
    EXPECT_GT(r.fpMisses, 100u);
}

TEST_P(LatencySweep, NonDecoupledPerceivesTheLatency)
{
    const std::uint32_t lat = GetParam();
    if (lat < 16)
        GTEST_SKIP() << "short latencies hide in the pipeline anyway";
    const RunResult r = runKernel(streamingKernel(), 1, false, lat);
    // With the queues disabled the in-order stream eats most of the
    // miss latency (paper Figure 4-a).
    EXPECT_GT(r.perceivedFp, 0.3 * lat) << "lat=" << lat;
}

TEST_P(LatencySweep, DecouplingBeatsNonDecoupledIpc)
{
    const std::uint32_t lat = GetParam();
    const RunResult dec = runKernel(streamingKernel(), 1, true, lat);
    const RunResult nodec = runKernel(streamingKernel(), 1, false, lat);
    EXPECT_GT(dec.ipc, nodec.ipc) << "lat=" << lat;
    if (lat >= 32) {
        // The gap widens sharply with latency.
        EXPECT_GT(dec.ipc, 1.5 * nodec.ipc) << "lat=" << lat;
    }
}

INSTANTIATE_TEST_SUITE_P(PaperLatencies, LatencySweep,
                         ::testing::Values(1, 16, 32, 64, 128, 256));

TEST(Decoupling, FlatterIpcCurveThanNonDecoupled)
{
    // Paper Figure 4-c: multithreading raises the curves, decoupling
    // flattens them. Relative loss from lat=1 to lat=128 must be far
    // smaller when decoupled.
    const RunResult d1 = runKernel(streamingKernel(), 1, true, 1);
    const RunResult d128 = runKernel(streamingKernel(), 1, true, 128);
    const RunResult n1 = runKernel(streamingKernel(), 1, false, 1);
    const RunResult n128 = runKernel(streamingKernel(), 1, false, 128);
    const double loss_dec = 1.0 - d128.ipc / d1.ipc;
    const double loss_nodec = 1.0 - n128.ipc / n1.ipc;
    EXPECT_LT(loss_dec, 0.25);
    EXPECT_GT(loss_nodec, 0.60);
}

TEST(Decoupling, SlipIsBoundedByTheInstructionQueue)
{
    // With a 1-entry EP Instruction Queue the AP cannot run ahead:
    // behaviour approaches the non-decoupled machine.
    SimConfig tiny = testConfig(1, true, 128);
    tiny.iqEntries = 1;
    SimConfig full = testConfig(1, true, 128);
    full = full.scaledForLatency(128);
    full.numThreads = 1;

    Simulator s_tiny = makeSim(tiny, streamingKernel());
    Simulator s_full = makeSim(full, streamingKernel());
    const RunResult r_tiny = s_tiny.run(30000);
    const RunResult r_full = s_full.run(30000);
    EXPECT_GT(r_tiny.perceivedFp, 10 * (r_full.perceivedFp + 0.1));
    EXPECT_GT(r_full.ipc, r_tiny.ipc);
}

TEST(Decoupling, IntegerLoadChainsAreNotHelped)
{
    // Integer loads immediately consumed by the AP stall it regardless
    // of decoupling (paper: int-load hiding relies on the compiler).
    const RunResult dec =
        runKernel(intChaseKernel(), 1, true, 64, 20000);
    const std::uint32_t full = 64 + 2;
    EXPECT_GT(dec.perceivedInt, 0.8 * full);
}

TEST(Decoupling, FpBranchesBreakTheSlip)
{
    // Loss-of-decoupling: a per-iteration FP-conditional branch forces
    // the AP to wait for the EP, exposing the miss latency even in
    // decoupled mode.
    const RunResult stream = runKernel(streamingKernel(), 1, true, 64);
    const RunResult lod = runKernel(lodKernel(), 1, true, 64, 20000);
    EXPECT_GT(lod.perceivedFp, 10 * (stream.perceivedFp + 0.1));
}

TEST(Decoupling, NonDecoupledGateIssuesInProgramOrder)
{
    // In non-decoupled mode a thread never has more than one unit
    // running ahead: verified indirectly — with queues disabled, the
    // same kernel at the same latency has (weakly) lower IPC, and the
    // decoupled advantage exists even at latency 1 thanks to the EP
    // queue absorbing FU latency.
    const RunResult dec = runKernel(streamingKernel(), 1, true, 1);
    const RunResult nodec = runKernel(streamingKernel(), 1, false, 1);
    EXPECT_GE(dec.ipc, nodec.ipc);
}

TEST(Decoupling, MultithreadingAloneHelpsLittleWithLatency)
{
    // Paper Figure 4-a: multithreading barely reduces the perceived
    // latency of a non-decoupled machine (it adds throughput instead).
    const RunResult n1 = runKernel(streamingKernel(), 1, false, 128);
    const RunResult n4 = runKernel(streamingKernel(), 4, false, 128,
                                   120000);
    EXPECT_GT(n4.perceivedAll, 0.4 * n1.perceivedAll);
    // Throughput does not collapse, but the shared MSHRs and L1 keep
    // four non-decoupled threads from scaling at this latency.
    EXPECT_GT(n4.ipc, 0.5 * n1.ipc);
}

TEST(Decoupling, DecoupledNeedsFewerThreadsForSameIpc)
{
    // Paper Figure 5 / Section 3.3: the decoupled machine with few
    // threads beats the non-decoupled machine with many.
    const RunResult d2 = runKernel(streamingKernel(), 2, true, 64,
                                   60000);
    const RunResult n6 = runKernel(streamingKernel(), 6, false, 64,
                                   120000);
    EXPECT_GT(d2.ipc, n6.ipc);
}
