/**
 * @file
 * Tests of the per-stage profiling layer (src/core/profile.hh): the
 * accounting invariant (stage buckets tile the stepped wall time
 * exactly), the off-by-default contract, and the byte-identity of
 * results and CLI output with and without --profile.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/cli.hh"
#include "tests/test_util.hh"

using namespace mtdae;
using namespace mtdae::test;

namespace {

/** Every simulated-behaviour field of two RunResults must coincide;
 *  the wall-clock profile is deliberately excluded. */
void
expectSameSimulation(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.perceivedFp, b.perceivedFp);
    EXPECT_EQ(a.perceivedInt, b.perceivedInt);
    EXPECT_EQ(a.perceivedAll, b.perceivedAll);
    EXPECT_EQ(a.fpMisses, b.fpMisses);
    EXPECT_EQ(a.intMisses, b.intMisses);
    EXPECT_EQ(a.loadMissRatio, b.loadMissRatio);
    EXPECT_EQ(a.storeMissRatio, b.storeMissRatio);
    EXPECT_EQ(a.mergedRatio, b.mergedRatio);
    EXPECT_EQ(a.busUtilization, b.busUtilization);
    EXPECT_EQ(a.mispredictRate, b.mispredictRate);
    for (const SlotUse u : {SlotUse::Useful, SlotUse::WaitMem,
                            SlotUse::WaitFu, SlotUse::Idle,
                            SlotUse::Other}) {
        EXPECT_EQ(a.ap.count(u), b.ap.count(u));
        EXPECT_EQ(a.ep.count(u), b.ep.count(u));
    }
}

} // namespace

TEST(StageProfile, NamesAndIndexingCoverEveryStage)
{
    for (std::size_t s = 0; s < kNumStages; ++s)
        EXPECT_STRNE(stageName(Stage(s)), "?");
    StageProfile p;
    p.ns[std::size_t(Stage::Issue)] = 42;
    EXPECT_EQ(p[Stage::Issue], 42u);
    p.reset();
    EXPECT_EQ(p[Stage::Issue], 0u);
}

TEST(Profile, DisabledByDefaultAndZero)
{
    SimConfig cfg = testConfig(2);
    Simulator sim = makeSim(cfg, streamingKernel());
    EXPECT_FALSE(sim.profilingEnabled());
    const RunResult r = sim.run(5000);
    EXPECT_FALSE(r.profile.enabled);
    EXPECT_EQ(r.profile.totalNs, 0u);
    EXPECT_EQ(r.profile.cycles, 0u);
    for (std::size_t s = 0; s < kNumStages; ++s)
        EXPECT_EQ(r.profile.ns[s], 0u);
}

TEST(Profile, SetProfilingReflectsBuildConfiguration)
{
    SimConfig cfg = testConfig(1);
    Simulator sim = makeSim(cfg, computeKernel());
    EXPECT_EQ(sim.setProfiling(true), kProfileBuilt);
    EXPECT_EQ(sim.profilingEnabled(), kProfileBuilt);
    EXPECT_TRUE(sim.setProfiling(false));
    EXPECT_FALSE(sim.profilingEnabled());
}

TEST(Profile, StageBucketsTileTotalExactly)
{
    if (!kProfileBuilt)
        GTEST_SKIP() << "profiling compiled out";
    SimConfig cfg = testConfig(2);
    cfg.l2Latency = 64;
    Simulator sim = makeSim(cfg, streamingKernel());
    ASSERT_TRUE(sim.setProfiling(true));
    const RunResult r = sim.run(5000);
    ASSERT_TRUE(r.profile.enabled);
    // resetStats clears the profile at the warmup/measure boundary, so
    // the profiled cycles are exactly the measured cycles.
    EXPECT_EQ(r.profile.cycles, r.cycles);
    EXPECT_GT(r.profile.totalNs, 0u);
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kNumStages; ++s)
        sum += r.profile.ns[s];
    // The invariant, not an approximation: every nanosecond of the
    // stepped loop lands in exactly one bucket.
    EXPECT_EQ(sum, r.profile.totalNs);
}

TEST(Profile, ProfiledRunIsByteIdenticalToUnprofiled)
{
    SimConfig cfg = testConfig(2);
    cfg.l2Latency = 64;
    Simulator plain = makeSim(cfg, streamingKernel());
    Simulator profiled = makeSim(cfg, streamingKernel());
    profiled.setProfiling(true);
    expectSameSimulation(plain.run(4000), profiled.run(4000));
}

TEST(ProfileCli, JsonProfileBlockOnlyUnderFlag)
{
    const std::vector<std::string> base = {
        "fig4", "--threads-list=1", "--latencies=1",
        "--insts=500", "--warmup=100", "--quiet", "--json"};
    std::ostringstream out_plain, out_prof, err;
    ASSERT_EQ(cli::runCli(base, out_plain, err), 0);
    if (!kProfileBuilt)
        GTEST_SKIP() << "profiling compiled out";
    std::vector<std::string> prof = base;
    prof.push_back("--profile");
    ASSERT_EQ(cli::runCli(prof, out_prof, err), 0);

    EXPECT_EQ(out_plain.str().find("\"profile\""), std::string::npos);
    EXPECT_NE(out_prof.str().find("\"profile\""), std::string::npos);
    for (std::size_t s = 0; s < kNumStages; ++s)
        EXPECT_NE(out_prof.str().find(std::string("\"") +
                                      stageName(Stage(s)) + "\": "),
                  std::string::npos);
    // The rows themselves are byte-identical: --profile only appends
    // the profile object.
    const std::string plain = out_plain.str();
    const std::string with = out_prof.str();
    const std::string rows_key = "\"rows\": [";
    const auto p0 = plain.find(rows_key);
    const auto p1 = with.find(rows_key);
    ASSERT_NE(p0, std::string::npos);
    ASSERT_NE(p1, std::string::npos);
    const auto e0 = plain.find("  ]", p0);
    const auto e1 = with.find("  ]", p1);
    EXPECT_EQ(plain.substr(p0, e0 - p0), with.substr(p1, e1 - p1));
}

TEST(ProfileCli, CsvOutputByteIdenticalUnderProfile)
{
    if (!kProfileBuilt)
        GTEST_SKIP() << "profiling compiled out";
    const std::string dir_a = ::testing::TempDir() + "mtdae_prof_a";
    const std::string dir_b = ::testing::TempDir() + "mtdae_prof_b";
    const std::vector<std::string> base = {
        "fig4", "--threads-list=1,2", "--latencies=1,16",
        "--insts=500", "--warmup=100", "--quiet"};
    std::ostringstream out, err;
    std::vector<std::string> a = base, b = base;
    a.push_back("--out=" + dir_a);
    b.push_back("--out=" + dir_b);
    b.push_back("--profile");
    ASSERT_EQ(cli::runCli(a, out, err), 0);
    ASSERT_EQ(cli::runCli(b, out, err), 0);
    const std::string csv_a = test::slurp(dir_a + "/fig4.csv");
    const std::string csv_b = test::slurp(dir_b + "/fig4.csv");
    EXPECT_FALSE(csv_a.empty());
    EXPECT_EQ(csv_a, csv_b);
    std::remove((dir_a + "/fig4.csv").c_str());
    std::remove((dir_b + "/fig4.csv").c_str());
}

TEST(ProfileCli, ParseAndHelpKnowTheFlag)
{
    cli::Options opts;
    std::string error;
    ASSERT_TRUE(cli::parseArgs({"fig4", "--profile"}, opts, error))
        << error;
    EXPECT_TRUE(opts.profile);
    ASSERT_TRUE(cli::parseArgs({"fig4"}, opts = {}, error));
    EXPECT_FALSE(opts.profile);
    std::ostringstream os;
    cli::printHelp(os);
    EXPECT_NE(os.str().find("--profile"), std::string::npos);
}

TEST(ProfileCli, WarmStartSweepStillProfilesEveryJob)
{
    if (!kProfileBuilt)
        GTEST_SKIP() << "profiling compiled out";
    // The warm-start path (runMeasured) must profile too, and the
    // aggregate must come out identical in rows either way.
    std::ostringstream out_cold, out_warm, err;
    const std::vector<std::string> base = {
        "ablate-checkpoint", "--threads-list=1,2", "--insts=400",
        "--warmup=200", "--quiet", "--json", "--profile"};
    std::vector<std::string> cold = base, warm = base;
    cold.push_back("--warm-start=0");
    warm.push_back("--warm-start=1");
    ASSERT_EQ(cli::runCli(cold, out_cold, err), 0);
    ASSERT_EQ(cli::runCli(warm, out_warm, err), 0);
    const auto rows_of = [](const std::string &s) {
        const auto b = s.find("\"rows\": [");
        const auto e = s.find("  ]", b);
        return s.substr(b, e - b);
    };
    EXPECT_EQ(rows_of(out_cold.str()), rows_of(out_warm.str()));
    EXPECT_NE(out_cold.str().find("\"profile\""), std::string::npos);
    EXPECT_NE(out_warm.str().find("\"profile\""), std::string::npos);
}
