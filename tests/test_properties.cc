/**
 * @file
 * Property-based tests: randomly generated (but structurally valid)
 * kernels must run to completion on any machine configuration with all
 * conservation and accounting invariants intact.
 */

#include <fstream>
#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/snapshot.hh"
#include "tests/test_util.hh"
#include "workload/dsl/ast.hh"
#include "workload/dsl/interp.hh"
#include "workload/dsl/lexer.hh"
#include "workload/dsl/parser.hh"

using namespace mtdae;
using namespace mtdae::test;

namespace {

/**
 * Generate a random, valid kernel: a few streams, loads, a layer of FP
 * and integer ops on previously defined values, optional store and
 * hammock.
 */
Kernel
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelBuilder b;

    const int n_streams = 1 + int(rng.uniform(3));
    std::vector<KernelBuilder::Stream> streams;
    for (int i = 0; i < n_streams; ++i) {
        const std::uint64_t fp = 4096u << rng.uniform(10);  // 4KB..4MB
        const std::int64_t stride = 4 << rng.uniform(4);    // 4..32
        streams.push_back(b.strided(fp, stride));
    }

    std::vector<int> ints, fps;
    for (const auto &s : streams) {
        if (rng.bernoulli(0.7))
            fps.push_back(b.ldf(s));
        else
            ints.push_back(b.ldi(s));
    }
    if (fps.empty())
        fps.push_back(b.movif(ints.front()));

    const int n_ops = 2 + int(rng.uniform(12));
    for (int i = 0; i < n_ops; ++i) {
        if (rng.bernoulli(0.6)) {
            const int a = fps[rng.uniform(fps.size())];
            const int c = fps[rng.uniform(fps.size())];
            static const Opcode fop[] = {Opcode::FAdd, Opcode::FMul,
                                         Opcode::FSub, Opcode::FDiv};
            if (fps.size() < 24)
                fps.push_back(b.fop(fop[rng.uniform(4)], a, c));
        } else {
            static const Opcode iop[] = {Opcode::IAdd, Opcode::IShift,
                                         Opcode::ILogic, Opcode::IMul};
            if (!ints.empty() && ints.size() < 20) {
                const int a = ints[rng.uniform(ints.size())];
                ints.push_back(b.iop(iop[rng.uniform(4)], a));
            } else {
                ints.push_back(b.iop(Opcode::IAdd,
                                     streams[0].addrReg));
            }
        }
    }

    if (rng.bernoulli(0.5))
        b.stf(streams[rng.uniform(streams.size())],
              fps[rng.uniform(fps.size())]);
    if (rng.bernoulli(0.4)) {
        const int c = b.iop(Opcode::ICmp, streams[0].addrReg);
        b.br(c, float(rng.uniformDouble()), 1);
        b.iopInto(Opcode::IAdd, c, c);
    }
    for (auto &s : streams)
        if (rng.bernoulli(0.8))
            b.advance(s);
    return b.build("random-" + std::to_string(seed));
}

} // namespace

class RandomKernelTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomKernelTest, RunsToCompletionWithInvariants)
{
    const Kernel k = randomKernel(GetParam());
    ASSERT_NO_FATAL_FAILURE(k.validate());

    SimConfig cfg = testConfig(1 + GetParam() % 3);
    cfg.decoupled = GetParam() % 2 == 0;
    cfg.l2Latency = GetParam() % 5 == 0 ? 64 : 16;
    cfg.warmupInsts = 0;

    const std::uint64_t iters = 400;
    Simulator sim = makeSim(cfg, k, iters);
    std::uint64_t steps = 0;
    while (!sim.allDone()) {
        sim.step();
        ASSERT_LT(++steps, 4000000u) << "deadlock in " << k.name;
    }

    // Conservation: every fetched instruction graduates exactly once
    // (the trace is finite and known-length per iteration modulo
    // hammocks, so compare against per-thread emission).
    std::uint64_t expected = 0;
    for (ThreadId t = 0; t < cfg.numThreads; ++t) {
        const auto *src = dynamic_cast<const KernelTraceSource *>(
            sim.context(t).source.get());
        ASSERT_NE(src, nullptr);
        expected += src->emitted();
    }
    EXPECT_EQ(sim.totalGraduated(), expected);

    // Slot accounting covers exactly width x cycles.
    const RunResult r = sim.snapshot();
    EXPECT_EQ(r.ap.total(), r.cycles * cfg.apUnits);
    EXPECT_EQ(r.ep.total(), r.cycles * cfg.epUnits);
    EXPECT_LE(r.ap.count(SlotUse::Useful) + r.ep.count(SlotUse::Useful),
              sim.totalGraduated());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelTest,
                         ::testing::Range(std::uint64_t(1),
                                          std::uint64_t(25)));

class GridTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, bool, std::uint32_t>>
{
};

TEST_P(GridTest, SuiteMixRunsEverywhereOnTheGrid)
{
    const auto [threads, decoupled, lat] = GetParam();
    SimConfig cfg = testConfig(threads, decoupled, lat);
    Simulator sim = makeSim(cfg, streamingKernel());
    const RunResult r = sim.run(15000 * threads);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 8.0);
    EXPECT_GE(r.insts, 15000u * threads);
    EXPECT_LE(r.busUtilization, 1.05);
    EXPECT_GE(r.perceivedAll, 0.0);
    EXPECT_LE(r.perceivedFp, lat + 8.0);
    EXPECT_LE(r.perceivedInt, lat + 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GridTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Bool(),
                       ::testing::Values(1u, 16u, 64u)));

class MshrSweepTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MshrSweepTest, FewerMshrsNeverHelp)
{
    SimConfig cfg = testConfig(2, true, 64);
    cfg.mshrs = GetParam();
    Simulator sim = makeSim(cfg, streamingKernel());
    const double ipc = sim.run(40000).ipc;

    SimConfig big = cfg;
    big.mshrs = 64;
    Simulator sim_big = makeSim(big, streamingKernel());
    const double ipc_big = sim_big.run(40000).ipc;
    EXPECT_GE(ipc_big, 0.98 * ipc) << "mshrs=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Mshrs, MshrSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16));

class CheckpointFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CheckpointFuzzTest, RestoreEquivalenceAtRandomCycles)
{
    // Fuzz the checkpoint engine (src/core/snapshot.hh): a random
    // kernel on a random machine, snapshotted at random cycles, must
    // always restore into a byte-identical continuation. All
    // randomness is derived from the test seed — never wall clock —
    // so every failure replays.
    const std::uint64_t seed = GetParam();
    Rng rng(deriveSeed(0x636b7074, seed));
    const Kernel k = randomKernel(seed);

    SimConfig cfg = testConfig(1 + rng.uniform(3));
    cfg.decoupled = rng.bernoulli(0.7);
    cfg.perfectL2 = rng.bernoulli(0.5);
    cfg.fetchPolicy = fetchPolicies()[rng.uniform(fetchPolicies().size())];
    cfg.issuePolicy = issuePolicies()[rng.uniform(issuePolicies().size())];
    // QoS state must round-trip too: random weights and a random
    // adaptive gate threshold (the registries above already draw the
    // adaptive/weighted policies that consume them).
    if (rng.bernoulli(0.5))
        cfg.threadWeights = {1 + std::uint32_t(rng.uniform(16)),
                             1 + std::uint32_t(rng.uniform(16))};
    cfg.adaptiveMissThreshold = 1 + std::uint32_t(rng.uniform(3));
    cfg.warmupInsts = 0;

    const std::uint64_t iters = 150;
    Simulator ref = makeSim(cfg, k, iters);
    std::uint64_t steps = 0;
    while (!ref.allDone()) {
        ref.step();
        ASSERT_LT(++steps, 4000000u) << "deadlock in " << k.name;
    }
    const auto ref_final = ref.saveSnapshot().toBytes();

    for (int trial = 0; trial < 3; ++trial) {
        const std::uint64_t cycle = rng.uniform(ref.now() + 1);
        Simulator a = makeSim(cfg, k, iters);
        for (std::uint64_t c = 0; c < cycle; ++c)
            a.step();
        const Snapshot snap = a.saveSnapshot();

        // Serialize -> deserialize -> serialize is byte-stable.
        const auto bytes1 = snap.toBytes();
        EXPECT_EQ(Snapshot::fromBytes(bytes1).toBytes(), bytes1);

        // Restore-equivalence: the restored run finishes in the same
        // state as the uninterrupted one, byte for byte.
        Simulator b = makeSim(cfg, k, iters);
        b.restoreSnapshot(snap);
        EXPECT_EQ(b.saveSnapshot().toBytes(), bytes1)
            << k.name << " at cycle " << cycle;
        while (!b.allDone())
            b.step();
        EXPECT_EQ(b.now(), ref.now())
            << k.name << " at cycle " << cycle;
        EXPECT_EQ(b.saveSnapshot().toBytes(), ref_final)
            << k.name << " at cycle " << cycle;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzzTest,
                         ::testing::Range(std::uint64_t(1),
                                          std::uint64_t(17)));

class PortSweepTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PortSweepTest, RunsCorrectlyWithAnyPortCount)
{
    SimConfig cfg = testConfig(2);
    cfg.l1Ports = GetParam();
    Simulator sim = makeSim(cfg, streamingKernel(), 2000);
    while (!sim.allDone())
        sim.step();
    EXPECT_EQ(sim.totalGraduated(),
              2 * streamingKernel().ops.size() * 2000);
}

INSTANTIATE_TEST_SUITE_P(Ports, PortSweepTest,
                         ::testing::Values(1, 2, 4, 8));

class SnapshotCacheFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SnapshotCacheFuzzTest, CachedThreadStatesMatchRecomputation)
{
    // Fuzz the incremental ThreadState cache (Simulator::
    // refreshThreadStates): on a random kernel and machine — gating
    // policies included, since flush mutates fetch state outside the
    // normal stages — every cached snapshot a policy could be served
    // must equal a from-scratch recomputation, every single cycle.
    // Also cross-checks the SAQ word index against the reference
    // linear walk it replaced in the issue stage.
    const std::uint64_t seed = GetParam();
    Rng rng(deriveSeed(0x73636163, seed));
    const Kernel k = randomKernel(seed);

    SimConfig cfg = testConfig(1 + rng.uniform(3));
    cfg.decoupled = rng.bernoulli(0.7);
    cfg.l2Latency = rng.bernoulli(0.5) ? 64 : 16;
    cfg.fetchPolicy =
        fetchPolicies()[rng.uniform(fetchPolicies().size())];
    cfg.issuePolicy =
        issuePolicies()[rng.uniform(issuePolicies().size())];
    cfg.warmupInsts = 0;

    Simulator sim = makeSim(cfg, k, 200);
    std::uint64_t steps = 0;
    while (!sim.allDone()) {
        sim.step();
        ASSERT_LT(++steps, 4000000u) << "deadlock in " << k.name;
        ASSERT_TRUE(sim.threadStateCacheCoherent())
            << k.name << " at cycle " << sim.now();
        for (ThreadId t = 0; t < cfg.numThreads; ++t) {
            const Context &ctx = sim.context(t);
            // A probe seq newer than everything in flight makes the
            // reference walk answer the same question as the index.
            const InstSeq probe = ctx.nextSeq + 1;
            for (const SaqEntry &e : ctx.saq) {
                if (!e.addrValid)
                    continue;
                EXPECT_TRUE(ctx.saqForwardsFast(e.addr));
                EXPECT_EQ(ctx.saqForwardsFast(e.addr),
                          ctx.saqForwards(probe, e.addr));
                const Addr miss = e.addr + 64 * 1024 * 1024;
                EXPECT_EQ(ctx.saqForwardsFast(miss),
                          ctx.saqForwards(probe, miss));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotCacheFuzzTest,
                         ::testing::Range(std::uint64_t(1),
                                          std::uint64_t(21)));

class WindowOracleTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WindowOracleTest, IncrementalWindowsMatchFromScratchRecompute)
{
    // Fuzz the trailing-window statistics (Context::sampleWindows):
    // the incrementally maintained sums and the miss-window uniformity
    // tracker must equal a from-scratch recomputation over the raw
    // sample rings after every single cycle. The uniformity check is
    // the load-bearing one — the adaptive policy's vetoStable() reads
    // it, and a stale bit silently breaks idle fast-forward
    // byte-identity rather than any assertion.
    const std::uint64_t seed = GetParam();
    Rng rng(deriveSeed(0x77696e64, seed));
    const Kernel k = randomKernel(seed);

    SimConfig cfg = testConfig(1 + rng.uniform(3));
    cfg.decoupled = rng.bernoulli(0.7);
    cfg.fetchPolicy = PolicyKind::Adaptive;
    cfg.adaptiveMissThreshold = 1 + std::uint32_t(rng.uniform(3));
    if (rng.bernoulli(0.5))
        cfg.threadWeights = {1 + std::uint32_t(rng.uniform(16)),
                             1 + std::uint32_t(rng.uniform(16))};
    cfg.warmupInsts = 0;
    cfg.validate();

    Simulator sim = makeSim(cfg, k, 150);
    std::uint64_t steps = 0;
    while (!sim.allDone()) {
        sim.step();
        ASSERT_LT(++steps, 4000000u) << "deadlock in " << k.name;
        for (ThreadId t = 0; t < cfg.numThreads; ++t) {
            const Context &ctx = sim.context(t);
            std::uint32_t iq_sum = 0, miss_sum = 0;
            bool uniform = true;
            for (const std::uint32_t s : ctx.iqSamples)
                iq_sum += s;
            for (const std::uint32_t s : ctx.missSamples) {
                miss_sum += s;
                uniform &= s == ctx.perceived.outstanding();
            }
            ASSERT_EQ(ctx.iqWindowSum, iq_sum)
                << k.name << " t" << t << " at cycle " << sim.now();
            ASSERT_EQ(ctx.missWindowSum, miss_sum)
                << k.name << " t" << t << " at cycle " << sim.now();
            const ThreadState s = ctx.policyState(cfg, sim.now());
            ASSERT_EQ(s.missWindow, miss_sum);
            ASSERT_EQ(s.missWindowUniform, uniform)
                << k.name << " t" << t << " at cycle " << sim.now();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowOracleTest,
                         ::testing::Range(std::uint64_t(1),
                                          std::uint64_t(13)));

// ---------------------------------------------------------------------
// DSL front-end fuzzing: no text input may crash the compiler, and any
// program that parses must round-trip through the canonical printer.
// ---------------------------------------------------------------------

namespace {

/** Vocabulary-driven token soup: plausible enough to reach deep paths. */
std::string
tokenSoup(Rng &rng)
{
    static const char *const extras[] = {
        "=", ",", "(", ")", "{", "}", ":", "+", "-", "*", "/", "%",
        "<", ">", "==", "!=", "<=", ">=",
        "a", "b", "s1", "x", "k", "foo",
        "0", "1", "4", "8", "24", "0.5", "4K", "2M", "1G", "65536",
        "\n",
    };
    const auto &words = dsl::dslKeywords();
    std::string text;
    if (rng.bernoulli(0.7))
        text += "kernel k\n";
    const int n = 3 + int(rng.uniform(60));
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.45))
            text += words[rng.uniform(words.size())];
        else
            text += extras[rng.uniform(std::size(extras))];
        text += rng.bernoulli(0.2) ? "\n" : " ";
    }
    return text;
}

/** Raw printable-character soup: exercises the lexer error paths. */
std::string
charSoup(Rng &rng)
{
    std::string text;
    const int n = int(rng.uniform(120));
    for (int i = 0; i < n; ++i)
        text += char(32 + rng.uniform(95));
    return text;
}

/**
 * Compile arbitrary text: the only acceptable outcomes are a valid
 * kernel or a positioned DslError. Returns true when it compiled.
 */
bool
compilesCleanly(const std::string &text)
{
    try {
        const Kernel k = dsl::compileKernel(text);
        k.validate();  // a compiled kernel must also be valid
        return true;
    } catch (const dsl::DslError &e) {
        EXPECT_GE(e.line, 0);
        EXPECT_GE(e.col, 0);
        EXPECT_FALSE(e.message.empty());
        return false;
    }
}

/**
 * Any program that parses must survive print -> parse -> print with a
 * byte-identical canonical form (structural equality of the ASTs).
 */
void
expectRoundTrip(const std::string &text)
{
    dsl::Program p1;
    try {
        p1 = dsl::parseProgram(text);
    } catch (const dsl::DslError &) {
        return;  // didn't parse: nothing to round-trip
    }
    const std::string s1 = dsl::printProgram(p1);
    dsl::Program p2;
    try {
        p2 = dsl::parseProgram(s1);
    } catch (const dsl::DslError &e) {
        FAIL() << "canonical print does not reparse: " << e.what()
               << "\n" << s1;
    }
    EXPECT_EQ(s1, dsl::printProgram(p2)) << "for input:\n" << text;
}

} // namespace

class DslFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DslFuzzTest, TokenSoupNeverCrashes)
{
    Rng rng(deriveSeed(0x64736c66, GetParam()));
    for (int i = 0; i < 200; ++i) {
        const std::string text = tokenSoup(rng);
        compilesCleanly(text);
        expectRoundTrip(text);
    }
}

TEST_P(DslFuzzTest, CharSoupNeverCrashes)
{
    Rng rng(deriveSeed(0x64736c63, GetParam()));
    for (int i = 0; i < 200; ++i)
        compilesCleanly(charSoup(rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DslFuzzTest,
                         ::testing::Range(std::uint64_t(1),
                                          std::uint64_t(21)));

TEST(DslRoundTrip, CorpusKernelsReachAFixedPoint)
{
    const char *names[] = {"tomcatv", "swim",  "su2cor",  "hydro2d",
                           "mgrid",   "applu", "turb3d",  "apsi",
                           "fpppp",   "wave5", "pointer_chase",
                           "hash_join", "stencil"};
    for (const char *name : names) {
        const std::string path = std::string(MTDAE_SOURCE_DIR) +
                                 "/examples/kernels/" + name + ".mk";
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good()) << path;
        std::ostringstream ss;
        ss << in.rdbuf();
        expectRoundTrip(ss.str());
    }
}

TEST(DslRoundTrip, CanonicalFormCompilesIdentically)
{
    // Printing and reparsing must not change the compiled kernel: the
    // printer is a faithful, normalising serialisation.
    const std::string text = std::string("kernel rt\n") +
                             "param n = 3\n" +
                             "stream s = strided(64K, 8)\n" +
                             "reg acc : fp\n" +
                             "loop n as i {\n" +
                             "if i % 2 == 0 {\n" +
                             "let v = loadf(s)\n" +
                             "fadd acc = acc, v\n" +
                             "} else {\n" +
                             "advance s\n" +
                             "}\n" +
                             "}\n";
    const Kernel direct = dsl::compileKernel(text);
    const std::string canon =
        dsl::printProgram(dsl::parseProgram(text));
    const Kernel reparsed = dsl::compileKernel(canon);
    ASSERT_EQ(direct.ops.size(), reparsed.ops.size());
    for (std::size_t i = 0; i < direct.ops.size(); ++i) {
        EXPECT_EQ(direct.ops[i].op, reparsed.ops[i].op) << i;
        EXPECT_EQ(direct.ops[i].dst, reparsed.ops[i].dst) << i;
    }
    EXPECT_EQ(direct.numIntRegs, reparsed.numIntRegs);
    EXPECT_EQ(direct.numFpRegs, reparsed.numFpRegs);
}
