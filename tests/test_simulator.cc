/**
 * @file
 * Integration tests of the full pipeline on small kernels with known
 * structure: conservation, ordering, latency and accounting invariants.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"

using namespace mtdae;
using namespace mtdae::test;

TEST(Simulator, DrainsAFiniteTraceCompletely)
{
    const SimConfig cfg = testConfig();
    Simulator sim = makeSim(cfg, streamingKernel(), 100);
    const std::size_t body = streamingKernel().ops.size();
    while (!sim.allDone())
        sim.step();
    EXPECT_EQ(sim.totalGraduated(), body * 100);
}

TEST(Simulator, GraduationIsMonotonicAndBounded)
{
    SimConfig cfg = testConfig();
    cfg.warmupInsts = 0;
    Simulator sim = makeSim(cfg, streamingKernel());
    std::uint64_t last = 0;
    for (int i = 0; i < 2000; ++i) {
        sim.step();
        const std::uint64_t g = sim.totalGraduated();
        EXPECT_GE(g, last);
        EXPECT_LE(g - last, std::uint64_t(cfg.graduateWidth));
        last = g;
    }
    EXPECT_GT(last, 0u);
}

TEST(Simulator, IpcNeverExceedsMachineWidth)
{
    const SimConfig cfg = testConfig(4);
    Simulator sim = makeSim(cfg, streamingKernel());
    const RunResult r = sim.run(100000);
    EXPECT_LE(r.ipc, double(cfg.apUnits + cfg.epUnits));
    EXPECT_GT(r.ipc, 0.0);
}

TEST(Simulator, SlotAccountingSumsToWidthTimesCycles)
{
    const SimConfig cfg = testConfig(2);
    Simulator sim = makeSim(cfg, streamingKernel());
    const RunResult r = sim.run(20000);
    EXPECT_EQ(r.ap.total(), r.cycles * cfg.apUnits);
    EXPECT_EQ(r.ep.total(), r.cycles * cfg.epUnits);
}

TEST(Simulator, UsefulSlotsMatchGraduatedWork)
{
    // Over a long interval, issued (useful) slots equal graduated
    // instructions minus the never-issued Nops (none here).
    SimConfig cfg = testConfig();
    cfg.warmupInsts = 0;
    Simulator sim = makeSim(cfg, streamingKernel(), 2000);
    while (!sim.allDone())
        sim.step();
    const RunResult r = sim.snapshot();
    EXPECT_EQ(r.ap.count(SlotUse::Useful) + r.ep.count(SlotUse::Useful),
              sim.totalGraduated());
}

TEST(Simulator, PureComputeNeverTouchesMemory)
{
    const SimConfig cfg = testConfig();
    Simulator sim = makeSim(cfg, computeKernel());
    const RunResult r = sim.run(20000);
    EXPECT_EQ(r.loadMissRatio, 0.0);
    EXPECT_EQ(r.busUtilization, 0.0);
    EXPECT_EQ(r.fpMisses + r.intMisses, 0u);
    EXPECT_GT(r.ipc, 0.5);
}

TEST(Simulator, ComputeKernelBoundByEpLatency)
{
    // computeKernel's FP ops form a dependence chain through x, so the
    // EP recurrence (latency 4) bounds the iteration period.
    SimConfig cfg = testConfig();
    Simulator sim = makeSim(cfg, computeKernel());
    const RunResult r = sim.run(20000);
    // 5 body ops + back-edge = 6 instructions per >= 8-cycle recurrence
    // (two chained FP ops): IPC must sit below 6/8.
    EXPECT_LT(r.ipc, 0.80);
    // And the dominant EP waste must be FU-latency waits, as the paper
    // observes for a single thread.
    EXPECT_GT(r.ep.fraction(SlotUse::WaitFu), 0.3);
}

TEST(Simulator, LoadsCompleteAfterL2Latency)
{
    // With an L2 latency of 64, a single-load kernel cannot run faster
    // than one iteration per miss latency when every load misses and is
    // immediately consumed.
    SimConfig cfg = testConfig(1, true, 64);
    cfg.mshrs = 16;
    Simulator sim = makeSim(cfg, intChaseKernel(32 * 1024 * 1024));
    const RunResult r = sim.run(5000);
    // Perceived latency of those misses is (nearly) the full miss time.
    EXPECT_GT(r.perceivedInt, 50.0);
    EXPECT_LT(r.perceivedInt, 70.0);
}

TEST(Simulator, WarmupResetsMeasurement)
{
    SimConfig cfg = testConfig();
    cfg.warmupInsts = 5000;
    Simulator sim = makeSim(cfg, streamingKernel());
    const RunResult r = sim.run(10000);
    EXPECT_GE(sim.totalGraduated(), 15000u);
    EXPECT_LT(r.insts, sim.totalGraduated());
    EXPECT_GE(r.insts, 10000u);
}

TEST(Simulator, SnapshotIpcConsistent)
{
    const SimConfig cfg = testConfig();
    Simulator sim = makeSim(cfg, streamingKernel());
    const RunResult r = sim.run(30000);
    EXPECT_NEAR(r.ipc, double(r.insts) / double(r.cycles), 1e-12);
}

TEST(Simulator, RequiresOneSourcePerThread)
{
    SimConfig cfg = testConfig(2);
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<KernelTraceSource>(
        streamingKernel(), 0, 0x1000, 1));
    EXPECT_DEATH(Simulator(cfg, std::move(sources)), "one trace source");
}

TEST(Simulator, StoreDataArrivesFromTheEp)
{
    // An FP store whose data comes from a long FP chain must graduate
    // after the chain completes — and must not corrupt SAQ ordering.
    KernelBuilder b;
    auto s = b.strided(1 << 20, 8);
    const int x = b.ldf(s);
    const int y = b.fop(Opcode::FMul, x, x);
    const int z = b.fop(Opcode::FMul, y, y);
    b.stf(s, z);
    b.advance(s);
    const SimConfig cfg = testConfig();
    Simulator sim = makeSim(cfg, b.build("fpstore"), 5000);
    while (!sim.allDone())
        sim.step();
    EXPECT_EQ(sim.totalGraduated(), 7u * 5000);
}

TEST(Simulator, SaqForwardingServesLoadAfterStore)
{
    // Store then load the same address each iteration: the load must
    // forward from the SAQ, never missing in the cache.
    KernelBuilder b;
    auto s = b.strided(64, 8);  // 8 elements, revisited constantly
    const int i = b.intReg();
    b.iopInto(Opcode::IAdd, i, i);
    b.sti(s, i);
    auto s2 = b.stridedShared(64, 8, s.addrReg);
    // The paired load walks the same addresses one access behind.
    const int v = b.ldi(s2);
    b.iopInto(Opcode::ILogic, v, v, i);
    b.advance(s);
    const SimConfig cfg = testConfig(1, true, 256);
    Simulator sim = makeSim(cfg, b.build("fwd"), 3000);
    const RunResult r = sim.run(10000);
    // The footprint is one cache line: after the cold miss everything
    // hits or forwards; perceived latency collapses.
    EXPECT_LT(r.perceivedInt, 1.0);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Simulator, MispredictsGateFetchAndCostCycles)
{
    // A 50/50 data-dependent branch is unpredictable; the same kernel
    // with an always-taken branch is nearly free.
    auto make = [](float prob) {
        KernelBuilder b;
        const int c = b.intReg();
        b.iopInto(Opcode::ICmp, c, c);
        b.br(c, prob, 0);
        const int x = b.intReg();
        for (int i = 0; i < 6; ++i)
            b.iopInto(Opcode::IAdd, x, x);
        return b.build("br");
    };
    const SimConfig cfg = testConfig();
    Simulator predictable = makeSim(cfg, make(1.0f));
    Simulator random = makeSim(cfg, make(0.5f));
    const RunResult rp = predictable.run(30000);
    const RunResult rr = random.run(30000);
    EXPECT_LT(rp.mispredictRate, 0.02);
    // Half the conditional branches are the (predictable) back-edges,
    // so a 50/50 hammock yields ~25% overall.
    EXPECT_GT(rr.mispredictRate, 0.18);
    EXPECT_GT(rp.ipc, rr.ipc * 1.15);
    // Gated fetch shows up as idle/wrong-path issue slots.
    EXPECT_GT(rr.ap.fraction(SlotUse::Idle),
              rp.ap.fraction(SlotUse::Idle));
}

TEST(Simulator, UnresolvedBranchLimitThrottlesTightLoops)
{
    // A loop body far shorter than the fetch width: with only 4
    // unresolved branches allowed, fetch cannot run arbitrarily ahead.
    KernelBuilder b;
    const int x = b.intReg();
    b.iopInto(Opcode::IAdd, x, x);
    const Kernel k = b.build("tight");  // 3 instructions incl. back-edge
    SimConfig strict = testConfig();
    strict.maxUnresolvedBranches = 1;
    SimConfig loose = testConfig();
    loose.maxUnresolvedBranches = 16;
    Simulator s1 = makeSim(strict, k);
    Simulator s2 = makeSim(loose, k);
    EXPECT_LT(s1.run(20000).ipc, s2.run(20000).ipc);
}

TEST(Simulator, RegisterPressureStallsDispatchNotCorrectness)
{
    SimConfig cfg = testConfig();
    cfg.epPhysRegs = 34;  // almost no rename headroom
    Simulator sim = makeSim(cfg, streamingKernel(), 2000);
    while (!sim.allDone())
        sim.step();
    EXPECT_EQ(sim.totalGraduated(),
              streamingKernel().ops.size() * 2000);
}

TEST(Simulator, TinyQueuesStillDrainCorrectly)
{
    SimConfig cfg = testConfig();
    cfg.iqEntries = 1;
    cfg.apQueueEntries = 1;
    cfg.saqEntries = 1;
    cfg.robEntries = 4;
    cfg.fetchBufferSize = 2;
    Simulator sim = makeSim(cfg, streamingKernel(), 500);
    while (!sim.allDone())
        sim.step();
    EXPECT_EQ(sim.totalGraduated(), streamingKernel().ops.size() * 500);
}
