/**
 * @file
 * The checkpoint/warm-start engine (src/core/snapshot.hh): the
 * byte-identity contract. A simulation snapshot-restored at an
 * arbitrary cycle must be byte-identical — same snapshot bytes, same
 * final state, same statistics — to the uninterrupted run, across
 * both memory backends, every fetch x issue policy pair (including
 * the flush gating policy with a non-empty replay queue), any worker
 * count, and the versioned serialized container must reject corrupt
 * or mismatched input instead of restoring garbage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hh"
#include "core/snapshot.hh"
#include "harness/cli.hh"
#include "harness/sweep.hh"
#include "policy/policy.hh"
#include "test_util.hh"
#include "workload/dsl/interp.hh"

namespace mtdae {
namespace {

using test::makeSim;
using test::streamingKernel;
using test::testConfig;

using Bytes = std::vector<std::uint8_t>;

/** Step @p sim to completion; ASSERTs it drains within a cycle cap. */
void
runToCompletion(Simulator &sim)
{
    for (std::uint64_t guard = 0; !sim.allDone(); ++guard) {
        ASSERT_LT(guard, 400000u) << "simulation did not drain";
        sim.step();
    }
}

/** The two machines the round-trip matrix crosses the policies with. */
SimConfig
backendCfg(bool perfect_l2, PolicyKind fetch, PolicyKind issue)
{
    SimConfig cfg = testConfig(2);
    cfg.fetchPolicy = fetch;
    cfg.issuePolicy = issue;
    cfg.perfectL2 = perfect_l2;
    if (!perfect_l2)
        cfg.l2Bytes = 64 * 1024;  // small finite L2 + DRAM: real misses
    return cfg;
}

/**
 * The headline assertion, for one configuration: capture the
 * uninterrupted run's snapshots at the checkpoint cycles {0, 1, mid,
 * last} plus its final state, then for each checkpoint restore into a
 * fresh simulator and prove (a) save-after-restore reproduces the
 * checkpoint bytes and (b) running the restored simulator to
 * completion reproduces the uninterrupted final state, byte for byte.
 */
void
expectRestoreEquivalence(const SimConfig &cfg,
                         const Kernel &kernel = streamingKernel())
{
    const std::uint64_t iters = 150;

    // Uninterrupted reference run, counting cycles.
    Simulator ref = makeSim(cfg, kernel, iters);
    runToCompletion(ref);
    const std::uint64_t last = ref.now();
    const Bytes ref_final = ref.saveSnapshot().toBytes();
    ASSERT_GT(last, 2u);

    for (const std::uint64_t cycle :
         {std::uint64_t(0), std::uint64_t(1), last / 2, last}) {
        // Re-run to the checkpoint cycle and snapshot there.
        Simulator a = makeSim(cfg, kernel, iters);
        for (std::uint64_t c = 0; c < cycle; ++c)
            a.step();
        const Snapshot snap = a.saveSnapshot();

        // Restore into a fresh simulator: its state must serialize
        // back to the very same bytes...
        Simulator b = makeSim(cfg, kernel, iters);
        b.restoreSnapshot(snap);
        EXPECT_EQ(b.saveSnapshot().toBytes(), snap.toBytes())
            << "save-after-restore drifted at cycle " << cycle;

        // ...and running it out must land on the reference final
        // state, byte for byte (statistics counters included).
        runToCompletion(b);
        EXPECT_EQ(b.now(), last) << "cycle count diverged from " << cycle;
        EXPECT_EQ(b.saveSnapshot().toBytes(), ref_final)
            << "restored run diverged from the uninterrupted run "
            << "(checkpoint at cycle " << cycle << ")";
        EXPECT_EQ(b.totalGraduated(), ref.totalGraduated());
    }
}

struct MatrixCase
{
    PolicyKind fetch;
    PolicyKind issue;
    bool perfectL2;
};

std::string
matrixName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string n = std::string(policyName(info.param.fetch)) + "_" +
                    policyName(info.param.issue) + "_" +
                    (info.param.perfectL2 ? "perfectL2" : "finiteL2");
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

std::vector<MatrixCase>
matrixCases()
{
    std::vector<MatrixCase> cases;
    for (const PolicyKind fp : fetchPolicies())
        for (const PolicyKind ip : issuePolicies())
            for (const bool perfect : {true, false})
                cases.push_back({fp, ip, perfect});
    return cases;
}

class CheckpointMatrix : public ::testing::TestWithParam<MatrixCase>
{};

TEST_P(CheckpointMatrix, RestoreAtAnyCycleIsByteIdentical)
{
    const MatrixCase &p = GetParam();
    expectRestoreEquivalence(backendCfg(p.perfectL2, p.fetch, p.issue));
}

INSTANTIATE_TEST_SUITE_P(AllPolicyPairsAndBackends, CheckpointMatrix,
                         ::testing::ValuesIn(matrixCases()), matrixName);

TEST(CheckpointState, FlushPolicyWithNonEmptyReplayQueue)
{
    // The flush gating policy squashes fetch buffers into the replay
    // queue — per-context state that only exists mid-flight. Drive the
    // machine until a replay queue is non-empty, checkpoint *there*,
    // and require the round trip to hold.
    SimConfig cfg = backendCfg(false, PolicyKind::Flush,
                               PolicyKind::RoundRobin);
    cfg.l1Bytes = 1024;  // tiny L1: the gate engages constantly
    const std::uint64_t iters = 400;

    Simulator a = makeSim(cfg, streamingKernel(), iters);
    bool found = false;
    for (std::uint64_t c = 0; c < 200000 && !a.allDone(); ++c) {
        a.step();
        for (ThreadId t = 0; t < cfg.numThreads; ++t)
            if (!a.context(t).replayQ.empty())
                found = true;
        if (found)
            break;
    }
    ASSERT_TRUE(found) << "flush gating never populated a replay queue";

    const Snapshot snap = a.saveSnapshot();
    Simulator b = makeSim(cfg, streamingKernel(), iters);
    b.restoreSnapshot(snap);
    EXPECT_EQ(b.saveSnapshot().toBytes(), snap.toBytes());

    runToCompletion(a);
    runToCompletion(b);
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.saveSnapshot().toBytes(), b.saveSnapshot().toBytes());
}

// --- The versioned container -------------------------------------------

TEST(SnapshotContainer, RoundTripIsByteStable)
{
    Simulator sim = makeSim(testConfig(2), streamingKernel(), 50);
    for (int c = 0; c < 100; ++c)
        sim.step();
    const Snapshot snap = sim.saveSnapshot();
    const Bytes bytes = snap.toBytes();
    const Snapshot back = Snapshot::fromBytes(bytes);
    EXPECT_EQ(back.configHash, snap.configHash);
    EXPECT_EQ(back.payload, snap.payload);
    EXPECT_EQ(back.toBytes(), bytes);
}

TEST(SnapshotContainer, RejectsCorruptInput)
{
    Simulator sim = makeSim(testConfig(1), streamingKernel(), 20);
    for (int c = 0; c < 50; ++c)
        sim.step();
    const Bytes good = sim.saveSnapshot().toBytes();

    Bytes bad_magic = good;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(Snapshot::fromBytes(bad_magic), SnapshotError);

    // Version-mismatch rejection: a future (unknown) format version
    // must be refused, never half-parsed.
    Bytes bad_version = good;
    bad_version[4] += 1;
    EXPECT_THROW(Snapshot::fromBytes(bad_version), SnapshotError);

    Bytes truncated = good;
    truncated.resize(truncated.size() / 2);
    EXPECT_THROW(Snapshot::fromBytes(truncated), SnapshotError);

    Bytes trailing = good;
    trailing.push_back(0);
    EXPECT_THROW(Snapshot::fromBytes(trailing), SnapshotError);

    Bytes bad_payload = good;
    bad_payload[24] ^= 0x55;  // first payload byte: checksum must trip
    EXPECT_THROW(Snapshot::fromBytes(bad_payload), SnapshotError);

    EXPECT_THROW(Snapshot::fromBytes(Bytes{}), SnapshotError);
}

TEST(SnapshotContainer, RejectsConfigMismatch)
{
    Simulator a = makeSim(testConfig(2), streamingKernel(), 20);
    const Snapshot snap = a.saveSnapshot();

    SimConfig other = testConfig(2);
    other.l2Latency = 64;
    Simulator b = makeSim(other, streamingKernel(), 20);
    EXPECT_THROW(b.restoreSnapshot(snap), SnapshotError);

    // Same config: accepted.
    Simulator c = makeSim(testConfig(2), streamingKernel(), 20);
    EXPECT_NO_THROW(c.restoreSnapshot(snap));
}

TEST(SnapshotContainer, ConfigFingerprintSeparatesConfigs)
{
    const SimConfig base = testConfig(2);
    SimConfig seed = base;
    seed.seed += 1;
    SimConfig warm = base;
    warm.warmupInsts += 1;
    EXPECT_EQ(configFingerprint(base), configFingerprint(testConfig(2)));
    EXPECT_NE(configFingerprint(base), configFingerprint(seed));
    EXPECT_NE(configFingerprint(base), configFingerprint(warm));
}

// --- Warm-start prefix sharing in the sweep engine ---------------------

void
expectSameResult(const RunResult &a, const RunResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.perceivedFp, b.perceivedFp) << what;
    EXPECT_EQ(a.perceivedInt, b.perceivedInt) << what;
    EXPECT_EQ(a.perceivedAll, b.perceivedAll) << what;
    EXPECT_EQ(a.fpMisses, b.fpMisses) << what;
    EXPECT_EQ(a.intMisses, b.intMisses) << what;
    EXPECT_EQ(a.loadMissRatio, b.loadMissRatio) << what;
    EXPECT_EQ(a.storeMissRatio, b.storeMissRatio) << what;
    EXPECT_EQ(a.missRatio, b.missRatio) << what;
    EXPECT_EQ(a.mergedRatio, b.mergedRatio) << what;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << what;
    EXPECT_EQ(a.avgFillLatency, b.avgFillLatency) << what;
    EXPECT_EQ(a.l2MissRatio, b.l2MissRatio) << what;
    EXPECT_EQ(a.dramRowHitRatio, b.dramRowHitRatio) << what;
    EXPECT_EQ(a.dramBusUtilization, b.dramBusUtilization) << what;
    EXPECT_EQ(a.ap.counts, b.ap.counts) << what;
    EXPECT_EQ(a.ep.counts, b.ep.counts) << what;
    EXPECT_EQ(a.mispredictRate, b.mispredictRate) << what;
    EXPECT_EQ(a.threadInsts, b.threadInsts) << what;
    EXPECT_EQ(a.threadSlowdown, b.threadSlowdown) << what;
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup) << what;
    EXPECT_EQ(a.fairnessHmean, b.fairnessHmean) << what;
    EXPECT_EQ(a.fairnessMaxMin, b.fairnessMaxMin) << what;
}

/** A grid whose points share warmup prefixes within seed-stream groups. */
SweepSpec
sharedPrefixSpec()
{
    SweepSpec spec;
    std::uint64_t stream = 0;
    for (const std::uint32_t n : {1u, 2u}) {
        SimConfig cfg = testConfig(n);
        cfg.warmupInsts = 1500;
        for (const std::uint64_t mult : {1u, 2u, 3u})
            spec.addSuiteMix(cfg, 1000 * n * mult, "", stream);
        ++stream;
    }
    return spec;
}

TEST(WarmStartSweep, PrefixKeyGroupsExactlyTheSharedPoints)
{
    const SweepSpec spec = sharedPrefixSpec();
    const auto &jobs = spec.jobs();
    ASSERT_EQ(jobs.size(), 6u);
    // Same group <=> same thread count here.
    EXPECT_EQ(jobs[0].prefixKey(), jobs[1].prefixKey());
    EXPECT_EQ(jobs[0].prefixKey(), jobs[2].prefixKey());
    EXPECT_EQ(jobs[3].prefixKey(), jobs[4].prefixKey());
    EXPECT_EQ(jobs[3].prefixKey(), jobs[5].prefixKey());
    EXPECT_NE(jobs[0].prefixKey(), jobs[3].prefixKey());
    // The measure budget is *not* part of the prefix.
    EXPECT_NE(jobs[0].measureInsts, jobs[1].measureInsts);
}

TEST(WarmStartSweep, RunEqualsWarmupPlusMeasure)
{
    const SweepSpec spec = sharedPrefixSpec();
    const SimJob &job = spec.jobs()[1];
    const RunResult cold = job.run();
    const RunResult warm = job.runMeasured(job.runWarmup());
    expectSameResult(cold, warm, "run() vs runWarmup()+runMeasured()");
}

TEST(WarmStartSweep, AllJobCountsAndModesAreIdentical)
{
    // The acceptance bar: cold/warm x serial/parallel, all four ways,
    // exactly equal in every result field.
    const SweepSpec spec = sharedPrefixSpec();
    const auto cold1 = JobRunner(1, false).run(spec);
    const auto cold8 = JobRunner(8, false).run(spec);
    const auto warm1 = JobRunner(1, true).run(spec);
    const auto warm8 = JobRunner(8, true).run(spec);
    ASSERT_EQ(cold1.size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const std::string what = "job " + std::to_string(i);
        expectSameResult(cold1[i], cold8[i], what + " cold1 vs cold8");
        expectSameResult(cold1[i], warm1[i], what + " cold1 vs warm1");
        expectSameResult(cold1[i], warm8[i], what + " cold1 vs warm8");
    }
}

// --- CLI: the golden figures, warm-started -----------------------------

TEST(CheckpointGolden, WarmStartedFiguresReproduceGoldenCsvs)
{
    // tests/golden/*.csv predate the checkpoint engine. Rerunning the
    // same figures through the warm-start path (and the --warmup-insts
    // spelling) must reproduce them byte for byte.
    const std::string out_dir = ::testing::TempDir() + "mtdae_ckpt_golden";

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        experiments = {
            {"fig1",
             {"fig1", "--bench=tomcatv,swim", "--latencies=1,16,64"}},
            {"fig3", {"fig3", "--threads-list=1,2,4"}},
            {"fig4",
             {"fig4", "--threads-list=1,2", "--latencies=1,16,64"}},
            {"fig5",
             {"fig5", "--threads-list=1,2,4", "--latencies=16,64"}},
        };
    for (const auto &[name, base] : experiments) {
        std::vector<std::string> args = base;
        args.insert(args.end(),
                    {"--insts=2000", "--warmup-insts=500",
                     "--warm-start=1", "--quiet", "--out=" + out_dir});
        std::string out;
        ASSERT_EQ(test::cli(args, out), 0) << name;
        const std::string got = test::slurp(out_dir + "/" + name + ".csv");
        const std::string want = test::slurp(std::string(MTDAE_SOURCE_DIR) +
                                       "/tests/golden/" + name + ".csv");
        ASSERT_FALSE(want.empty()) << name;
        EXPECT_EQ(got, want)
            << name << ": warm-started output drifted from the golden "
            << "pre-checkpoint simulator";
    }
}

TEST(CheckpointGolden, AblateCheckpointWarmAndColdAreByteIdentical)
{
    const std::string warm_dir = ::testing::TempDir() + "mtdae_ckpt_warm";
    const std::string cold_dir = ::testing::TempDir() + "mtdae_ckpt_cold";
    const std::vector<std::string> common = {
        "ablate-checkpoint", "--insts=800",  "--warmup-insts=2000",
        "--threads-list=1,2", "--quiet"};
    std::vector<std::string> warm = common, cold = common;
    warm.insert(warm.end(), {"--warm-start=1", "--jobs=4",
                             "--out=" + warm_dir});
    cold.insert(cold.end(), {"--warm-start=0", "--jobs=1",
                             "--out=" + cold_dir});
    std::string out;
    ASSERT_EQ(test::cli(warm, out), 0);
    ASSERT_EQ(test::cli(cold, out), 0);
    const std::string w = test::slurp(warm_dir + "/ablate_checkpoint.csv");
    const std::string c = test::slurp(cold_dir + "/ablate_checkpoint.csv");
    ASSERT_FALSE(w.empty());
    EXPECT_EQ(w, c);
}

TEST(CheckpointDsl, DslKernelsRestoreByteIdenticallyAtAnyCycle)
{
    // DSL-compiled kernels go through the same {0, 1, mid, last}
    // checkpoint matrix as the built-ins. pointer_chase exercises the
    // Chain stream's serialized walk offset; hash_join the
    // self-indexing gather.
    for (const char *name : {"pointer_chase", "hash_join"}) {
        const Kernel k = dsl::compileKernel(dsl::readKernelFile(
            std::string(MTDAE_SOURCE_DIR) + "/examples/kernels/" +
            name + ".mk"));
        for (const bool perfect : {true, false})
            expectRestoreEquivalence(
                backendCfg(perfect, PolicyKind::Icount,
                           PolicyKind::RoundRobin),
                k);
    }
}

TEST(CheckpointDsl, AblateDslWarmAndColdAreByteIdentical)
{
    // The DSL param grid through the sweep engine: warm-started
    // parallel execution must emit the same CSV bytes as a cold serial
    // run.
    const std::string warm_dir = ::testing::TempDir() + "mtdae_dsl_warm";
    const std::string cold_dir = ::testing::TempDir() + "mtdae_dsl_cold";
    const std::vector<std::string> common = {
        "ablate-dsl",
        "--kernel-file=" + std::string(MTDAE_SOURCE_DIR) +
            "/examples/kernels/pointer_chase.mk",
        "--kernel-param=footprint=64K,256K",
        "--insts=800",
        "--warmup-insts=1000",
        "--threads-list=1,2",
        "--quiet"};
    std::vector<std::string> warm = common, cold = common;
    warm.insert(warm.end(),
                {"--warm-start=1", "--jobs=8", "--out=" + warm_dir});
    cold.insert(cold.end(),
                {"--warm-start=0", "--jobs=1", "--out=" + cold_dir});
    std::string out;
    ASSERT_EQ(test::cli(warm, out), 0);
    ASSERT_EQ(test::cli(cold, out), 0);
    const std::string w = test::slurp(warm_dir + "/ablate_dsl.csv");
    const std::string c = test::slurp(cold_dir + "/ablate_dsl.csv");
    ASSERT_FALSE(w.empty());
    EXPECT_EQ(w, c);
}

TEST(CheckpointCli, WarmStartFlagParses)
{
    cli::Options opts;
    std::string error;
    ASSERT_TRUE(cli::parseArgs({"run", "--warm-start=0"}, opts, error))
        << error;
    EXPECT_FALSE(opts.warmStart);
    opts = {};
    ASSERT_TRUE(cli::parseArgs({"run", "--warm-start"}, opts, error))
        << error;
    EXPECT_TRUE(opts.warmStart);
    opts = {};
    EXPECT_TRUE(opts.warmStart);  // default on
    EXPECT_FALSE(cli::parseArgs({"run", "--warm-start=maybe"}, opts,
                                error));
}

} // namespace
} // namespace mtdae
