/**
 * @file
 * Unit tests for the 2-bit branch history table.
 */

#include <gtest/gtest.h>

#include "branch/bht.hh"

using namespace mtdae;

TEST(Bht, InitiallyWeaklyTaken)
{
    const Bht bht(64);
    EXPECT_TRUE(bht.predict(0x100));
}

TEST(Bht, LearnsAlwaysTaken)
{
    Bht bht(64);
    for (int i = 0; i < 4; ++i)
        bht.update(0x40, true);
    EXPECT_TRUE(bht.predict(0x40));
    // Saturated at strongly-taken: one not-taken does not flip it.
    bht.update(0x40, false);
    EXPECT_TRUE(bht.predict(0x40));
    bht.update(0x40, false);
    EXPECT_FALSE(bht.predict(0x40));
}

TEST(Bht, LearnsAlwaysNotTaken)
{
    Bht bht(64);
    for (int i = 0; i < 4; ++i)
        bht.update(0x40, false);
    EXPECT_FALSE(bht.predict(0x40));
}

TEST(Bht, HysteresisOnLoopExit)
{
    // Classic 2-bit behaviour: a loop back-edge mispredicts once per
    // exit, then immediately predicts taken again.
    Bht bht(64);
    for (int i = 0; i < 10; ++i)
        bht.update(0x80, true);
    EXPECT_FALSE(bht.update(0x80, false));  // the exit mispredicts
    EXPECT_TRUE(bht.predict(0x80));         // still predicts taken
    EXPECT_TRUE(bht.update(0x80, true));    // next iteration correct
}

TEST(Bht, DistinctPcsAreIndependent)
{
    Bht bht(64);
    for (int i = 0; i < 4; ++i) {
        bht.update(0x100, true);
        bht.update(0x104, false);
    }
    EXPECT_TRUE(bht.predict(0x100));
    EXPECT_FALSE(bht.predict(0x104));
}

TEST(Bht, AliasingWrapsAtTableSize)
{
    Bht bht(16);  // 16 entries, word-indexed: pc and pc + 16*4 alias
    for (int i = 0; i < 4; ++i)
        bht.update(0x0, false);
    EXPECT_FALSE(bht.predict(0x0 + 16 * 4));
}

TEST(Bht, MispredictRateTracksOutcomes)
{
    Bht bht(64);
    // Warm to strongly taken, then feed 50/50 alternation.
    for (int i = 0; i < 4; ++i)
        bht.update(0x20, true);
    bht.resetStats();
    int wrong = 0;
    bool dir = false;
    for (int i = 0; i < 100; ++i, dir = !dir)
        wrong += !bht.update(0x20, dir);
    EXPECT_EQ(bht.resolved(), 100u);
    EXPECT_NEAR(bht.mispredictRate(), double(wrong) / 100.0, 1e-12);
    EXPECT_GT(bht.mispredictRate(), 0.3);
}

TEST(Bht, ResetStatsKeepsCounters)
{
    Bht bht(64);
    for (int i = 0; i < 4; ++i)
        bht.update(0x20, false);
    bht.resetStats();
    EXPECT_EQ(bht.resolved(), 0u);
    // Table contents survive the reset.
    EXPECT_FALSE(bht.predict(0x20));
}

class BhtSizeTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BhtSizeTest, PowerOfTwoSizesWork)
{
    Bht bht(GetParam());
    bht.update(0x1234, true);
    bht.update(0x1234, true);
    EXPECT_TRUE(bht.predict(0x1234));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BhtSizeTest,
                         ::testing::Values(1, 2, 64, 2048, 65536));

TEST(BhtDeath, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH(Bht(100), "power of two");
}
