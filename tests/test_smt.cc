/**
 * @file
 * Simultaneous-multithreading behaviour: throughput scaling, fairness,
 * shared-resource contention and fetch policy.
 */

#include <gtest/gtest.h>

#include "tests/test_util.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;
using namespace mtdae::test;

namespace {

RunResult
runThreads(std::uint32_t n, const Kernel &k, std::uint64_t insts,
           Simulator **out = nullptr)
{
    static std::unique_ptr<Simulator> sim;
    SimConfig cfg = testConfig(n);
    sim = std::make_unique<Simulator>(makeSim(cfg, k));
    if (out)
        *out = sim.get();
    return sim->run(insts);
}

} // namespace

TEST(Smt, ThroughputGrowsWithThreads)
{
    const Kernel k = streamingKernel();
    const double ipc1 = runThreads(1, k, 30000).ipc;
    const double ipc2 = runThreads(2, k, 60000).ipc;
    const double ipc4 = runThreads(4, k, 120000).ipc;
    EXPECT_GT(ipc2, ipc1 * 1.4);
    // Two streaming threads already sit near the machine's effective
    // peak; four must at least hold it.
    EXPECT_GE(ipc4, ipc2 * 0.95);
}

TEST(Smt, ComputeBoundKernelScalesNearlyLinearlyToTwoThreads)
{
    // The paper's synergy: one in-order thread cannot cover the EP
    // latency, but additional threads fill those slots.
    const Kernel k = computeKernel();
    const double ipc1 = runThreads(1, k, 20000).ipc;
    const double ipc2 = runThreads(2, k, 40000).ipc;
    EXPECT_GT(ipc2, ipc1 * 1.7);
}

TEST(Smt, AllThreadsMakeProgress)
{
    SimConfig cfg = testConfig(4);
    Simulator sim = makeSim(cfg, streamingKernel());
    sim.run(100000);
    std::uint64_t min_g = ~std::uint64_t(0), max_g = 0;
    for (ThreadId t = 0; t < 4; ++t) {
        min_g = std::min(min_g, sim.context(t).graduated);
        max_g = std::max(max_g, sim.context(t).graduated);
    }
    EXPECT_GT(min_g, 0u);
    // Identical workloads: round-robin keeps threads roughly balanced.
    EXPECT_LT(double(max_g) / double(min_g), 1.5);
}

TEST(Smt, SharedCacheRaisesMissRatio)
{
    // More threads -> bigger combined working set -> more L1 misses
    // (paper Section 3.1).
    auto run_mix = [](std::uint32_t n) {
        SimConfig cfg = testConfig(n);
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (ThreadId t = 0; t < n; ++t)
            sources.push_back(makeSuiteMixSource(t, 1));
        Simulator sim(cfg, std::move(sources));
        return sim.run(60000 * n);
    };
    const RunResult r1 = run_mix(1);
    const RunResult r6 = run_mix(6);
    EXPECT_GT(r6.missRatio, r1.missRatio * 1.05);
    EXPECT_GT(r6.busUtilization, r1.busUtilization);
}

TEST(Smt, PerThreadQueuesAreIndependent)
{
    // A thread blocked on memory must not stop another thread from
    // issuing: mix a chasing kernel with a compute kernel.
    SimConfig cfg = testConfig(2, true, 256);
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<KernelTraceSource>(
        intChaseKernel(), Addr(1) << 34, 0x1000, 3));
    sources.push_back(std::make_unique<KernelTraceSource>(
        computeKernel(), Addr(2) << 34, 0x2000, 4));
    Simulator sim(cfg, std::move(sources));
    sim.run(40000);
    const std::uint64_t chase = sim.context(0).graduated;
    const std::uint64_t compute = sim.context(1).graduated;
    EXPECT_GT(compute, 4 * chase);
    EXPECT_GT(chase, 0u);
}

TEST(Smt, SingleThreadEpWaitsDominatedByFuLatency)
{
    // Paper Figure 3, first column pair: with one thread the major EP
    // bottleneck is the functional-unit latency.
    SimConfig cfg = testConfig(1);
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(makeSuiteMixSource(0, 1));
    Simulator sim(cfg, std::move(sources));
    const RunResult r = sim.run(120000);
    EXPECT_GT(r.ep.fraction(SlotUse::WaitFu), 0.3);
    EXPECT_GT(r.ep.fraction(SlotUse::WaitFu),
              r.ep.fraction(SlotUse::WaitMem));
}

TEST(Smt, MultithreadingRemovesFuWaits)
{
    // Paper Figure 3: adding contexts drastically reduces FU-latency
    // stalls in both units.
    auto run_mix = [](std::uint32_t n) {
        SimConfig cfg = testConfig(n);
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (ThreadId t = 0; t < n; ++t)
            sources.push_back(makeSuiteMixSource(t, 1));
        Simulator sim(cfg, std::move(sources));
        return sim.run(80000 * n);
    };
    const RunResult r1 = run_mix(1);
    const RunResult r4 = run_mix(4);
    EXPECT_LT(r4.ep.fraction(SlotUse::WaitFu),
              0.5 * r1.ep.fraction(SlotUse::WaitFu));
    EXPECT_GT(r4.ipc, 1.6 * r1.ipc);
}

TEST(Smt, IssueNeverExceedsUnitWidths)
{
    SimConfig cfg = testConfig(6);
    Simulator sim = makeSim(cfg, streamingKernel());
    const RunResult r = sim.run(60000);
    EXPECT_LE(r.ap.count(SlotUse::Useful), r.cycles * cfg.apUnits);
    EXPECT_LE(r.ep.count(SlotUse::Useful), r.cycles * cfg.epUnits);
}

TEST(Smt, SevenAndMoreThreadsStillCorrect)
{
    SimConfig cfg = testConfig(9);
    Simulator sim = makeSim(cfg, streamingKernel(), 2000);
    while (!sim.allDone())
        sim.step();
    EXPECT_EQ(sim.totalGraduated(),
              9 * streamingKernel().ops.size() * 2000);
}
