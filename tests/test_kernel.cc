/**
 * @file
 * Unit tests for the kernel DSL and the ten SPEC FP95 benchmark models:
 * structural validation, instruction-mix census, and the per-model
 * behavioural signatures the workload layer promises (see the
 * src/workload/kernel.hh header comment).
 */

#include <gtest/gtest.h>

#include "workload/kernel.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;

TEST(KernelBuilder, BuildsAValidLoop)
{
    KernelBuilder b;
    auto s = b.strided(1024 * 1024, 8);
    const int x = b.ldf(s);
    const int y = b.fop(Opcode::FAdd, x, x);
    b.stf(s, y);
    b.advance(s);
    const Kernel k = b.build("k");
    EXPECT_EQ(k.name, "k");
    // ldf, fadd, stf, iadd + loop update + back-edge.
    EXPECT_EQ(k.ops.size(), 6u);
    EXPECT_TRUE(k.ops.back().backedge);
    EXPECT_EQ(k.ops.back().op, Opcode::Br);
}

TEST(KernelBuilder, MixCensus)
{
    KernelBuilder b;
    auto s = b.strided(1 << 20, 8);
    const int x = b.ldf(s);
    const int y = b.fop(Opcode::FMul, x, x);
    b.stf(s, y);
    b.advance(s);
    const Kernel k = b.build("mix");
    const Kernel::Mix m = k.mix();
    EXPECT_EQ(m.loads, 1u);
    EXPECT_EQ(m.stores, 1u);
    EXPECT_EQ(m.fpOps, 1u);
    EXPECT_EQ(m.intOps, 2u);    // advance + loop update
    EXPECT_EQ(m.branches, 1u);  // back-edge
    EXPECT_EQ(m.total, 6u);
}

TEST(KernelBuilder, SharedAddressRegisters)
{
    KernelBuilder b;
    auto a = b.strided(1 << 20, 8);
    auto c = b.stridedShared(1 << 20, 8, a.addrReg);
    EXPECT_EQ(a.addrReg, c.addrReg);
    EXPECT_NE(a.id, c.id);
    const int x = b.ldf(a);
    const int y = b.ldf(c);
    b.fop(Opcode::FAdd, x, y);
    b.advance(a);
    EXPECT_NO_FATAL_FAILURE(b.build("shared"));
}

TEST(KernelBuilder, GatherUsesIndexRegister)
{
    KernelBuilder b;
    auto sI = b.strided(1 << 20, 8);
    const int idx = b.ldi(sI);
    auto g = b.gather(1 << 16, idx);
    EXPECT_EQ(g.addrReg, idx);
    const int v = b.ldf(g);
    b.fop(Opcode::FMul, v, v);
    b.advance(sI);
    const Kernel k = b.build("gather");
    EXPECT_EQ(k.streams[g.id].kind, StreamSpec::Kind::Gather);
}

TEST(KernelBuilder, CrossMovesTypeCorrectly)
{
    KernelBuilder b;
    const int i = b.intReg();
    const int f = b.movif(i);
    const int j = b.movfi(f);
    b.iopInto(Opcode::IAdd, i, j);
    const Kernel k = b.build("moves");
    EXPECT_EQ(k.ops[0].op, Opcode::MovIF);
    EXPECT_EQ(k.ops[1].op, Opcode::MovFI);
}

TEST(KernelDeath, RejectsMissingBackedge)
{
    Kernel k;
    k.name = "bad";
    k.numIntRegs = 1;
    KOp op;
    op.op = Opcode::IAdd;
    op.dst = 0;
    op.src0 = 0;
    k.ops.push_back(op);
    EXPECT_DEATH(k.validate(), "back-edge");
}

TEST(KernelDeath, RejectsOutOfRangeRegister)
{
    KernelBuilder b;
    const int i = b.intReg();
    b.iopInto(Opcode::IAdd, i, i);
    Kernel k = b.build("oob");
    k.ops[0].src0 = 25;  // beyond numIntRegs
    EXPECT_DEATH(k.validate(), "out of range");
}

TEST(KernelDeath, RejectsSkipPastEnd)
{
    KernelBuilder b;
    const int i = b.intReg();
    b.iopInto(Opcode::ICmp, i, i);
    b.br(i, 0.5f, 10);  // skips beyond the back-edge
    EXPECT_DEATH(b.build("skip"), "skip");
}

TEST(KernelDeath, RejectsStrideBeyondFootprint)
{
    // A stride longer than the footprint would silently wrap to an
    // alias of a smaller region; validate() rejects it outright.
    KernelBuilder b;
    auto s = b.strided(1 << 12, 8);
    const int x = b.ldi(s);
    b.iopInto(Opcode::IAdd, x, x);
    Kernel k = b.build("wide");
    k.streams[0].stride = (1 << 12) + 8;
    EXPECT_DEATH(k.validate(), "stride exceeds the stream footprint");
    k.streams[0].stride = -((1 << 12) + 8);
    EXPECT_DEATH(k.validate(), "stride exceeds the stream footprint");
}

TEST(KernelBuilder, StrideUpToFootprintIsValid)
{
    // Both boundary sides: |stride| == footprint is the largest legal
    // magnitude, in either direction.
    for (const std::int64_t stride : {std::int64_t(1) << 12,
                                      -(std::int64_t(1) << 12)}) {
        KernelBuilder b;
        auto s = b.strided(1 << 12, stride);
        const int x = b.ldi(s);
        b.iopInto(Opcode::IAdd, x, x);
        const Kernel k = b.build("edge");
        EXPECT_NO_FATAL_FAILURE(k.validate());
        EXPECT_EQ(k.streams[0].stride, stride);
    }
}

TEST(KernelBuilder, ChainStreamsOwnTheirAddressRegister)
{
    KernelBuilder b;
    auto c = b.chain(1 << 16, 16);
    const int v = b.ldi(c);
    b.iopInto(Opcode::ILogic, v, v);
    b.advance(c);
    const Kernel k = b.build("chase");
    EXPECT_EQ(k.streams[c.id].kind, StreamSpec::Kind::Chain);
    EXPECT_EQ(k.streams[c.id].elemBytes, 16u);
    EXPECT_GE(c.addrReg, 0);
    EXPECT_NO_FATAL_FAILURE(k.validate());
}

TEST(KernelDeath, RejectsZeroStride)
{
    KernelBuilder b;
    auto s = b.strided(1 << 20, 8);
    const int x = b.ldi(s);
    b.iopInto(Opcode::IAdd, x, x);
    Kernel k = b.build("stride");
    k.streams[0].stride = 0;
    EXPECT_DEATH(k.validate(), "stride");
}

// ---------------------------------------------------------------------
// The ten SPEC FP95 models.
// ---------------------------------------------------------------------

TEST(SpecFp95, TenBenchmarksInPaperOrder)
{
    const auto &names = specFp95Names();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "tomcatv");
    EXPECT_EQ(names.back(), "wave5");
}

class SpecModelTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecModelTest, ValidatesAndHasLoopStructure)
{
    const Kernel k = buildSpecFp95(GetParam());
    EXPECT_EQ(k.name, GetParam());
    EXPECT_NO_FATAL_FAILURE(k.validate());
    EXPECT_TRUE(k.ops.back().backedge);
    EXPECT_FALSE(k.streams.empty());
}

TEST_P(SpecModelTest, HasFpWorkAndMemoryTraffic)
{
    const Kernel::Mix m = buildSpecFp95(GetParam()).mix();
    EXPECT_GT(m.loads, 0u);
    EXPECT_GT(m.fpOps, 0u);
    // FP95 codes are FP-heavy but not FP-only: the EP share of the body
    // sits in a plausible band.
    const double fp_frac = double(m.fpOps) / m.total;
    EXPECT_GT(fp_frac, 0.20) << GetParam();
    EXPECT_LT(fp_frac, 0.70) << GetParam();
}

TEST_P(SpecModelTest, MemoryFractionPlausible)
{
    const Kernel::Mix m = buildSpecFp95(GetParam()).mix();
    const double mem_frac = double(m.loads + m.stores) / m.total;
    EXPECT_GT(mem_frac, 0.08) << GetParam();
    EXPECT_LT(mem_frac, 0.45) << GetParam();
}

TEST_P(SpecModelTest, RegisterBudgetsWithinArchLimits)
{
    const Kernel k = buildSpecFp95(GetParam());
    EXPECT_LE(k.numIntRegs, 32);
    EXPECT_LE(k.numFpRegs, 32);
}

INSTANTIATE_TEST_SUITE_P(AllModels, SpecModelTest,
                         ::testing::ValuesIn(specFp95Names()));

TEST(SpecFp95, GatherCodesHaveGatherStreams)
{
    for (const char *name : {"su2cor", "wave5"}) {
        const Kernel k = buildSpecFp95(name);
        bool has_gather = false;
        for (const auto &s : k.streams)
            has_gather |= s.kind == StreamSpec::Kind::Gather;
        EXPECT_TRUE(has_gather) << name;
    }
}

TEST(SpecFp95, LodCodesHaveFpBranches)
{
    for (const char *name : {"fpppp", "wave5"}) {
        const Kernel k = buildSpecFp95(name);
        bool has_brf = false;
        for (const auto &op : k.ops)
            has_brf |= op.op == Opcode::BrF;
        EXPECT_TRUE(has_brf) << name;
    }
}

TEST(SpecFp95, CacheResidentCodesHaveSmallFpFootprints)
{
    // fpppp and turb3d: FP-load working sets fit comfortably in the
    // 64 KB L1 (their tiny miss ratios in paper Figure 1-c).
    for (const char *name : {"fpppp", "turb3d"}) {
        const Kernel k = buildSpecFp95(name);
        std::uint64_t fp_bytes = 0;
        for (std::size_t op_i = 0; op_i < k.ops.size(); ++op_i) {
            const KOp &op = k.ops[op_i];
            if (op.op == Opcode::LdF && op.skip == 0)
                fp_bytes += 0;  // footprints counted below per stream
        }
        for (const auto &s : k.streams)
            if (s.footprint <= 16 * 1024)
                fp_bytes += s.footprint;
        EXPECT_LT(fp_bytes, 64u * 1024) << name;
    }
}

TEST(SpecFp95, StreamingCodesHaveMultiMegabyteStreams)
{
    for (const char *name : {"tomcatv", "swim", "hydro2d", "mgrid"}) {
        const Kernel k = buildSpecFp95(name);
        std::uint64_t biggest = 0;
        for (const auto &s : k.streams)
            biggest = std::max(biggest, s.footprint);
        EXPECT_GE(biggest, 1024u * 1024) << name;
    }
}

TEST(SpecFp95, Hydro2dUsesLineSizedStrides)
{
    // The column sweep: every access a fresh line over a multi-MB
    // region — hydro2d's bandwidth signature.
    const Kernel k = buildSpecFp95("hydro2d");
    int line_strided = 0;
    for (const auto &s : k.streams)
        line_strided += s.kind == StreamSpec::Kind::Strided &&
                        s.stride >= 32 && s.footprint >= 1024 * 1024;
    EXPECT_GE(line_strided, 1);
}

TEST(SpecFp95, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(buildSpecFp95("nonexistent"),
                ::testing::ExitedWithCode(1), "unknown");
}
