/**
 * @file
 * Reproduction acceptance tests: the paper's headline claims, asserted
 * on the real suite-mix workload at reduced instruction budgets. These
 * are the guard rails that keep future changes from silently breaking
 * the figures (the full tables come from the bench binaries).
 */

#include <gtest/gtest.h>

#include "core/slot_stats.hh"
#include "harness/experiment.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;

namespace {

RunResult
mixRun(std::uint32_t threads, bool decoupled, std::uint32_t lat,
       std::uint64_t insts_per_thread = 120000)
{
    SimConfig cfg = paperConfig(threads, decoupled, lat);
    cfg.warmupInsts = 20000;
    return runSuiteMix(cfg, insts_per_thread * threads);
}

RunResult
benchRun(const std::string &name, std::uint32_t lat,
         std::uint64_t insts = 100000)
{
    SimConfig cfg = paperConfig(1, true, lat);
    cfg.warmupInsts = 20000;
    return runBenchmark(cfg, name, insts);
}

} // namespace

TEST(SlotBreakdown, FractionsAndTotals)
{
    SlotBreakdown bd;
    bd.add(SlotUse::Useful, 6);
    bd.add(SlotUse::WaitMem, 2);
    bd.add(SlotUse::Idle);
    bd.add(SlotUse::Other);
    EXPECT_EQ(bd.total(), 10u);
    EXPECT_DOUBLE_EQ(bd.fraction(SlotUse::Useful), 0.6);
    EXPECT_DOUBLE_EQ(bd.fraction(SlotUse::WaitFu), 0.0);
    bd.reset();
    EXPECT_EQ(bd.total(), 0u);
    EXPECT_DOUBLE_EQ(bd.fraction(SlotUse::Useful), 0.0);
}

TEST(SlotBreakdown, EveryCategoryHasAName)
{
    for (std::size_t u = 0; u < kNumSlotUses; ++u)
        EXPECT_GT(std::string(slotUseName(SlotUse(u))).size(), 0u);
}

// --- Figure 1 claims ---------------------------------------------------

TEST(Fig1Claims, StreamingBenchmarksHideFpMissLatency)
{
    // ">96% of the FP load miss latency is always hidden" for the
    // well-decoupled codes, even at a 128-cycle L2.
    for (const char *name : {"tomcatv", "swim", "mgrid", "applu"}) {
        const RunResult r = benchRun(name, 128);
        EXPECT_LT(r.perceivedFp, 0.05 * 130) << name;
        EXPECT_GT(r.fpMisses, 100u) << name;
    }
}

TEST(Fig1Claims, FppppIsTheWorstFpHider)
{
    const RunResult fpppp = benchRun("fpppp", 64);
    for (const char *name : {"tomcatv", "swim", "hydro2d"}) {
        const RunResult other = benchRun(name, 64);
        EXPECT_GT(fpppp.perceivedFp, 5.0 * (other.perceivedFp + 0.1))
            << name;
    }
}

TEST(Fig1Claims, GatherCodesShowIntegerStalls)
{
    // Figure 1-b names fpppp, su2cor, turb3d and wave5.
    for (const char *name : {"su2cor", "turb3d", "wave5", "fpppp"}) {
        const RunResult r = benchRun(name, 64);
        EXPECT_GT(r.perceivedInt, 30.0) << name;
    }
    for (const char *name : {"tomcatv", "swim", "mgrid"}) {
        const RunResult r = benchRun(name, 64);
        EXPECT_LT(r.perceivedInt, 1.0) << name;
    }
}

TEST(Fig1Claims, LowMissBenchmarksBarelyDegrade)
{
    // turb3d and fpppp: high perceived latency but tiny miss ratios —
    // "they are hardly performance degraded".
    for (const char *name : {"turb3d", "fpppp"}) {
        const RunResult base = benchRun(name, 1);
        const RunResult far = benchRun(name, 128);
        EXPECT_GT(far.ipc, 0.70 * base.ipc) << name;
        EXPECT_LT(far.missRatio, 0.05) << name;
    }
}

TEST(Fig1Claims, Hydro2dHasTheHighestMissRatio)
{
    const RunResult hydro = benchRun("hydro2d", 16);
    for (const char *name : {"tomcatv", "mgrid", "applu", "apsi"}) {
        const RunResult other = benchRun(name, 16);
        EXPECT_GT(hydro.loadMissRatio, other.loadMissRatio) << name;
    }
}

// --- Figure 3 claims ---------------------------------------------------

TEST(Fig3Claims, SingleThreadBottleneckIsEpFuLatency)
{
    const RunResult r = mixRun(1, true, 16);
    EXPECT_GT(r.ep.fraction(SlotUse::WaitFu), 0.4);
    EXPECT_GT(r.ep.fraction(SlotUse::WaitFu),
              3.0 * r.ep.fraction(SlotUse::WaitMem));
}

TEST(Fig3Claims, ThreeThreadsGiveLargeSpeedup)
{
    // Paper: 2.31x from 1 to 3 threads.
    const RunResult r1 = mixRun(1, true, 16);
    const RunResult r3 = mixRun(3, true, 16);
    EXPECT_GT(r3.ipc / r1.ipc, 1.9);
    EXPECT_LT(r3.ipc / r1.ipc, 2.9);
}

TEST(Fig3Claims, GainsBeyondFourThreadsAreNegligible)
{
    const RunResult r4 = mixRun(4, true, 16);
    const RunResult r6 = mixRun(6, true, 16);
    EXPECT_LT(r6.ipc, 1.1 * r4.ipc);
}

// --- Figure 4 claims ---------------------------------------------------

TEST(Fig4Claims, DecouplingFlattensTheLatencyCurve)
{
    const RunResult d1 = mixRun(2, true, 1);
    const RunResult d64 = mixRun(2, true, 64);
    const RunResult n1 = mixRun(2, false, 1);
    const RunResult n64 = mixRun(2, false, 64);
    const double dec_loss = 1.0 - d64.ipc / d1.ipc;
    const double nodec_loss = 1.0 - n64.ipc / n1.ipc;
    EXPECT_LT(dec_loss, 0.5 * nodec_loss);
    EXPECT_GT(nodec_loss, 0.5);
}

TEST(Fig4Claims, PerceivedLatencySeparatesTheFamilies)
{
    const RunResult dec = mixRun(2, true, 128);
    const RunResult nodec = mixRun(2, false, 128);
    EXPECT_GT(nodec.perceivedAll, 4.0 * dec.perceivedAll);
}

// --- Figure 5 claims ---------------------------------------------------

TEST(Fig5Claims, FewDecoupledThreadsBeatManyNonDecoupled)
{
    // Paper: 3 decoupled threads ~ 12 non-decoupled at L2=64; we assert
    // the cheaper 2-vs-6 version at reduced budgets.
    const RunResult d2 = mixRun(2, true, 64);
    const RunResult n6 = mixRun(6, false, 64, 60000);
    EXPECT_GT(d2.ipc, n6.ipc);
}

TEST(Fig5Claims, NonDecoupledBusUtilisationClimbsWithThreads)
{
    const RunResult n2 = mixRun(2, false, 64, 60000);
    const RunResult n8 = mixRun(8, false, 64, 60000);
    EXPECT_GT(n8.busUtilization, 1.5 * n2.busUtilization);
    EXPECT_GT(n8.ipc, n2.ipc);
}
