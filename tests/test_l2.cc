/**
 * @file
 * Unit tests for the finite L2 and its integration into MemorySystem:
 * hit/miss/delayed-hit timing, LRU replacement within a set, dirty
 * write-backs to DRAM, L1-write-back absorption/forwarding, L2 MSHR
 * exhaustion queueing, port contention, the perfect-L2 escape hatch's
 * fixed-latency regression, and the emergent end-to-end fill latency.
 *
 * The test machine: 8 KB 2-way L2 (128 sets of 32 B lines), latency 16,
 * 2 ports, 2 MSHRs, over the test_dram.cc DRAM (2 banks, RAS 30,
 * CAS 20, precharge 20, 4 bus cycles). A cold L2 read at cycle 0:
 *   port 0 + tag 16 -> DRAM activate+CAS at 16..66 -> data bus -> 70.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "memory/dram.hh"
#include "memory/l2_cache.hh"
#include "memory/memory_system.hh"

using namespace mtdae;

namespace {

SimConfig
l2Config()
{
    SimConfig cfg;
    cfg.perfectL2 = false;
    cfg.l2Bytes = 8 * 1024;  // 128 sets x 2 ways x 32 B
    cfg.l2Assoc = 2;
    cfg.l2Ports = 2;
    cfg.l2Mshrs = 2;
    cfg.l2Latency = 16;
    cfg.dramBanks = 2;
    cfg.dramRowBytes = 4096;
    cfg.dramCas = 20;
    cfg.dramRas = 30;
    cfg.dramPrecharge = 20;
    cfg.dramBusCycles = 4;
    return cfg;
}

} // namespace

TEST(L2Cache, ColdMissFetchesFromDram)
{
    Dram dram(l2Config());
    L2Cache l2(l2Config(), dram);
    // port 0, tag done 16, DRAM cold read 16+50 = 66, bus -> 70.
    EXPECT_EQ(l2.read(0, 0), 70u);
    EXPECT_EQ(l2.stats().miss.num, 1u);
    EXPECT_EQ(dram.stats().reads, 1u);
}

TEST(L2Cache, HitCostsPortPlusLatency)
{
    Dram dram(l2Config());
    L2Cache l2(l2Config(), dram);
    (void)l2.read(0, 0);
    EXPECT_EQ(l2.read(0, 100), 116u);  // resident: tag/array only
    EXPECT_EQ(l2.stats().miss.num, 1u);
    EXPECT_EQ(l2.stats().miss.den, 2u);
    EXPECT_EQ(dram.stats().reads, 1u);  // no second DRAM trip
}

TEST(L2Cache, DelayedHitMergesIntoInFlightFill)
{
    Dram dram(l2Config());
    L2Cache l2(l2Config(), dram);
    const Cycle fill = l2.read(0, 0);
    // One cycle later the same line is requested again: it rides the
    // in-flight fill instead of issuing a second DRAM read.
    EXPECT_EQ(l2.read(0, 1), fill);
    EXPECT_EQ(l2.stats().delayedHits, 1u);
    EXPECT_EQ(dram.stats().reads, 1u);
}

TEST(L2Cache, LruReplacementWithinSet)
{
    Dram dram(l2Config());
    L2Cache l2(l2Config(), dram);
    // Lines 0, 128, 256 all map to set 0 of the 2-way cache.
    ASSERT_EQ(l2.setOf(0), l2.setOf(128));
    ASSERT_EQ(l2.setOf(0), l2.setOf(256));
    (void)l2.read(0, 0);
    (void)l2.read(128, 1000);
    (void)l2.read(0, 2000);    // touch 0: 128 becomes LRU
    (void)l2.read(256, 3000);  // evicts 128
    EXPECT_EQ(l2.read(0, 4000), 4016u);  // still resident
    (void)l2.read(128, 5000);  // evicted: must miss again
    EXPECT_EQ(l2.stats().miss.num, 4u);
    EXPECT_EQ(dram.stats().reads, 4u);
}

TEST(L2Cache, DirtyVictimWritesBackToDram)
{
    Dram dram(l2Config());
    L2Cache l2(l2Config(), dram);
    (void)l2.read(0, 0);
    l2.writeback(0, 1000);  // the L1 returns the line dirty
    EXPECT_EQ(l2.stats().wbAbsorbed, 1u);
    EXPECT_EQ(dram.stats().writes, 0u);  // dirty data still in the L2
    (void)l2.read(128, 2000);
    (void)l2.read(256, 3000);  // set 0 overflows: dirty line 0 leaves
    EXPECT_EQ(l2.stats().writebacks, 1u);
    EXPECT_EQ(dram.stats().writes, 1u);
}

TEST(L2Cache, WritebackMissForwardsToDramUnallocated)
{
    Dram dram(l2Config());
    L2Cache l2(l2Config(), dram);
    l2.writeback(999, 0);  // nothing resident: straight to DRAM
    EXPECT_EQ(l2.stats().wbForwarded, 1u);
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().reads, 0u);  // no pointless fill
}

TEST(L2Cache, MshrExhaustionQueuesTheNextMiss)
{
    SimConfig cfg = l2Config();
    cfg.l2Mshrs = 1;
    Dram dram(cfg);
    L2Cache l2(cfg, dram);
    EXPECT_EQ(l2.read(0, 0), 70u);  // holds the only MSHR until 70
    // Line 129 (set 1, DRAM bank 1) misses at the same cycle but must
    // wait for the MSHR: DRAM access starts at 70, not 16.
    EXPECT_EQ(l2.read(129, 0), 124u);
    // With 2 MSHRs it would have been 16 + 50 = 66, bus-queued to 74.
}

TEST(L2Cache, SinglePortSerializesSameCycleAccesses)
{
    SimConfig cfg = l2Config();
    cfg.l2Ports = 1;
    Dram dram(cfg);
    L2Cache l2(cfg, dram);
    (void)l2.read(0, 0);
    const Cycle a = l2.read(0, 1000);
    const Cycle b = l2.read(0, 1000);  // same cycle: port busy 1 cycle
    EXPECT_EQ(a, 1016u);
    EXPECT_EQ(b, 1017u);
}

TEST(MemorySystem, RealBackendFillEndToEnd)
{
    MemorySystem mem(l2Config());
    mem.beginCycle(0);
    const MemResult r = mem.load(0x0, 0);
    ASSERT_TRUE(r.miss());
    // L2 cold miss lands at 70, then 2 cycles of L1-L2 bus transfer.
    EXPECT_EQ(r.readyAt, 72u);
    EXPECT_EQ(mem.l2Stats().miss.num, 1u);
    EXPECT_EQ(mem.dramStats().reads, 1u);
    EXPECT_NEAR(mem.stats().avgFillLatency(), 72.0, 1e-9);
}

TEST(MemorySystem, PerfectL2MatchesPrePrFixedLatencyModel)
{
    // The escape hatch must reproduce the pre-finite-L2 model exactly:
    // a miss costs l2Latency + line transfer, and neither the L2 nor
    // the DRAM sees any traffic.
    SimConfig cfg;  // perfectL2 defaults to true
    ASSERT_TRUE(cfg.perfectL2);
    MemorySystem mem(cfg);
    mem.beginCycle(0);
    EXPECT_EQ(mem.load(0x1000, 0).readyAt, 18u);  // 16 + 32/16
    mem.beginCycle(1);
    // Second miss at cycle 1: L2-ready at 17 but the bus carries the
    // first fill until 18, so the transfer queues FIFO: done at 20.
    EXPECT_EQ(mem.load(0x2000, 1).readyAt, 20u);
    EXPECT_EQ(mem.l2Stats().miss.den, 0u);
    EXPECT_EQ(mem.dramStats().reads, 0u);
    EXPECT_EQ(mem.dramStats().writes, 0u);
}

TEST(MemorySystem, DirtyL1VictimFlowsIntoL2)
{
    SimConfig cfg = l2Config();
    MemorySystem mem(cfg);
    mem.beginCycle(0);
    (void)mem.store(0x0, 0);  // write-allocate; line 0 fills dirty
    for (Cycle c = 1; c <= 100; ++c)
        mem.beginCycle(c);
    // 0x10000 shares L1 frame 0: the dirty victim crosses the L1-L2
    // bus and is absorbed by the L2 (line 0 is resident there).
    ASSERT_TRUE(mem.load(0x10000, 100).miss());
    EXPECT_EQ(mem.stats().writebacks, 1u);
    EXPECT_EQ(mem.l2Stats().wbAbsorbed, 1u);
    EXPECT_EQ(mem.dramStats().writes, 0u);
}

TEST(MemorySystem, EmergentLatencyGrowsWithSlowerDram)
{
    SimConfig slow = l2Config();
    slow.dramCas *= 8;
    slow.dramRas *= 8;
    slow.dramPrecharge *= 8;
    MemorySystem fast(l2Config()), mem(slow);
    fast.beginCycle(0);
    mem.beginCycle(0);
    const Cycle f = fast.load(0x0, 0).readyAt;
    const Cycle s = mem.load(0x0, 0).readyAt;
    EXPECT_GT(s, f);  // latency emerges from DRAM timing, not a knob
    EXPECT_EQ(s, 16u + 8u * 50u + 4u + 2u);
}

TEST(Simulator, RealBackendPopulatesPerLevelStats)
{
    SimConfig cfg = paperConfig(2, true, 16);
    cfg.perfectL2 = false;
    cfg.warmupInsts = 500;
    const RunResult r = runSuiteMix(cfg, 3000);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.avgFillLatency, 0.0);
    EXPECT_GT(r.l2MissRatio, 0.0);
    EXPECT_GE(r.dramRowHitRatio, 0.0);
    EXPECT_LE(r.dramRowHitRatio, 1.0);
    EXPECT_GT(r.dramBusUtilization, 0.0);
}

TEST(Simulator, PerfectL2LeavesBackendSilent)
{
    SimConfig cfg = paperConfig(1, true, 16);
    cfg.warmupInsts = 500;
    const RunResult r = runSuiteMix(cfg, 3000);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.avgFillLatency, 0.0);  // the fixed-latency fills
    EXPECT_EQ(r.l2MissRatio, 0.0);
    EXPECT_EQ(r.dramBusUtilization, 0.0);
}
