/**
 * @file
 * Unit tests for the DRAM model: bank/row address mapping, row-buffer
 * hit/miss/conflict timing, bank serialisation versus bank-level
 * parallelism, shared data bus queueing, write traffic and statistics.
 *
 * The test machine: 2 banks, 4 KB rows (128 lines of 32 B), CAS 20,
 * RAS 30, precharge 20, 4 bus cycles per line. Expected latencies:
 *   row hit           = CAS                    = 20
 *   row empty (cold)  = RAS + CAS              = 50
 *   row conflict      = precharge + RAS + CAS  = 70
 * plus 4 cycles of data bus, FIFO with every other transfer.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "memory/dram.hh"

using namespace mtdae;

namespace {

SimConfig
dramConfig()
{
    SimConfig cfg;
    cfg.dramBanks = 2;
    cfg.dramRowBytes = 4096;  // 128 lines per row at 32 B lines
    cfg.dramCas = 20;
    cfg.dramRas = 30;
    cfg.dramPrecharge = 20;
    cfg.dramBusCycles = 4;
    return cfg;
}

} // namespace

TEST(Dram, PageInterleavedBankAndRowMapping)
{
    Dram d(dramConfig());
    // Lines 0..127 form row 0 of bank 0; the next row rotates banks.
    EXPECT_EQ(d.bankOf(0), 0u);
    EXPECT_EQ(d.bankOf(127), 0u);
    EXPECT_EQ(d.bankOf(128), 1u);
    EXPECT_EQ(d.bankOf(256), 0u);
    EXPECT_EQ(d.rowOf(0), 0u);
    EXPECT_EQ(d.rowOf(128), 0u);
    EXPECT_EQ(d.rowOf(256), 1u);
}

TEST(Dram, ColdReadActivatesRow)
{
    Dram d(dramConfig());
    // Empty row buffer: RAS + CAS = 50, then 4 bus cycles.
    EXPECT_EQ(d.read(0, 0), 54u);
    EXPECT_EQ(d.stats().reads, 1u);
    EXPECT_EQ(d.stats().rowHit.num, 0u);
    EXPECT_EQ(d.stats().rowHit.den, 1u);
}

TEST(Dram, RowBufferHitPaysOnlyCas)
{
    Dram d(dramConfig());
    (void)d.read(0, 0);
    // Same row, bank idle: CAS = 20, bus free -> 100 + 20 + 4.
    EXPECT_EQ(d.read(1, 100), 124u);
    EXPECT_EQ(d.stats().rowHit.num, 1u);
}

TEST(Dram, RowConflictPaysPrechargeActivateCas)
{
    Dram d(dramConfig());
    (void)d.read(0, 0);
    // Line 256 is row 1 of bank 0: precharge + RAS + CAS = 70.
    EXPECT_EQ(d.read(256, 200), 274u);
    EXPECT_EQ(d.stats().rowHit.num, 0u);
    EXPECT_EQ(d.stats().rowHit.den, 2u);
}

TEST(Dram, BankConflictSerializes)
{
    Dram d(dramConfig());
    EXPECT_EQ(d.read(0, 0), 54u);  // bank 0 busy until 50
    // Same-cycle request to row 1 of bank 0: waits for the bank, then
    // pays the row conflict: start 50 + 70 = 120, bus -> 124.
    EXPECT_EQ(d.read(256, 0), 124u);
    EXPECT_EQ(d.stats().bankConflictCycles, 50u);
}

TEST(Dram, IndependentBanksOverlapBusSerializes)
{
    Dram d(dramConfig());
    const Cycle a = d.read(0, 0);    // bank 0: data at 50, bus -> 54
    const Cycle b = d.read(128, 0);  // bank 1: data at 50, queues behind
    EXPECT_EQ(a, 54u);
    EXPECT_EQ(b, 58u);  // bank access overlapped; only the bus serialises
    EXPECT_EQ(d.stats().bankConflictCycles, 0u);
}

TEST(Dram, WriteCrossesBusThenOccupiesBank)
{
    Dram d(dramConfig());
    // Write-back: 4 bus cycles to the device, then RAS + CAS = 50.
    EXPECT_EQ(d.write(0, 0), 54u);
    EXPECT_EQ(d.stats().writes, 1u);
    // A read behind it waits for the bank and row-hits: 54 + 20 + 4.
    EXPECT_EQ(d.read(1, 0), 78u);
    EXPECT_EQ(d.stats().rowHit.num, 1u);
}

TEST(Dram, WritesKeepTheRowOpenForReads)
{
    Dram d(dramConfig());
    (void)d.read(0, 0);
    (void)d.write(256, 100);  // row 1 of bank 0 replaces row 0
    // A read of row 0 now conflicts even though the writes are fire
    // and forget: write-back traffic steals row-buffer locality.
    (void)d.read(2, 500);
    EXPECT_EQ(d.stats().rowHit.num, 0u);
    EXPECT_EQ(d.stats().rowHit.den, 3u);
}

TEST(Dram, BusUtilizationOverInterval)
{
    Dram d(dramConfig());
    d.resetStats(0);
    (void)d.read(0, 0);  // 4 bus cycles reserved
    EXPECT_NEAR(d.busUtilization(100), 0.04, 1e-9);
}

TEST(Dram, ResetStatsClearsCounters)
{
    Dram d(dramConfig());
    (void)d.read(0, 0);
    (void)d.write(128, 0);
    d.resetStats(0);
    EXPECT_EQ(d.stats().reads, 0u);
    EXPECT_EQ(d.stats().writes, 0u);
    EXPECT_EQ(d.stats().rowHit.den, 0u);
    EXPECT_EQ(d.stats().bankConflictCycles, 0u);
}
