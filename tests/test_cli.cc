/**
 * @file
 * Tests of the unified `mtdae` experiment CLI: argument parsing, config
 * overrides, error paths and an end-to-end smoke run of the quickstart
 * configuration.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/cli.hh"

using namespace mtdae;
using cli::Options;

namespace {

/** Parse and expect success. */
Options
parseOk(const std::vector<std::string> &args)
{
    Options opts;
    std::string error;
    const bool ok = cli::parseArgs(args, opts, error);
    EXPECT_TRUE(ok) << error;
    return opts;
}

/** Parse and return the error message (expects failure). */
std::string
parseErr(const std::vector<std::string> &args)
{
    Options opts;
    std::string error;
    EXPECT_FALSE(cli::parseArgs(args, opts, error));
    EXPECT_FALSE(error.empty());
    return error;
}

} // namespace

TEST(CliParse, ExperimentAndDefaults)
{
    const Options opts = parseOk({"fig4"});
    EXPECT_EQ(opts.experiment, "fig4");
    EXPECT_EQ(opts.format, Options::Format::Csv);
    EXPECT_TRUE(opts.scaleQueues);
    EXPECT_FALSE(opts.quiet);
    EXPECT_EQ(opts.insts, 0u);
    EXPECT_TRUE(opts.benchmarks.empty());
    EXPECT_TRUE(opts.overrides.empty());
}

TEST(CliParse, OptionsAndLists)
{
    const Options opts = parseOk({"fig1", "--insts=5000", "--json",
                                  "--quiet", "--no-scale",
                                  "--bench=tomcatv,swim",
                                  "--threads-list=1,2,4",
                                  "--latencies=1,64"});
    EXPECT_EQ(opts.experiment, "fig1");
    EXPECT_EQ(opts.format, Options::Format::Json);
    EXPECT_TRUE(opts.quiet);
    EXPECT_FALSE(opts.scaleQueues);
    EXPECT_EQ(opts.insts, 5000u);
    ASSERT_EQ(opts.benchmarks.size(), 2u);
    EXPECT_EQ(opts.benchmarks[0], "tomcatv");
    EXPECT_EQ(opts.threads, (std::vector<std::uint32_t>{1, 2, 4}));
    EXPECT_EQ(opts.latencies, (std::vector<std::uint32_t>{1, 64}));
}

TEST(CliParse, ConfigOverridesRecordedAndApplied)
{
    const Options opts = parseOk({"run", "--threads=4",
                                  "--decoupled=false", "--mshrs=8",
                                  "--predictor=gshare", "--seed=42"});
    ASSERT_EQ(opts.overrides.size(), 5u);

    SimConfig cfg;
    std::string error;
    ASSERT_TRUE(cli::applyOverrides(cfg, opts, error)) << error;
    EXPECT_EQ(cfg.numThreads, 4u);
    EXPECT_FALSE(cfg.decoupled);
    EXPECT_EQ(cfg.mshrs, 8u);
    EXPECT_EQ(cfg.predictor, SimConfig::PredictorKind::Gshare);
    EXPECT_EQ(cfg.seed, 42u);
}

TEST(CliParse, RejectsUnknownAndMalformedFlags)
{
    EXPECT_NE(parseErr({"run", "--no-such-knob=3"}).find("no-such-knob"),
              std::string::npos);
    EXPECT_NE(parseErr({"run", "--threads=banana"}).find("banana"),
              std::string::npos);
    EXPECT_NE(parseErr({"run", "--frobnicate"}).find("frobnicate"),
              std::string::npos);
    parseErr({"run", "--insts=0"});
    parseErr({"run", "--format=xml"});
    parseErr({"run", "--latencies=1,x"});
    parseErr({"fig1", "extra-positional"});
}

TEST(CliParse, EveryDocumentedKeyIsSettable)
{
    SimConfig cfg;
    std::string error;
    for (const auto &key : cli::overrideKeys()) {
        const std::string value =
            key == "decoupled" || key == "perfect-l2" ||
                    key == "cycle-skip"               ? "true"
            : key == "predictor"                      ? "gshare"
            : key == "fetch-policy" || key == "issue-policy"
                ? "round-robin"
                : "8";
        EXPECT_TRUE(cli::applyOverride(cfg, key, value, error))
            << key << ": " << error;
    }
}

TEST(CliRegistry, PaperExperimentsRegistered)
{
    for (const char *name : {"run", "fig1", "fig3", "fig4", "fig5",
                             "fig4-dram", "ablate-l2", "ablate-iq",
                             "ablate-mshrs"})
        EXPECT_TRUE(cli::isExperiment(name)) << name;
    EXPECT_FALSE(cli::isExperiment("fig2"));
    EXPECT_FALSE(cli::isExperiment(""));
    EXPECT_GE(cli::experiments().size(), 12u);
}

TEST(CliDriver, PerfectL2FlagReproducesFixedLatencyModelByteForByte)
{
    // The paper-model experiments default to the perfect L2, and
    // tests/test_l2.cc pins that model to the pre-finite-L2 timing
    // formula — so flag and default must be byte-identical output.
    const std::vector<std::string> common = {
        "fig4",           "--insts=800",         "--warmup=200",
        "--quiet",        "--json",              "--seed=7",
        "--threads-list=1,2", "--latencies=1,64"};
    std::ostringstream out1, err1, out2, err2;
    ASSERT_EQ(cli::runCli(common, out1, err1), 0);
    auto with_flag = common;
    with_flag.push_back("--perfect-l2");
    ASSERT_EQ(cli::runCli(with_flag, out2, err2), 0);
    EXPECT_EQ(out1.str(), out2.str());
    EXPECT_FALSE(out1.str().empty());
}

TEST(CliDriver, BarePerfectL2FlagParses)
{
    cli::Options opts;
    std::string error;
    ASSERT_TRUE(cli::parseArgs({"run", "--perfect-l2"}, opts, error))
        << error;
    SimConfig cfg;
    cfg.perfectL2 = false;
    ASSERT_TRUE(cli::applyOverrides(cfg, opts, error)) << error;
    EXPECT_TRUE(cfg.perfectL2);
}

TEST(CliDriver, AblateL2RunsOnTheRealBackend)
{
    std::ostringstream out, err;
    const int rc = cli::runCli({"ablate-l2", "--insts=400",
                                "--warmup=100", "--quiet", "--json",
                                "--threads-list=1"},
                               out, err);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.str().find("\"experiment\": \"ablate_l2\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"l2_miss\""), std::string::npos);
    // The l2_kb = 0 perfect-L2 reference row rides along.
    EXPECT_NE(out.str().find("\"l2_kb\": 0"), std::string::npos);
}

TEST(CliDriver, Fig4DramSweepsDramSlowdowns)
{
    std::ostringstream out, err;
    const int rc = cli::runCli({"fig4-dram", "--insts=400",
                                "--warmup=100", "--quiet", "--json",
                                "--threads-list=1", "--latencies=1,4"},
                               out, err);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.str().find("\"experiment\": \"fig4_dram\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"dram_scale\": 4"), std::string::npos);
    EXPECT_NE(out.str().find("\"avg_fill\""), std::string::npos);
}

TEST(CliDriver, UnknownExperimentFailsWithUsageHint)
{
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({"bogus"}, out, err), 2);
    EXPECT_NE(err.str().find("unknown experiment 'bogus'"),
              std::string::npos);
    EXPECT_NE(err.str().find("mtdae list"), std::string::npos);
}

TEST(CliDriver, UnknownBenchmarkFailsCleanly)
{
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({"run", "--bench=nonexistent"}, out, err), 2);
    EXPECT_NE(err.str().find("unknown benchmark 'nonexistent'"),
              std::string::npos);
    EXPECT_NE(err.str().find("suite-mix"), std::string::npos);
}

TEST(CliDriver, SuiteMixOnlyValidForRun)
{
    // Only `run` drives the suite mix; fig1 must reject it as a usage
    // error instead of tripping the workload-layer assertion.
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({"fig1", "--bench=suite-mix"}, out, err), 2);
    EXPECT_NE(err.str().find("unknown benchmark 'suite-mix'"),
              std::string::npos);
}

TEST(CliParse, RejectsNegativeAndOverflowingNumbers)
{
    parseErr({"run", "--warmup=-1"});
    parseErr({"run", "--insts=-5"});
    parseErr({"run", "--seed=99999999999999999999999"});
    parseErr({"run", "--threads= 4"});
}

TEST(CliDriver, UncreatableOutDirFailsBeforeRunning)
{
    const std::string file = ::testing::TempDir() + "mtdae_not_a_dir";
    std::ofstream(file).put('x');  // a plain file blocks mkdir
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({"run", "--insts=500", "--quiet",
                           "--out=" + file + "/sub"},
                          out, err), 2);
    EXPECT_NE(err.str().find("cannot create output directory"),
              std::string::npos);
    std::remove(file.c_str());
}

TEST(CliDriver, JsonModeKeepsStdoutParseable)
{
    // Without --quiet the table must go to stderr, leaving stdout as a
    // single JSON document.
    std::ostringstream out, err;
    const int rc = cli::runCli({"run", "--insts=500", "--warmup=100",
                                "--json", "--bench=tomcatv"},
                               out, err);
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(out.str().front(), '{');
    EXPECT_NE(err.str().find("== run =="), std::string::npos);
}

TEST(CliDriver, BadFlagFails)
{
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({"fig1", "--threads=NaN"}, out, err), 2);
    EXPECT_NE(err.str().find("NaN"), std::string::npos);
}

TEST(CliDriver, NoArgsPrintsUsage)
{
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({}, out, err), 2);
    EXPECT_NE(err.str().find("usage: mtdae"), std::string::npos);
}

TEST(CliDriver, HelpAndListSucceed)
{
    std::ostringstream out, err;
    EXPECT_EQ(cli::runCli({"help"}, out, err), 0);
    EXPECT_NE(out.str().find("usage: mtdae"), std::string::npos);
    EXPECT_NE(out.str().find("--iq-entries"), std::string::npos);

    std::ostringstream out2, err2;
    EXPECT_EQ(cli::runCli({"list"}, out2, err2), 0);
    EXPECT_NE(out2.str().find("fig4"), std::string::npos);
}

TEST(CliDriver, SmokeRunQuickstartConfigJson)
{
    // The quickstart machine (1T, decoupled, L2=16), tiny budget.
    std::ostringstream out, err;
    const int rc =
        cli::runCli({"run", "--insts=500", "--warmup=100", "--quiet",
                     "--json", "--bench=tomcatv"},
                    out, err);
    EXPECT_EQ(rc, 0);
    EXPECT_NE(out.str().find("\"experiment\": \"run\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"benchmark\": \"tomcatv\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"ipc\": "), std::string::npos);
}

TEST(CliDriver, CsvRunWritesResultFile)
{
    const std::string dir = ::testing::TempDir() + "mtdae_cli_csv";
    std::ostringstream out, err;
    const int rc = cli::runCli({"run", "--insts=500", "--warmup=100",
                                "--quiet", "--out=" + dir},
                               out, err);
    EXPECT_EQ(rc, 0);
    const std::string path = dir + "/run.csv";
    std::ifstream f(path);
    ASSERT_TRUE(f.good()) << path;
    std::string header;
    std::getline(f, header);
    EXPECT_NE(header.find("benchmark,"), std::string::npos);
    std::string row;
    EXPECT_TRUE(std::getline(f, row));
    std::remove(path.c_str());
}

TEST(CliJson, QuotingByNumericness)
{
    cli::ResultSet rs;
    rs.name = "demo";
    rs.header = {"name", "value"};
    rs.rows = {{"tomcatv", "2.5"}, {"a\"b", "x"}};
    std::ostringstream os;
    cli::writeJson(rs, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"name\": \"tomcatv\", \"value\": 2.5"),
              std::string::npos);
    EXPECT_NE(s.find("\"a\\\"b\""), std::string::npos);
    EXPECT_NE(s.find("\"x\""), std::string::npos);
}
