/**
 * @file
 * Golden-equivalence tests for the kernel DSL (src/workload/dsl/):
 * every built-in SPEC FP95 model has a DSL port in examples/kernels/
 * whose compiled kernel is structurally byte-identical to the C++
 * builder's, whose expanded instruction trace is byte-identical field
 * for field, and whose simulated RunResult rows match exactly on both
 * memory backends. Plus coverage for the three DSL-only kernels
 * (pointer_chase, hash_join, stencil) and the param-override surface.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hh"
#include "workload/dsl/interp.hh"
#include "workload/dsl/lexer.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;

namespace {

std::string
kernelPath(const std::string &name)
{
    return std::string(MTDAE_SOURCE_DIR) + "/examples/kernels/" + name +
           ".mk";
}

/** Field-by-field structural equality of two kernels. */
void
expectKernelEq(const Kernel &a, const Kernel &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.numIntRegs, b.numIntRegs);
    EXPECT_EQ(a.numFpRegs, b.numFpRegs);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        const StreamSpec &x = a.streams[i];
        const StreamSpec &y = b.streams[i];
        EXPECT_EQ(x.kind, y.kind) << "stream " << i;
        EXPECT_EQ(x.footprint, y.footprint) << "stream " << i;
        EXPECT_EQ(x.stride, y.stride) << "stream " << i;
        EXPECT_EQ(x.elemBytes, y.elemBytes) << "stream " << i;
        EXPECT_EQ(x.addrReg, y.addrReg) << "stream " << i;
    }
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        const KOp &x = a.ops[i];
        const KOp &y = b.ops[i];
        EXPECT_EQ(x.op, y.op) << "op " << i;
        EXPECT_EQ(x.dst, y.dst) << "op " << i;
        EXPECT_EQ(x.src0, y.src0) << "op " << i;
        EXPECT_EQ(x.src1, y.src1) << "op " << i;
        EXPECT_EQ(x.src2, y.src2) << "op " << i;
        EXPECT_EQ(x.stream, y.stream) << "op " << i;
        EXPECT_EQ(x.skip, y.skip) << "op " << i;
        EXPECT_EQ(x.takenProb, y.takenProb) << "op " << i;
        EXPECT_EQ(x.backedge, y.backedge) << "op " << i;
    }
}

/** Exact equality of two RunResults (wall-clock profile excluded). */
void
expectResultEq(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.perceivedFp, b.perceivedFp);
    EXPECT_EQ(a.perceivedInt, b.perceivedInt);
    EXPECT_EQ(a.perceivedAll, b.perceivedAll);
    EXPECT_EQ(a.fpMisses, b.fpMisses);
    EXPECT_EQ(a.intMisses, b.intMisses);
    EXPECT_EQ(a.loadMissRatio, b.loadMissRatio);
    EXPECT_EQ(a.storeMissRatio, b.storeMissRatio);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.mergedRatio, b.mergedRatio);
    EXPECT_EQ(a.busUtilization, b.busUtilization);
    EXPECT_EQ(a.avgFillLatency, b.avgFillLatency);
    EXPECT_EQ(a.l2MissRatio, b.l2MissRatio);
    EXPECT_EQ(a.dramRowHitRatio, b.dramRowHitRatio);
    EXPECT_EQ(a.dramBusUtilization, b.dramBusUtilization);
    EXPECT_EQ(a.mispredictRate, b.mispredictRate);
    EXPECT_EQ(a.ap.counts, b.ap.counts);
    EXPECT_EQ(a.ep.counts, b.ep.counts);
}

} // namespace

// ---------------------------------------------------------------------
// Byte-identity of every built-in port: kernel, trace, RunResult.
// ---------------------------------------------------------------------

class DslGoldenTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override { text_ = test::slurp(kernelPath(GetParam())); }
    std::string text_;
};

TEST_P(DslGoldenTest, KernelStructurallyIdentical)
{
    const Kernel cxx = buildSpecFp95(GetParam());
    const Kernel ported = dsl::compileKernel(text_);
    expectKernelEq(cxx, ported);
}

TEST_P(DslGoldenTest, FactoryNameAndLayoutMatch)
{
    auto builtin = makeBenchmarkFactory(GetParam());
    auto ported = dsl::makeDslFactory(text_);
    EXPECT_EQ(builtin->name(), ported->name());
    // The DSL factory pins a matching benchmark name to the same layout
    // slot, so its fingerprint need not equal the built-in's — but it
    // must be stable and parameter-qualified.
    EXPECT_NE(ported->fingerprint(), ported->name());
    EXPECT_EQ(ported->fingerprint(), dsl::makeDslFactory(text_)->fingerprint());
}

TEST_P(DslGoldenTest, TraceByteIdentical)
{
    auto builtin = makeBenchmarkFactory(GetParam());
    auto ported = dsl::makeDslFactory(text_);
    auto sa = builtin->make(2, 42);
    auto sb = ported->make(2, 42);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t t = 0; t < sa.size(); ++t) {
        TraceInst ia, ib;
        for (int n = 0; n < 20000; ++n) {
            ASSERT_TRUE(sa[t]->next(ia));
            ASSERT_TRUE(sb[t]->next(ib));
            ASSERT_EQ(ia.op, ib.op) << "thread " << t << " inst " << n;
            ASSERT_EQ(ia.dst, ib.dst) << "thread " << t << " inst " << n;
            ASSERT_EQ(ia.src, ib.src) << "thread " << t << " inst " << n;
            ASSERT_EQ(ia.pc, ib.pc) << "thread " << t << " inst " << n;
            ASSERT_EQ(ia.addr, ib.addr) << "thread " << t << " inst " << n;
            ASSERT_EQ(ia.taken, ib.taken) << "thread " << t << " inst " << n;
        }
    }
}

TEST_P(DslGoldenTest, RunResultIdenticalBothBackends)
{
    auto builtin = makeBenchmarkFactory(GetParam());
    auto ported = dsl::makeDslFactory(text_);
    for (const bool perfect : {true, false}) {
        SimConfig cfg = test::testConfig(2);
        cfg.perfectL2 = perfect;
        Simulator sim_a(cfg, builtin->make(cfg.numThreads, cfg.seed));
        Simulator sim_b(cfg, ported->make(cfg.numThreads, cfg.seed));
        const RunResult ra = sim_a.run(20000);
        const RunResult rb = sim_b.run(20000);
        expectResultEq(ra, rb);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, DslGoldenTest,
                         ::testing::ValuesIn(specFp95Names()));

// ---------------------------------------------------------------------
// The DSL-only corpus kernels.
// ---------------------------------------------------------------------

TEST(DslCorpus, PointerChaseUsesChainStream)
{
    const Kernel k = dsl::compileKernel(test::slurp(kernelPath("pointer_chase")));
    EXPECT_EQ(k.name, "pointer_chase");
    ASSERT_EQ(k.streams.size(), 1u);
    EXPECT_EQ(k.streams[0].kind, StreamSpec::Kind::Chain);
    EXPECT_EQ(k.streams[0].footprint, 1u << 20);
    EXPECT_EQ(k.streams[0].elemBytes, 16u);
    // unroll=4 hops, each: loadi + ilogic + loadf + fadd + advance.
    const Kernel::Mix m = k.mix();
    EXPECT_EQ(m.loads, 8u);
    EXPECT_EQ(m.fpOps, 4u);
}

TEST(DslCorpus, HashJoinLoadsFeedTheirOwnAddress)
{
    const Kernel k = dsl::compileKernel(test::slurp(kernelPath("hash_join")));
    // The bucket loads write the gather's own index register: a true
    // load-to-address dependence.
    bool self_dep_load = false;
    for (const auto &op : k.ops)
        if (op.op == Opcode::LdI && op.stream >= 0 && op.dst >= 0 &&
            op.dst == k.streams[op.stream].addrReg)
            self_dep_load = true;
    EXPECT_TRUE(self_dep_load);
    // The hit branch skips the conflict-chain walk.
    bool skipping_branch = false;
    for (const auto &op : k.ops)
        skipping_branch |= op.op == Opcode::Br && op.skip == 2;
    EXPECT_TRUE(skipping_branch);
    EXPECT_EQ(k.ops.back().backedge, true);
}

TEST(DslCorpus, StencilConditionalsResolveAtCompileTime)
{
    const std::string text = test::slurp(kernelPath("stencil"));
    // Default taps=3 takes the else arm: exactly one store.
    const Kernel k3 = dsl::compileKernel(text);
    EXPECT_EQ(k3.mix().stores, 1u);
    // taps=5 takes the then arm (extra fadd) and unrolls more index
    // bookkeeping rows (ceil(5/2)=3 vs ceil(3/2)=2).
    const Kernel k5 = dsl::compileKernel(text, {{"taps", 5}});
    EXPECT_EQ(k5.mix().stores, 1u);
    EXPECT_EQ(k5.mix().fpOps, k3.mix().fpOps + 1);
    EXPECT_EQ(k5.mix().intOps, k3.mix().intOps + 2);
    // passes=2 doubles the sweep body.
    const Kernel k2p = dsl::compileKernel(text, {{"passes", 2}});
    EXPECT_EQ(k2p.mix().stores, 2u);
    EXPECT_EQ(k2p.mix().loads, 2 * k3.mix().loads);
}

TEST(DslCorpus, EveryCorpusKernelValidatesAndRuns)
{
    const char *names[] = {"tomcatv", "swim",  "su2cor",  "hydro2d",
                           "mgrid",   "applu", "turb3d",  "apsi",
                           "fpppp",   "wave5", "pointer_chase",
                           "hash_join", "stencil"};
    for (const char *name : names) {
        auto f = dsl::makeDslFactory(test::slurp(kernelPath(name)));
        auto sources = f->make(1, 1);
        ASSERT_EQ(sources.size(), 1u);
        TraceInst inst;
        for (int n = 0; n < 5000; ++n)
            ASSERT_TRUE(sources[0]->next(inst)) << name;
    }
}

// ---------------------------------------------------------------------
// Param overrides.
// ---------------------------------------------------------------------

TEST(DslParams, OverrideRescalesTheFootprint)
{
    const std::string text = test::slurp(kernelPath("pointer_chase"));
    const Kernel small = dsl::compileKernel(text, {{"footprint", 64 * 1024}});
    EXPECT_EQ(small.streams[0].footprint, 64u * 1024);
    const Kernel more = dsl::compileKernel(text, {{"unroll", 8}});
    EXPECT_EQ(more.mix().loads, 16u);
}

TEST(DslParams, OverridesChangeTheFingerprint)
{
    const std::string text = test::slurp(kernelPath("pointer_chase"));
    auto base = dsl::makeDslFactory(text);
    auto scaled = dsl::makeDslFactory(text, {{"footprint", 64 * 1024}});
    EXPECT_NE(base->fingerprint(), scaled->fingerprint());
    // Fingerprints are canonical: value spelling does not matter.
    auto same = dsl::makeDslFactory(text, {{"footprint", 1 << 20}});
    EXPECT_EQ(base->fingerprint(), same->fingerprint());
}

TEST(DslParams, UnknownOverrideIsAnError)
{
    const std::string text = test::slurp(kernelPath("pointer_chase"));
    try {
        dsl::compileKernel(text, {{"nope", 1}});
        FAIL() << "expected DslError";
    } catch (const dsl::DslError &e) {
        EXPECT_STREQ(e.what(),
                     "0:0: unknown param 'nope' (the kernel does not "
                     "declare it)");
    }
}

TEST(DslParams, CompiledParamsReportResolvedValues)
{
    const std::string text = test::slurp(kernelPath("pointer_chase"));
    const dsl::CompiledKernel c =
        dsl::compileDsl(text, {{"unroll", 2}});
    ASSERT_EQ(c.params.size(), 3u);
    EXPECT_EQ(c.params[0].first, "footprint");
    EXPECT_EQ(c.params[0].second, double(1 << 20));
    EXPECT_EQ(c.params[2].first, "unroll");
    EXPECT_EQ(c.params[2].second, 2.0);
}

// ---------------------------------------------------------------------
// Factory cloning and determinism.
// ---------------------------------------------------------------------

TEST(DslFactory, CloneIsIndistinguishable)
{
    const std::string text = test::slurp(kernelPath("hash_join"));
    auto f = dsl::makeDslFactory(text);
    auto c = f->clone();
    EXPECT_EQ(f->name(), c->name());
    EXPECT_EQ(f->fingerprint(), c->fingerprint());
    auto sa = f->make(1, 9);
    auto sb = c->make(1, 9);
    TraceInst ia, ib;
    for (int n = 0; n < 5000; ++n) {
        ASSERT_TRUE(sa[0]->next(ia));
        ASSERT_TRUE(sb[0]->next(ib));
        ASSERT_EQ(ia.addr, ib.addr);
        ASSERT_EQ(ia.taken, ib.taken);
    }
}

TEST(DslFactory, DistinctKernelNamesGetDistinctSlots)
{
    auto a = dsl::makeDslFactory(test::slurp(kernelPath("pointer_chase")));
    auto b = dsl::makeDslFactory(test::slurp(kernelPath("hash_join")));
    auto sa = a->make(1, 1);
    auto sb = b->make(1, 1);
    TraceInst ia, ib;
    // First memory access of each lands in a different data region.
    Addr addr_a = 0, addr_b = 0;
    while (sa[0]->next(ia))
        if (ia.addr != 0) { addr_a = ia.addr; break; }
    while (sb[0]->next(ib))
        if (ib.addr != 0) { addr_b = ib.addr; break; }
    EXPECT_NE(addr_a >> 28, addr_b >> 28);
}
