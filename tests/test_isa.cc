/**
 * @file
 * Unit tests for the ISA layer: opcode traits, the paper's steering
 * rule, register references and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/inst.hh"
#include "isa/opcode.hh"
#include "isa/reg.hh"

using namespace mtdae;

TEST(Opcode, LoadStoreClassification)
{
    EXPECT_TRUE(isLoad(Opcode::LdI));
    EXPECT_TRUE(isLoad(Opcode::LdF));
    EXPECT_FALSE(isLoad(Opcode::StF));
    EXPECT_TRUE(isStore(Opcode::StI));
    EXPECT_TRUE(isStore(Opcode::StF));
    EXPECT_FALSE(isStore(Opcode::LdI));
    EXPECT_TRUE(isMem(Opcode::LdF));
    EXPECT_TRUE(isMem(Opcode::StI));
    EXPECT_FALSE(isMem(Opcode::FAdd));
    EXPECT_FALSE(isMem(Opcode::Br));
}

TEST(Opcode, BranchClassification)
{
    EXPECT_TRUE(isBranch(Opcode::Br));
    EXPECT_TRUE(isBranch(Opcode::BrF));
    EXPECT_TRUE(isBranch(Opcode::Jmp));
    EXPECT_TRUE(isCondBranch(Opcode::Br));
    EXPECT_TRUE(isCondBranch(Opcode::BrF));
    EXPECT_FALSE(isCondBranch(Opcode::Jmp));
    EXPECT_FALSE(isBranch(Opcode::ICmp));
}

TEST(Opcode, SteeringRuleSendsAllMemoryToAp)
{
    // The paper: "memory instructions ... are all sent to the AP".
    EXPECT_EQ(unitOf(Opcode::LdI), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::LdF), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::StI), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::StF), Unit::AP);
}

TEST(Opcode, SteeringRuleByDataType)
{
    // Integer -> AP, floating point -> EP.
    EXPECT_EQ(unitOf(Opcode::IAdd), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::IMul), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::ICmp), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::FAdd), Unit::EP);
    EXPECT_EQ(unitOf(Opcode::FDiv), Unit::EP);
    EXPECT_EQ(unitOf(Opcode::FMA), Unit::EP);
    EXPECT_EQ(unitOf(Opcode::FCmp), Unit::EP);
}

TEST(Opcode, ControlResolvesOnAp)
{
    EXPECT_EQ(unitOf(Opcode::Br), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::BrF), Unit::AP);
    EXPECT_EQ(unitOf(Opcode::Jmp), Unit::AP);
}

TEST(Opcode, CrossMovesSteerByDestination)
{
    EXPECT_EQ(unitOf(Opcode::MovIF), Unit::EP);
    EXPECT_EQ(unitOf(Opcode::MovFI), Unit::AP);
}

TEST(Opcode, EveryOpcodeHasAMnemonic)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        const char *m = mnemonic(static_cast<Opcode>(i));
        ASSERT_NE(m, nullptr);
        EXPECT_GT(std::string(m).size(), 0u);
    }
}

TEST(RegRef, ValidityAndFactories)
{
    EXPECT_FALSE(RegRef::none().valid());
    EXPECT_TRUE(RegRef::intReg(0).valid());
    EXPECT_TRUE(RegRef::fpReg(31).valid());
    EXPECT_EQ(RegRef::intReg(5).cls, RegClass::Int);
    EXPECT_EQ(RegRef::fpReg(5).cls, RegClass::Fp);
    EXPECT_EQ(RegRef::intReg(5), RegRef::intReg(5));
    EXPECT_FALSE(RegRef::intReg(5) == RegRef::fpReg(5));
    EXPECT_FALSE(RegRef::intReg(5) == RegRef::intReg(6));
}

TEST(TraceInst, NumSrcsCountsValidOnly)
{
    TraceInst ti;
    EXPECT_EQ(ti.numSrcs(), 0);
    ti.src[0] = RegRef::intReg(1);
    EXPECT_EQ(ti.numSrcs(), 1);
    ti.src[1] = RegRef::fpReg(2);
    ti.src[2] = RegRef::fpReg(3);
    EXPECT_EQ(ti.numSrcs(), 3);
}

TEST(TraceInst, DisasmMentionsOperands)
{
    TraceInst ti;
    ti.op = Opcode::LdF;
    ti.pc = 0x1000;
    ti.dst = RegRef::fpReg(3);
    ti.src[0] = RegRef::intReg(7);
    ti.addr = 0xdead0;
    const std::string d = ti.disasm();
    EXPECT_NE(d.find("ldf"), std::string::npos);
    EXPECT_NE(d.find("f3"), std::string::npos);
    EXPECT_NE(d.find("r7"), std::string::npos);
    EXPECT_NE(d.find("dead0"), std::string::npos);
}

TEST(TraceInst, DisasmShowsBranchOutcome)
{
    TraceInst ti;
    ti.op = Opcode::Br;
    ti.src[0] = RegRef::intReg(1);
    ti.taken = true;
    EXPECT_NE(ti.disasm().find("[taken]"), std::string::npos);
    ti.taken = false;
    EXPECT_NE(ti.disasm().find("[not-taken]"), std::string::npos);
}

TEST(TraceInst, UnitFollowsOpcode)
{
    TraceInst ti;
    ti.op = Opcode::FMA;
    EXPECT_EQ(ti.unit(), Unit::EP);
    ti.op = Opcode::LdF;
    EXPECT_EQ(ti.unit(), Unit::AP);
}
