/**
 * @file
 * Unit tests for per-context machinery: register renaming, free lists,
 * scoreboards, stall-source classification and SAQ forwarding checks.
 */

#include <gtest/gtest.h>

#include "core/context.hh"
#include "tests/test_util.hh"

using namespace mtdae;
using namespace mtdae::test;

namespace {

Context
makeContext(const SimConfig &cfg)
{
    return Context(0, cfg, std::make_unique<KernelTraceSource>(
                              computeKernel(), 0, 0x1000, 1));
}

} // namespace

TEST(RegFile, InitialMappingIsIdentityAndReady)
{
    RegFile rf(32, 64);
    for (std::uint8_t i = 0; i < 32; ++i) {
        EXPECT_EQ(rf.map(i), i);
        EXPECT_TRUE(rf.ready(rf.map(i)));
    }
    EXPECT_EQ(rf.freeCount(), 32u);
}

TEST(RegFile, RenameAllocatesFreshAndRemembersOld)
{
    RegFile rf(32, 64);
    PhysReg old = kNoPhysReg;
    const PhysReg fresh = rf.rename(5, old);
    EXPECT_EQ(old, 5);
    EXPECT_NE(fresh, 5);
    EXPECT_EQ(rf.map(5), fresh);
    EXPECT_FALSE(rf.ready(fresh));
    EXPECT_EQ(rf.freeCount(), 31u);
}

TEST(RegFile, ReleaseRecycles)
{
    RegFile rf(32, 34);
    PhysReg old;
    rf.rename(0, old);
    rf.rename(0, old);  // old == first rename's phys
    EXPECT_FALSE(rf.hasFree());
    rf.release(old);
    EXPECT_TRUE(rf.hasFree());
}

TEST(RegFile, RenameChainPreservesOldMappings)
{
    RegFile rf(32, 64);
    PhysReg old1, old2;
    const PhysReg p1 = rf.rename(3, old1);
    const PhysReg p2 = rf.rename(3, old2);
    EXPECT_EQ(old1, 3);
    EXPECT_EQ(old2, p1);
    EXPECT_EQ(rf.map(3), p2);
}

TEST(RegFileDeath, RenameWithEmptyFreeListPanics)
{
    RegFile rf(32, 33);
    PhysReg old;
    rf.rename(0, old);
    EXPECT_DEATH(rf.rename(1, old), "free list");
}

TEST(Context, OperandsReadyChecksBothFiles)
{
    const SimConfig cfg = testConfig();
    Context ctx = makeContext(cfg);

    DynInst di;
    di.ti.op = Opcode::MovIF;
    di.ti.dst = RegRef::fpReg(1);
    di.ti.src[0] = RegRef::intReg(4);
    di.physSrc[0] = ctx.intRegs.map(4);
    EXPECT_TRUE(ctx.operandsReady(di));

    // Rename the source: now produced by an in-flight instruction.
    PhysReg old;
    const PhysReg fresh = ctx.intRegs.rename(4, old);
    di.physSrc[0] = fresh;
    EXPECT_FALSE(ctx.operandsReady(di));
    ctx.intRegs.setReady(fresh);
    EXPECT_TRUE(ctx.operandsReady(di));
}

TEST(Context, StallSourceClassifiesLoadVsFu)
{
    const SimConfig cfg = testConfig();
    Context ctx = makeContext(cfg);

    PhysReg old;
    const PhysReg from_fu = ctx.fpRegs.rename(1, old);
    ctx.fpRegs.producer(from_fu).kind = Producer::Kind::Fu;
    const PhysReg from_ld = ctx.fpRegs.rename(2, old);
    ctx.fpRegs.producer(from_ld).kind = Producer::Kind::Load;
    ctx.fpRegs.producer(from_ld).missToken = 7;

    DynInst di;
    di.ti.op = Opcode::FAdd;
    di.ti.dst = RegRef::fpReg(3);
    di.ti.src[0] = RegRef::fpReg(1);
    di.physSrc[0] = from_fu;

    std::uint32_t tok = PerceivedTracker::kNoToken;
    EXPECT_EQ(ctx.stallSource(di, tok), Producer::Kind::Fu);

    // A load-produced operand wins the classification (it carries the
    // token the perceived-latency metric needs).
    di.ti.src[1] = RegRef::fpReg(2);
    di.physSrc[1] = from_ld;
    EXPECT_EQ(ctx.stallSource(di, tok), Producer::Kind::Load);
    EXPECT_EQ(tok, 7u);
}

TEST(Context, StoreStallsOnlyOnAddressAtIssue)
{
    const SimConfig cfg = testConfig();
    Context ctx = makeContext(cfg);

    PhysReg old;
    const PhysReg data = ctx.fpRegs.rename(1, old);  // not ready

    DynInst st;
    st.ti.op = Opcode::StF;
    st.ti.src[0] = RegRef::intReg(2);  // address: ready
    st.ti.src[1] = RegRef::fpReg(1);   // data: in flight
    st.physSrc[0] = ctx.intRegs.map(2);
    st.physSrc[1] = data;

    EXPECT_TRUE(ctx.storeAddrReady(st));
    EXPECT_FALSE(ctx.storeDataReady(st));
    // stallSource ignores the data operand of a store at issue time.
    std::uint32_t tok;
    EXPECT_EQ(ctx.stallSource(st, tok), Producer::Kind::None);

    ctx.fpRegs.setReady(data);
    EXPECT_TRUE(ctx.storeDataReady(st));
}

TEST(Context, SaqForwardingMatchesSameWordOlderStores)
{
    const SimConfig cfg = testConfig();
    Context ctx = makeContext(cfg);

    SaqEntry e;
    e.seq = 10;
    e.addrValid = true;
    e.addr = 0x1000;
    ctx.saq.push_back(e);

    EXPECT_TRUE(ctx.saqForwards(11, 0x1000));
    EXPECT_TRUE(ctx.saqForwards(11, 0x1004));   // same 8-byte word
    EXPECT_FALSE(ctx.saqForwards(11, 0x1008));  // next word
    EXPECT_FALSE(ctx.saqForwards(10, 0x1000));  // not older than itself
    EXPECT_FALSE(ctx.saqForwards(9, 0x1000));   // store is younger

    // Address not yet generated: nothing to forward from.
    ctx.saq.front().addrValid = false;
    EXPECT_FALSE(ctx.saqForwards(11, 0x1000));
}

TEST(PerceivedTracker, AccumulatesPerMissAndAverages)
{
    PerceivedTracker p;
    const std::uint32_t a = p.open(false);  // FP miss
    const std::uint32_t b = p.open(true);   // int miss
    p.stall(a);
    p.stall(a);
    p.stall(b);
    p.close(a);
    p.close(b);
    EXPECT_EQ(p.fpMisses(), 1u);
    EXPECT_EQ(p.intMisses(), 1u);
    EXPECT_DOUBLE_EQ(p.fpPerceived(), 2.0);
    EXPECT_DOUBLE_EQ(p.intPerceived(), 1.0);
}

TEST(PerceivedTracker, ZeroStallMissesCountInDenominator)
{
    PerceivedTracker p;
    p.close(p.open(false));
    const std::uint32_t t = p.open(false);
    p.stall(t);
    p.stall(t);
    p.close(t);
    // Two misses, two stall cycles total: fully-hidden misses dilute.
    EXPECT_DOUBLE_EQ(p.fpPerceived(), 1.0);
}

TEST(PerceivedTracker, TokensAreRecycled)
{
    PerceivedTracker p;
    const std::uint32_t a = p.open(false);
    p.close(a);
    const std::uint32_t b = p.open(true);
    EXPECT_EQ(a, b);  // slot reused
    p.close(b);
}

TEST(PerceivedTrackerDeath, DoubleClosePanics)
{
    PerceivedTracker p;
    const std::uint32_t a = p.open(false);
    p.close(a);
    EXPECT_DEATH(p.close(a), "close");
}

TEST(PerceivedTracker, ResetKeepsOpenMisses)
{
    PerceivedTracker p;
    const std::uint32_t a = p.open(false);
    p.stall(a);
    p.resetStats();
    p.stall(a);
    p.close(a);
    EXPECT_EQ(p.fpMisses(), 1u);
    // Stalls from before the reset were accumulated into the token and
    // survive (the miss closes after the measurement boundary).
    EXPECT_DOUBLE_EQ(p.fpPerceived(), 2.0);
}
