/**
 * @file
 * Tests of the experiment harness: paper configurations, run drivers
 * and environment-variable plumbing.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workload/spec_fp95.hh"

using namespace mtdae;

TEST(Harness, PaperLatenciesMatchTheSweep)
{
    const auto &lats = paperLatencies();
    ASSERT_EQ(lats.size(), 6u);
    EXPECT_EQ(lats.front(), 1u);
    EXPECT_EQ(lats.back(), 256u);
}

TEST(Harness, PaperConfigSetsSweepKnobs)
{
    const SimConfig c = paperConfig(3, false, 64);
    EXPECT_EQ(c.numThreads, 3u);
    EXPECT_FALSE(c.decoupled);
    EXPECT_EQ(c.l2Latency, 64u);
    // Queue scaling applied: factor 4.
    EXPECT_EQ(c.iqEntries, 48u * 4);

    const SimConfig u = paperConfig(2, true, 64, /*scale=*/false);
    EXPECT_EQ(u.iqEntries, 48u);
    EXPECT_EQ(u.l2Latency, 64u);
}

TEST(Harness, RunBenchmarkProducesSaneResults)
{
    SimConfig cfg = paperConfig(1, true, 16);
    cfg.warmupInsts = 5000;
    const RunResult r = runBenchmark(cfg, "tomcatv", 20000);
    EXPECT_GE(r.insts, 20000u);
    EXPECT_GT(r.ipc, 0.5);
    EXPECT_LT(r.ipc, 8.0);
    EXPECT_GT(r.loadMissRatio, 0.05);
}

TEST(Harness, RunSuiteMixUsesAllThreads)
{
    SimConfig cfg = paperConfig(2, true, 16);
    cfg.warmupInsts = 5000;
    const RunResult r = runSuiteMix(cfg, 40000);
    EXPECT_GE(r.insts, 40000u);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Harness, InstsBudgetHonoursEnvironment)
{
    ::unsetenv("MTDAE_MEASURE_INSTS");
    EXPECT_EQ(instsBudget(1234), 1234u);
    ::setenv("MTDAE_MEASURE_INSTS", "99999", 1);
    EXPECT_EQ(instsBudget(1234), 99999u);
    ::setenv("MTDAE_MEASURE_INSTS", "garbage", 1);
    EXPECT_EQ(instsBudget(1234), 1234u);
    ::unsetenv("MTDAE_MEASURE_INSTS");
}

TEST(Harness, ResultsDirHonoursEnvironment)
{
    ::setenv("MTDAE_RESULTS_DIR", "/tmp/mtdae_results_test", 1);
    EXPECT_EQ(resultsDir(), "/tmp/mtdae_results_test");
    ::unsetenv("MTDAE_RESULTS_DIR");
}

TEST(Harness, DeterministicAcrossRuns)
{
    SimConfig cfg = paperConfig(2, true, 16);
    cfg.warmupInsts = 3000;
    const RunResult a = runSuiteMix(cfg, 30000);
    const RunResult b = runSuiteMix(cfg, 30000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.perceivedAll, b.perceivedAll);
}

TEST(Harness, SeedChangesGatherBehaviour)
{
    SimConfig a = paperConfig(1, true, 16);
    a.warmupInsts = 3000;
    SimConfig b = a;
    b.seed = 999;
    const RunResult ra = runBenchmark(a, "su2cor", 20000);
    const RunResult rb = runBenchmark(b, "su2cor", 20000);
    EXPECT_NE(ra.cycles, rb.cycles);
}
