/**
 * @file
 * Tests of the parallel sweep engine (harness/sweep.hh): per-job seed
 * derivation, grid ordering, bit-identical serial vs. parallel results,
 * error propagation from worker threads, and the CLI plumbing
 * (--jobs / --seed).
 */

#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"

using namespace mtdae;

namespace {

SimConfig
tinyCfg(std::uint32_t threads, std::uint32_t lat)
{
    SimConfig cfg = paperConfig(threads, true, lat);
    cfg.warmupInsts = 500;
    return cfg;
}

/** A small but non-trivial grid: 2 thread counts x 2 L2 latencies. */
SweepSpec
tinyGrid()
{
    SweepSpec spec;
    for (const std::uint32_t n : {1u, 2u})
        for (const std::uint32_t lat : {1u, 16u})
            spec.addSuiteMix(tinyCfg(n, lat), 3000 * n,
                             std::to_string(n) + "T L2=" +
                                 std::to_string(lat));
    return spec;
}

/** Assert bit-identical results: every field, exact double equality. */
void
expectSameResult(const RunResult &a, const RunResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.perceivedFp, b.perceivedFp) << what;
    EXPECT_EQ(a.perceivedInt, b.perceivedInt) << what;
    EXPECT_EQ(a.perceivedAll, b.perceivedAll) << what;
    EXPECT_EQ(a.fpMisses, b.fpMisses) << what;
    EXPECT_EQ(a.intMisses, b.intMisses) << what;
    EXPECT_EQ(a.loadMissRatio, b.loadMissRatio) << what;
    EXPECT_EQ(a.storeMissRatio, b.storeMissRatio) << what;
    EXPECT_EQ(a.missRatio, b.missRatio) << what;
    EXPECT_EQ(a.mergedRatio, b.mergedRatio) << what;
    EXPECT_EQ(a.busUtilization, b.busUtilization) << what;
    EXPECT_EQ(a.avgFillLatency, b.avgFillLatency) << what;
    EXPECT_EQ(a.l2MissRatio, b.l2MissRatio) << what;
    EXPECT_EQ(a.dramRowHitRatio, b.dramRowHitRatio) << what;
    EXPECT_EQ(a.dramBusUtilization, b.dramBusUtilization) << what;
    EXPECT_EQ(a.mispredictRate, b.mispredictRate) << what;
    EXPECT_EQ(a.ap.counts, b.ap.counts) << what;
    EXPECT_EQ(a.ep.counts, b.ep.counts) << what;
}

/** A workload recipe whose make() throws, for error propagation. */
class ThrowingFactory : public TraceSourceFactory
{
  public:
    std::vector<std::unique_ptr<TraceSource>>
    make(std::uint32_t, std::uint64_t) const override
    {
        throw std::runtime_error("trace source exploded");
    }

    std::unique_ptr<TraceSourceFactory>
    clone() const override
    {
        return std::make_unique<ThrowingFactory>();
    }

    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "throwing";
};

} // namespace

TEST(DeriveSeed, DeterministicAndDecorrelated)
{
    EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(1, 1));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
    // Substreams of nearby bases stay distinct (splitmix64 mixing).
    EXPECT_NE(deriveSeed(1, 1), deriveSeed(2, 0));
}

TEST(SweepSpec, AssignsIndicesLabelsAndDerivedSeeds)
{
    const SweepSpec spec = tinyGrid();
    ASSERT_EQ(spec.size(), 4u);
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const SimJob &job = spec.jobs()[i];
        EXPECT_EQ(job.index, i);
        EXPECT_FALSE(job.label.empty());
        // The base seed (paperConfig default 1) is rewritten per job.
        EXPECT_EQ(job.cfg.seed, deriveSeed(1, i));
        ASSERT_NE(job.sources, nullptr);
        EXPECT_EQ(job.sources->name(), "suite-mix");
    }
    EXPECT_EQ(spec.jobs()[1].cfg.numThreads, 1u);
    EXPECT_EQ(spec.jobs()[1].cfg.l2Latency, 16u);
    EXPECT_EQ(spec.jobs()[2].cfg.numThreads, 2u);
}

TEST(SimJob, CopyClonesTheFactoryAndRunsIdentically)
{
    SweepSpec spec;
    spec.addBenchmark(tinyCfg(1, 16), "tomcatv", 2000);
    const SimJob &original = spec.jobs()[0];
    const SimJob copy = original;  // deep copy via factory clone()
    ASSERT_NE(copy.sources, nullptr);
    EXPECT_NE(copy.sources.get(), original.sources.get());
    expectSameResult(original.run(), copy.run(), "clone");
}

TEST(JobRunner, SerialAndParallelAreBitIdentical)
{
    const SweepSpec spec = tinyGrid();
    const std::vector<RunResult> serial = JobRunner(1).run(spec);
    const std::vector<RunResult> parallel = JobRunner(8).run(spec);
    ASSERT_EQ(serial.size(), spec.size());
    ASSERT_EQ(parallel.size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i)
        expectSameResult(serial[i], parallel[i],
                         "job " + spec.jobs()[i].label);
}

TEST(JobRunner, RealMemoryBackendIsBitIdenticalToo)
{
    // Same guarantee with the finite L2 + DRAM backend: its emergent
    // stats (avg fill, L2 miss, row hits, DRAM bus) are reservation
    // arithmetic inside the job, never shared across workers.
    SweepSpec spec;
    for (const std::uint32_t n : {1u, 2u}) {
        SimConfig cfg = tinyCfg(n, 16);
        cfg.perfectL2 = false;
        spec.addSuiteMix(cfg, 3000 * n,
                         std::to_string(n) + "T real backend");
    }
    const std::vector<RunResult> serial = JobRunner(1).run(spec);
    const std::vector<RunResult> parallel = JobRunner(8).run(spec);
    ASSERT_EQ(parallel.size(), spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) {
        expectSameResult(serial[i], parallel[i],
                         "job " + spec.jobs()[i].label);
        EXPECT_GT(serial[i].avgFillLatency, 0.0);
        EXPECT_GT(serial[i].l2MissRatio, 0.0);
    }
}

TEST(JobRunner, ResultsArriveInGridOrder)
{
    // Give every job a distinct instruction budget; the result at
    // index i must come from job i no matter which worker ran it.
    SweepSpec spec;
    for (std::size_t i = 0; i < 4; ++i)
        spec.addSuiteMix(tinyCfg(1, 1), 2000 + 1000 * i);
    const std::vector<RunResult> results = JobRunner(4).run(spec);
    ASSERT_EQ(results.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GE(results[i].insts, 2000 + 1000 * i) << i;
        EXPECT_LT(results[i].insts, 3000 + 1000 * i) << i;
    }
}

TEST(JobRunner, ProgressReportsEveryJobExactlyOnce)
{
    const SweepSpec spec = tinyGrid();
    std::vector<int> started(spec.size(), 0);
    JobRunner(4).run(spec, [&](const SimJob &job) {
        started.at(job.index) += 1;
    });
    for (const int n : started)
        EXPECT_EQ(n, 1);
}

TEST(JobRunner, ErrorsPropagateToTheCaller)
{
    for (const std::uint32_t workers : {1u, 4u}) {
        SweepSpec spec;
        spec.addSuiteMix(tinyCfg(1, 1), 1000);
        spec.add(tinyCfg(1, 1), std::make_unique<ThrowingFactory>(),
                 1000);
        spec.addSuiteMix(tinyCfg(1, 1), 1000);
        EXPECT_THROW(JobRunner(workers).run(spec), std::runtime_error)
            << workers << " workers";
    }
}

TEST(JobRunner, WorkerCountResolution)
{
    EXPECT_GE(defaultJobs(), 1u);
    EXPECT_EQ(JobRunner(0).workers(), defaultJobs());
    EXPECT_EQ(JobRunner(3).workers(), 3u);
    // An empty spec is a no-op at any worker count.
    EXPECT_TRUE(JobRunner(4).run(SweepSpec()).empty());
}

TEST(SweepEnv, JobsAndSeedHonourEnvironment)
{
    ::setenv("MTDAE_JOBS", "5", 1);
    EXPECT_EQ(envJobs(), 5u);
    ::setenv("MTDAE_JOBS", "garbage", 1);
    EXPECT_EQ(envJobs(), defaultJobs());
    ::unsetenv("MTDAE_JOBS");
    EXPECT_EQ(envJobs(), defaultJobs());

    ::setenv("MTDAE_SEED", "42", 1);
    EXPECT_EQ(envSeed(), 42u);
    ::unsetenv("MTDAE_SEED");
    EXPECT_EQ(envSeed(), SimConfig().seed);
}

TEST(SweepCli, ParsesJobsAndSeedFlags)
{
    cli::Options opts;
    std::string error;
    ASSERT_TRUE(cli::parseArgs({"fig4", "--jobs=8", "--seed=42"}, opts,
                               error))
        << error;
    EXPECT_EQ(opts.jobs, 8u);
    SimConfig cfg;
    ASSERT_TRUE(cli::applyOverrides(cfg, opts, error)) << error;
    EXPECT_EQ(cfg.seed, 42u);
}

TEST(SweepCli, RejectsBadJobs)
{
    for (const char *flag : {"--jobs=0", "--jobs=x", "--jobs=-2"}) {
        cli::Options opts;
        std::string error;
        EXPECT_FALSE(cli::parseArgs({"fig4", flag}, opts, error))
            << flag;
        EXPECT_FALSE(error.empty()) << flag;
    }
}

TEST(SweepCli, ParallelJsonOutputIsByteIdenticalToSerial)
{
    const std::vector<std::string> base = {
        "fig4",   "--threads-list=1,2", "--latencies=1,16",
        "--insts=1500", "--warmup=300", "--quiet",
        "--json"};
    auto run_with = [&](const std::string &jobs) {
        std::vector<std::string> args = base;
        args.push_back(jobs);
        std::ostringstream out, err;
        EXPECT_EQ(cli::runCli(args, out, err), 0) << err.str();
        return out.str();
    };
    const std::string serial = run_with("--jobs=1");
    const std::string parallel = run_with("--jobs=4");
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(SweepCli, AblateDslParallelIsByteIdenticalToSerial)
{
    // The DSL param grid is a first-class sweep axis: per-job seeds are
    // derived from the grid index, so the worker count cannot leak into
    // the results.
    const std::vector<std::string> base = {
        "ablate-dsl",
        "--kernel-file=" + std::string(MTDAE_SOURCE_DIR) +
            "/examples/kernels/hash_join.mk",
        "--kernel-param=build_bytes=64K,1M",
        "--kernel-param=hit_prob=0.5,0.9",
        "--threads-list=1,2",
        "--insts=800",
        "--warmup=300",
        "--quiet",
        "--json"};
    auto run_with = [&](const std::string &jobs) {
        std::vector<std::string> args = base;
        args.push_back(jobs);
        std::ostringstream out, err;
        EXPECT_EQ(cli::runCli(args, out, err), 0) << err.str();
        return out.str();
    };
    const std::string serial = run_with("--jobs=1");
    const std::string parallel = run_with("--jobs=8");
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    // All 2x2x2 grid points are present: each param axis is a column.
    EXPECT_NE(serial.find("\"kernel\": \"hash_join\", \"build_bytes\": "
                          "65536, \"hit_prob\": 0.5, \"threads\": 1"),
              std::string::npos);
    EXPECT_NE(serial.find("\"kernel\": \"hash_join\", \"build_bytes\": "
                          "1048576, \"hit_prob\": 0.9, \"threads\": 2"),
              std::string::npos);
}

TEST(SweepSpec, DslPrefixKeysFoldTheKernelParams)
{
    const std::string text =
        dsl::readKernelFile(std::string(MTDAE_SOURCE_DIR) +
                            "/examples/kernels/pointer_chase.mk");
    SweepSpec spec;
    const SimConfig cfg = tinyCfg(1, 16);
    // Same kernel+params on one seed stream: shared warmup prefix even
    // with different measure budgets. Overridden params break the
    // group.
    spec.addDsl(cfg, text, {}, 1000, "a", 5);
    spec.addDsl(cfg, text, {}, 2000, "b", 5);
    spec.addDsl(cfg, text, {{"footprint", 64 * 1024}}, 1000, "c", 5);
    const auto &jobs = spec.jobs();
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].prefixKey(), jobs[1].prefixKey());
    EXPECT_NE(jobs[0].prefixKey(), jobs[2].prefixKey());
}
