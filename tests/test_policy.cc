/**
 * @file
 * The thread-arbitration policy layer (src/policy/policy.hh): ordering
 * rules of every policy, the rotation mechanics, the Simulator's
 * policy plumbing, per-policy sweep determinism at different worker
 * counts, and the golden-CSV regression pinning the default policies
 * to the pre-policy-layer simulator byte for byte.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "policy/policy.hh"
#include "test_util.hh"

namespace mtdae {
namespace {

SimConfig
threadedCfg(std::uint32_t nthreads, PolicyKind fetch, PolicyKind issue)
{
    SimConfig cfg;
    cfg.numThreads = nthreads;
    cfg.fetchPolicy = fetch;
    cfg.issuePolicy = issue;
    return cfg;
}

/** n default-constructed snapshots with tids assigned. */
std::vector<ThreadState>
blankStates(std::uint32_t n)
{
    std::vector<ThreadState> ts(n);
    for (std::uint32_t i = 0; i < n; ++i)
        ts[i].tid = i;
    return ts;
}

using Order = std::vector<ThreadId>;

TEST(PolicyNames, RoundTripAndRejects)
{
    EXPECT_EQ(allPolicies().size(), 9u);
    for (const PolicyKind k : allPolicies()) {
        PolicyKind parsed;
        ASSERT_TRUE(parsePolicy(policyName(k), parsed)) << policyName(k);
        EXPECT_EQ(parsed, k);
    }
    PolicyKind parsed;
    EXPECT_FALSE(parsePolicy("bogus", parsed));
    EXPECT_FALSE(parsePolicy("", parsed));
    EXPECT_FALSE(parsePolicy("ICOUNT", parsed));
}

TEST(PolicyNames, SeamRegistriesPartitionThePolicies)
{
    // Every policy is valid on at least one seam, the per-seam
    // registries list exactly the policies their predicate admits, and
    // the gating/per-unit policies are confined to their seam.
    EXPECT_EQ(fetchPolicies().size(), 8u);
    EXPECT_EQ(issuePolicies().size(), 6u);
    for (const PolicyKind k : allPolicies()) {
        EXPECT_TRUE(policyIsFetch(k) || policyIsIssue(k))
            << policyName(k);
        const auto &fp = fetchPolicies();
        const auto &ip = issuePolicies();
        EXPECT_EQ(std::count(fp.begin(), fp.end(), k),
                  policyIsFetch(k) ? 1 : 0)
            << policyName(k);
        EXPECT_EQ(std::count(ip.begin(), ip.end(), k),
                  policyIsIssue(k) ? 1 : 0)
            << policyName(k);
    }
    EXPECT_FALSE(policyIsIssue(PolicyKind::Stall));
    EXPECT_FALSE(policyIsIssue(PolicyKind::Flush));
    EXPECT_FALSE(policyIsFetch(PolicyKind::Split));
}

TEST(PolicyNames, FactoriesReportTheirRegistryName)
{
    for (const PolicyKind k : fetchPolicies()) {
        SimConfig cfg = threadedCfg(2, k, PolicyKind::RoundRobin);
        EXPECT_EQ(makeFetchPolicy(cfg)->name(), policyName(k));
    }
    for (const PolicyKind k : issuePolicies()) {
        SimConfig cfg = threadedCfg(2, PolicyKind::Icount, k);
        EXPECT_EQ(makeArbitrationPolicy(cfg)->name(), policyName(k));
    }
}

TEST(PolicyNames, ValidateRejectsWrongSeamAssignment)
{
    SimConfig bad_issue;
    bad_issue.issuePolicy = PolicyKind::Stall;
    EXPECT_DEATH(bad_issue.validate(), "not a dispatch/issue policy");
    SimConfig bad_fetch;
    bad_fetch.fetchPolicy = PolicyKind::Split;
    EXPECT_DEATH(bad_fetch.validate(), "not a fetch policy");
}

TEST(FetchPolicyTest, RoundRobinRotatesOneStepPerCycle)
{
    const auto ts = blankStates(3);
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::RoundRobin,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
}

TEST(FetchPolicyTest, IcountSortsByFetchBufferOccupancy)
{
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 5;
    ts[1].fetchBufOccupancy = 0;
    ts[2].fetchBufOccupancy = 3;
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::Icount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
}

TEST(FetchPolicyTest, IcountTiesFollowTheRotation)
{
    const auto ts = blankStates(3);  // all occupancies equal
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::Icount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
}

TEST(FetchPolicyTest, BrcountPrefersFewestUnresolvedBranches)
{
    auto ts = blankStates(3);
    ts[0].unresolvedBranches = 2;
    ts[1].unresolvedBranches = 4;
    ts[2].unresolvedBranches = 0;
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::BrCount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
}

TEST(FetchPolicyTest, MisscountPrefersFewestOutstandingMisses)
{
    auto ts = blankStates(4);
    ts[0].outstandingMisses = 1;
    ts[1].outstandingMisses = 0;
    ts[2].outstandingMisses = 7;
    ts[3].outstandingMisses = 0;
    auto pol = makeFetchPolicy(threadedCfg(4, PolicyKind::MissCount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 3, 0, 2}));
}

TEST(ArbitrationPolicyTest, RoundRobinOrdersAllPointsIdentically)
{
    const auto ts = blankStates(4);
    auto pol = makeArbitrationPolicy(
        threadedCfg(4, PolicyKind::Icount, PolicyKind::RoundRobin));
    Order dispatch, ap, ep;
    pol->dispatchOrder(ts, dispatch);
    pol->issueOrder(Unit::AP, ts, ap);
    pol->issueOrder(Unit::EP, ts, ep);
    EXPECT_EQ(dispatch, Order({0, 1, 2, 3}));
    EXPECT_EQ(ap, dispatch);
    EXPECT_EQ(ep, dispatch);
    pol->endCycle();
    pol->dispatchOrder(ts, dispatch);
    EXPECT_EQ(dispatch, Order({1, 2, 3, 0}));
}

TEST(ArbitrationPolicyTest, IcountRanksByFrontEndOccupancy)
{
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 1;  // total 6
    ts[0].apQueueOccupancy = 2;
    ts[0].iqOccupancy = 3;
    ts[1].fetchBufOccupancy = 8;  // total 8
    ts[2].iqOccupancy = 2;        // total 2
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::Icount));
    Order order;
    pol->issueOrder(Unit::AP, ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
}

TEST(ArbitrationPolicyTest, MisscountRanksByOutstandingMisses)
{
    auto ts = blankStates(3);
    ts[0].outstandingMisses = 3;
    ts[1].outstandingMisses = 3;  // tie with 0: rotation order holds
    ts[2].outstandingMisses = 1;
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::MissCount));
    Order order;
    pol->dispatchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
}

TEST(GatingPolicyTest, StallVetoesThreadsWithOutstandingMisses)
{
    auto ts = blankStates(3);
    ts[1].outstandingMisses = 2;
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::Stall,
                                           PolicyKind::RoundRobin));
    EXPECT_TRUE(pol->mayFetch(ts[0]));
    EXPECT_FALSE(pol->mayFetch(ts[1]));
    EXPECT_TRUE(pol->mayFetch(ts[2]));
    // STALL suspends fetch but never squashes the buffer.
    ts[1].fetchBufOccupancy = 4;
    EXPECT_FALSE(pol->shouldFlush(ts[1]));
}

TEST(GatingPolicyTest, FlushVetoesAndRequestsTheSquash)
{
    auto ts = blankStates(2);
    ts[0].outstandingMisses = 1;
    ts[0].fetchBufOccupancy = 4;
    auto pol = makeFetchPolicy(threadedCfg(2, PolicyKind::Flush,
                                           PolicyKind::RoundRobin));
    EXPECT_FALSE(pol->mayFetch(ts[0]));
    EXPECT_TRUE(pol->shouldFlush(ts[0]));
    EXPECT_TRUE(pol->mayFetch(ts[1]));
    EXPECT_FALSE(pol->shouldFlush(ts[1]));
}

TEST(GatingPolicyTest, GatingRanksLikeIcountAndRotates)
{
    // Ordering among non-vetoed threads is the ICOUNT shape: rotation
    // stably sorted by fetch-buffer occupancy.
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 5;
    ts[2].fetchBufOccupancy = 3;
    for (const PolicyKind k : {PolicyKind::Stall, PolicyKind::Flush}) {
        auto pol = makeFetchPolicy(
            threadedCfg(3, k, PolicyKind::RoundRobin));
        Order order;
        pol->fetchOrder(ts, order);
        EXPECT_EQ(order, Order({1, 2, 0})) << policyName(k);
        // Ties keep the rotation order, which advances once per cycle.
        const auto tied = blankStates(3);
        pol->endCycle();
        pol->fetchOrder(tied, order);
        EXPECT_EQ(order, Order({1, 2, 0})) << policyName(k);
        pol->endCycle();
        pol->fetchOrder(tied, order);
        EXPECT_EQ(order, Order({2, 0, 1})) << policyName(k);
    }
}

TEST(GatingPolicyTest, OrderingPoliciesNeverVetoOrFlush)
{
    auto ts = blankStates(2);
    ts[0].outstandingMisses = 9;
    ts[0].fetchBufOccupancy = 9;
    for (const PolicyKind k :
         {PolicyKind::Icount, PolicyKind::RoundRobin, PolicyKind::BrCount,
          PolicyKind::MissCount}) {
        auto pol =
            makeFetchPolicy(threadedCfg(2, k, PolicyKind::RoundRobin));
        EXPECT_TRUE(pol->mayFetch(ts[0])) << policyName(k);
        EXPECT_FALSE(pol->shouldFlush(ts[0])) << policyName(k);
    }
}

TEST(SplitPolicyTest, ApOrdersByMissesEpByWindowedIq)
{
    auto ts = blankStates(3);
    ts[0].outstandingMisses = 4;
    ts[1].outstandingMisses = 0;
    ts[2].outstandingMisses = 2;
    ts[0].iqOccupancyWindow = 10;
    ts[1].iqOccupancyWindow = 500;
    ts[2].iqOccupancyWindow = 40;
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::Split));
    Order ap, ep;
    pol->issueOrder(Unit::AP, ts, ap);
    pol->issueOrder(Unit::EP, ts, ep);
    EXPECT_EQ(ap, Order({1, 2, 0}));  // fewest outstanding misses first
    EXPECT_EQ(ep, Order({0, 2, 1}));  // fewest windowed IQ occupancy
}

TEST(SplitPolicyTest, DispatchUsesTheFrontEndIcountKey)
{
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 2;  // front end 6
    ts[0].apQueueOccupancy = 1;
    ts[0].iqOccupancy = 3;
    ts[1].iqOccupancy = 1;        // front end 1
    ts[2].fetchBufOccupancy = 9;  // front end 9
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::Split));
    Order order;
    pol->dispatchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 0, 2}));
}

TEST(SplitPolicyTest, TiesFollowTheRotation)
{
    const auto ts = blankStates(3);  // all keys equal
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::Split));
    Order order;
    pol->issueOrder(Unit::AP, ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
    pol->endCycle();
    pol->issueOrder(Unit::EP, ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
}

TEST(SimulatorPolicy, DefaultsAreThePaperPolicies)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.fetchPolicy, PolicyKind::Icount);
    EXPECT_EQ(cfg.issuePolicy, PolicyKind::RoundRobin);
}

TEST(SimulatorPolicy, EveryPolicyPairMakesForwardProgress)
{
    // All thirty valid fetch x issue pairs must graduate instructions
    // on a multithreaded machine — a policy that starves a thread
    // (gating included: a vetoed thread must resume when its miss
    // drains) would trip the simulator's deadlock guard or stall the
    // suite mix.
    for (const PolicyKind fp : fetchPolicies()) {
        for (const PolicyKind ip : issuePolicies()) {
            SimConfig cfg = paperConfig(2, true, 16);
            cfg.warmupInsts = 500;
            cfg.fetchPolicy = fp;
            cfg.issuePolicy = ip;
            const RunResult r = runSuiteMix(cfg, 4000);
            EXPECT_GE(r.insts, 4000u)
                << policyName(fp) << "/" << policyName(ip);
            EXPECT_GT(r.ipc, 0.0)
                << policyName(fp) << "/" << policyName(ip);
        }
    }
}

TEST(SimulatorPolicy, RepeatedRunsAreDeterministicPerPolicy)
{
    // Each policy on its valid seam(s); the other seam stays at its
    // default so gating and split are exercised in isolation.
    for (const PolicyKind k : allPolicies()) {
        SimConfig cfg = paperConfig(3, true, 64);
        cfg.warmupInsts = 500;
        if (policyIsFetch(k))
            cfg.fetchPolicy = k;
        if (policyIsIssue(k))
            cfg.issuePolicy = k;
        const RunResult a = runSuiteMix(cfg, 3000);
        const RunResult b = runSuiteMix(cfg, 3000);
        EXPECT_EQ(a.cycles, b.cycles) << policyName(k);
        EXPECT_EQ(a.insts, b.insts) << policyName(k);
        EXPECT_EQ(a.fpMisses, b.fpMisses) << policyName(k);
    }
}

TEST(SimulatorPolicy, StallNeverFetchesIntoAnOutstandingMiss)
{
    // The veto invariant, checked against the machine itself: at the
    // end of any cycle, a stall-gated thread with an outstanding L1
    // load miss has fetched nothing that cycle. A small L1 over the
    // streaming kernel makes misses plentiful.
    // Misses open at issue, which runs *before* fetch within a step,
    // so a miss outstanding at the end of a step was already visible
    // to that step's fetch snapshot: the veto makes "outstanding miss
    // at end of cycle" and "fetch buffer grew this cycle" mutually
    // exclusive.
    SimConfig cfg = test::testConfig(2, true, 64);
    cfg.fetchPolicy = PolicyKind::Stall;
    cfg.l1Bytes = 1024;
    Simulator sim = test::makeSim(cfg, test::streamingKernel());
    std::uint64_t gated_observations = 0;
    std::vector<std::size_t> buf_before(cfg.numThreads);
    for (int i = 0; i < 2000; ++i) {
        for (ThreadId t = 0; t < cfg.numThreads; ++t)
            buf_before[t] = sim.context(t).fetchBuf.size();
        sim.step();
        for (ThreadId t = 0; t < cfg.numThreads; ++t) {
            const Context &ctx = sim.context(t);
            if (ctx.perceived.outstanding() == 0)
                continue;
            EXPECT_LE(ctx.fetchBuf.size(), buf_before[t])
                << "thread " << t << " fetched at cycle " << sim.now()
                << " with " << ctx.perceived.outstanding()
                << " outstanding misses";
            gated_observations += 1;
        }
    }
    // The small L1 guarantees the gate actually engaged.
    EXPECT_GT(gated_observations, 0u);
    EXPECT_GT(sim.totalGraduated(), 0u);
}

TEST(SimulatorPolicy, FlushSquashesTheGatedThreadsBuffer)
{
    // Under the flush policy, any thread observed with an outstanding
    // miss at the end of a cycle must have an empty fetch buffer: the
    // fetch stage squashed (and vetoed) it after the miss opened.
    SimConfig cfg = test::testConfig(2, true, 64);
    cfg.fetchPolicy = PolicyKind::Flush;
    cfg.l1Bytes = 1024;
    Simulator sim = test::makeSim(cfg, test::streamingKernel());
    std::uint64_t flushed_observations = 0;
    for (int i = 0; i < 2000; ++i) {
        sim.step();
        for (ThreadId t = 0; t < cfg.numThreads; ++t) {
            const Context &ctx = sim.context(t);
            if (ctx.perceived.outstanding() > 0) {
                EXPECT_TRUE(ctx.fetchBuf.empty())
                    << "thread " << t << " at cycle " << sim.now();
                flushed_observations += 1;
            }
        }
    }
    // The small L1 guarantees the gate actually engaged.
    EXPECT_GT(flushed_observations, 0u);
    // And the machine still made forward progress past the squashes.
    EXPECT_GT(sim.totalGraduated(), 0u);
}

TEST(PolicySweep, JobsOneAndEightAreByteIdenticalPerPolicy)
{
    // The acceptance bar of the policy layer: every policy (gating
    // and per-unit included) stays a pure function of simulation
    // state, so a fig4 grid is byte-identical at any worker count.
    for (const PolicyKind k : allPolicies()) {
        std::vector<std::string> common = {
            "fig4",           "--insts=1500",
            "--warmup=300",   "--threads-list=1,2",
            "--latencies=1,16",
            "--quiet",        "--json"};
        if (policyIsFetch(k))
            common.push_back("--fetch-policy=" +
                             std::string(policyName(k)));
        if (policyIsIssue(k))
            common.push_back("--issue-policy=" +
                             std::string(policyName(k)));
        std::vector<std::string> serial = common, parallel = common;
        serial.push_back("--jobs=1");
        parallel.push_back("--jobs=8");
        std::string serial_out, parallel_out;
        ASSERT_EQ(test::cli(serial, serial_out), 0) << policyName(k);
        ASSERT_EQ(test::cli(parallel, parallel_out), 0) << policyName(k);
        EXPECT_FALSE(serial_out.empty());
        EXPECT_EQ(serial_out, parallel_out) << policyName(k);
    }
}

TEST(PolicySweep, AblatePolicyCoversTheFullGrid)
{
    std::string out;
    ASSERT_EQ(test::cli({"ablate-policy", "--insts=1000", "--warmup=200",
                   "--threads-list=1,2", "--quiet", "--json"},
                  out),
              0);
    for (const PolicyKind k : allPolicies())
        EXPECT_NE(out.find(policyName(k)), std::string::npos)
            << policyName(k);
    // 8 fetch x 6 issue x 2 thread counts = 96 valid grid rows.
    std::size_t rows = 0;
    for (std::size_t pos = out.find("\"fetch_policy\"");
         pos != std::string::npos;
         pos = out.find("\"fetch_policy\"", pos + 1))
        rows += 1;
    EXPECT_EQ(rows, 96u);
}

TEST(PolicySweep, AblateGatingChangesThroughputOnTheFiniteL2)
{
    // The point of the gating tentpole, asserted directionally: on the
    // finite-L2 backend, suspending fetch on miss pressure (stall) and
    // additionally squashing the buffer (flush) produce throughput
    // *different* from the plain icount ordering — the gate engages
    // and changes the schedule, it is not a no-op rename. (Whether
    // gating wins is workload- and pressure-dependent, exactly what
    // `mtdae ablate-gating` sweeps; here we pin only that the policies
    // are live.)
    auto run = [](PolicyKind fetch) {
        SimConfig cfg = paperConfig(4, true, 16);
        cfg.perfectL2 = false;
        cfg.l2Bytes = 64 * 1024;
        cfg.warmupInsts = 1000;
        cfg.fetchPolicy = fetch;
        return runSuiteMix(cfg, 8000);
    };
    const RunResult icount = run(PolicyKind::Icount);
    const RunResult stall = run(PolicyKind::Stall);
    const RunResult flush = run(PolicyKind::Flush);
    EXPECT_GT(icount.ipc, 0.0);
    EXPECT_GT(stall.ipc, 0.0);
    EXPECT_GT(flush.ipc, 0.0);
    EXPECT_NE(stall.cycles, icount.cycles);
    EXPECT_NE(flush.cycles, icount.cycles);
    EXPECT_NE(flush.cycles, stall.cycles);
}

TEST(PolicySweep, AblateGatingCoversItsGrid)
{
    std::string out;
    ASSERT_EQ(test::cli({"ablate-gating", "--insts=1000", "--warmup=200",
                   "--threads-list=2", "--latencies=64", "--quiet",
                   "--json"},
                  out),
              0);
    // 3 gating policies x 1 L2 size x 1 thread count = 3 rows.
    for (const char *name : {"icount", "stall", "flush"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
    std::size_t rows = 0;
    for (std::size_t pos = out.find("\"fetch_policy\"");
         pos != std::string::npos;
         pos = out.find("\"fetch_policy\"", pos + 1))
        rows += 1;
    EXPECT_EQ(rows, 3u);
}

TEST(PolicyGolden, DefaultPoliciesReproducePrePolicyLayerCsvs)
{
    // tests/golden/*.csv were generated by the simulator *before* the
    // arbitration layer existed (commit 055b469's tree), with exactly
    // these arguments. The default icount/round-robin policies must
    // reproduce them byte for byte.
    const std::string out_dir = ::testing::TempDir() + "mtdae_golden";

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        experiments = {
            {"fig1",
             {"fig1", "--bench=tomcatv,swim", "--latencies=1,16,64"}},
            {"fig3", {"fig3", "--threads-list=1,2,4"}},
            {"fig4",
             {"fig4", "--threads-list=1,2", "--latencies=1,16,64"}},
            {"fig5",
             {"fig5", "--threads-list=1,2,4", "--latencies=16,64"}},
        };
    for (const auto &[name, base] : experiments) {
        std::vector<std::string> args = base;
        args.insert(args.end(), {"--insts=2000", "--warmup=500",
                                 "--quiet", "--out=" + out_dir});
        std::string out;
        ASSERT_EQ(test::cli(args, out), 0) << name;
        const std::string got = test::slurp(out_dir + "/" + name + ".csv");
        const std::string want = test::slurp(std::string(MTDAE_SOURCE_DIR) +
                                       "/tests/golden/" + name + ".csv");
        ASSERT_FALSE(want.empty()) << name;
        EXPECT_EQ(got, want)
            << name << ": default-policy output drifted from the "
            << "pre-policy-layer simulator";
    }
}

TEST(PolicyContract, EveryOrderIsAFullPermutation)
{
    // The contract Simulator::accountSlots leans on (its
    // reasons[s % reasons.size()] round-robin asserts a non-empty
    // order): every policy's visit order is a permutation of all
    // thread ids — never empty, never duplicated, never filtered.
    // Eligibility is the Simulator's job, applied after the policy.
    Rng rng(0x6f72646572);
    for (std::uint32_t n : {1u, 2u, 3u, 6u}) {
        auto ts = blankStates(n);
        for (auto &t : ts) {
            t.fetchBufOccupancy = std::uint32_t(rng.uniform(9));
            t.apQueueOccupancy = std::uint32_t(rng.uniform(9));
            t.iqOccupancy = std::uint32_t(rng.uniform(9));
            t.robOccupancy = std::uint32_t(rng.uniform(17));
            t.unresolvedBranches = std::uint32_t(rng.uniform(5));
            t.outstandingMisses = std::uint32_t(rng.uniform(5));
            t.iqOccupancyWindow = std::uint32_t(rng.uniform(99));
        }
        const auto is_permutation = [n](Order order) {
            if (order.size() != n)
                return false;
            std::sort(order.begin(), order.end());
            for (std::uint32_t i = 0; i < n; ++i)
                if (order[i] != i)
                    return false;
            return true;
        };
        for (const PolicyKind fk : fetchPolicies()) {
            auto pol = makeFetchPolicy(
                threadedCfg(n, fk, PolicyKind::RoundRobin));
            Order order;
            for (int cycle = 0; cycle < 8; ++cycle) {
                pol->fetchOrder(ts, order);
                EXPECT_TRUE(is_permutation(order))
                    << policyName(fk) << " n=" << n;
                pol->endCycle();
            }
        }
        for (const PolicyKind ik : issuePolicies()) {
            auto pol = makeArbitrationPolicy(
                threadedCfg(n, PolicyKind::Icount, ik));
            Order order;
            for (int cycle = 0; cycle < 8; ++cycle) {
                pol->dispatchOrder(ts, order);
                EXPECT_TRUE(is_permutation(order))
                    << policyName(ik) << " dispatch n=" << n;
                for (const Unit u : {Unit::AP, Unit::EP}) {
                    pol->issueOrder(u, ts, order);
                    EXPECT_TRUE(is_permutation(order))
                        << policyName(ik) << " issue n=" << n;
                }
                pol->endCycle();
            }
        }
    }
}

} // namespace
} // namespace mtdae
