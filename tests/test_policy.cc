/**
 * @file
 * The thread-arbitration policy layer (src/policy/policy.hh): ordering
 * rules of every policy, the rotation mechanics, the Simulator's
 * policy plumbing, per-policy sweep determinism at different worker
 * counts, and the golden-CSV regression pinning the default policies
 * to the pre-policy-layer simulator byte for byte.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "policy/policy.hh"

namespace mtdae {
namespace {

SimConfig
threadedCfg(std::uint32_t nthreads, PolicyKind fetch, PolicyKind issue)
{
    SimConfig cfg;
    cfg.numThreads = nthreads;
    cfg.fetchPolicy = fetch;
    cfg.issuePolicy = issue;
    return cfg;
}

/** n default-constructed snapshots with tids assigned. */
std::vector<ThreadState>
blankStates(std::uint32_t n)
{
    std::vector<ThreadState> ts(n);
    for (std::uint32_t i = 0; i < n; ++i)
        ts[i].tid = i;
    return ts;
}

using Order = std::vector<ThreadId>;

TEST(PolicyNames, RoundTripAndRejects)
{
    EXPECT_EQ(allPolicies().size(), 4u);
    for (const PolicyKind k : allPolicies()) {
        PolicyKind parsed;
        ASSERT_TRUE(parsePolicy(policyName(k), parsed)) << policyName(k);
        EXPECT_EQ(parsed, k);
    }
    PolicyKind parsed;
    EXPECT_FALSE(parsePolicy("bogus", parsed));
    EXPECT_FALSE(parsePolicy("", parsed));
    EXPECT_FALSE(parsePolicy("ICOUNT", parsed));
}

TEST(PolicyNames, FactoriesReportTheirRegistryName)
{
    for (const PolicyKind k : allPolicies()) {
        SimConfig cfg = threadedCfg(2, k, k);
        EXPECT_EQ(makeFetchPolicy(cfg)->name(), policyName(k));
        EXPECT_EQ(makeArbitrationPolicy(cfg)->name(), policyName(k));
    }
}

TEST(FetchPolicyTest, RoundRobinRotatesOneStepPerCycle)
{
    const auto ts = blankStates(3);
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::RoundRobin,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
}

TEST(FetchPolicyTest, IcountSortsByFetchBufferOccupancy)
{
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 5;
    ts[1].fetchBufOccupancy = 0;
    ts[2].fetchBufOccupancy = 3;
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::Icount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
}

TEST(FetchPolicyTest, IcountTiesFollowTheRotation)
{
    const auto ts = blankStates(3);  // all occupancies equal
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::Icount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({0, 1, 2}));
    pol->endCycle();
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 2, 0}));
}

TEST(FetchPolicyTest, BrcountPrefersFewestUnresolvedBranches)
{
    auto ts = blankStates(3);
    ts[0].unresolvedBranches = 2;
    ts[1].unresolvedBranches = 4;
    ts[2].unresolvedBranches = 0;
    auto pol = makeFetchPolicy(threadedCfg(3, PolicyKind::BrCount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
}

TEST(FetchPolicyTest, MisscountPrefersFewestOutstandingMisses)
{
    auto ts = blankStates(4);
    ts[0].outstandingMisses = 1;
    ts[1].outstandingMisses = 0;
    ts[2].outstandingMisses = 7;
    ts[3].outstandingMisses = 0;
    auto pol = makeFetchPolicy(threadedCfg(4, PolicyKind::MissCount,
                                           PolicyKind::RoundRobin));
    Order order;
    pol->fetchOrder(ts, order);
    EXPECT_EQ(order, Order({1, 3, 0, 2}));
}

TEST(ArbitrationPolicyTest, RoundRobinOrdersAllPointsIdentically)
{
    const auto ts = blankStates(4);
    auto pol = makeArbitrationPolicy(
        threadedCfg(4, PolicyKind::Icount, PolicyKind::RoundRobin));
    Order dispatch, ap, ep;
    pol->dispatchOrder(ts, dispatch);
    pol->issueOrder(Unit::AP, ts, ap);
    pol->issueOrder(Unit::EP, ts, ep);
    EXPECT_EQ(dispatch, Order({0, 1, 2, 3}));
    EXPECT_EQ(ap, dispatch);
    EXPECT_EQ(ep, dispatch);
    pol->endCycle();
    pol->dispatchOrder(ts, dispatch);
    EXPECT_EQ(dispatch, Order({1, 2, 3, 0}));
}

TEST(ArbitrationPolicyTest, IcountRanksByFrontEndOccupancy)
{
    auto ts = blankStates(3);
    ts[0].fetchBufOccupancy = 1;  // total 6
    ts[0].apQueueOccupancy = 2;
    ts[0].iqOccupancy = 3;
    ts[1].fetchBufOccupancy = 8;  // total 8
    ts[2].iqOccupancy = 2;        // total 2
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::Icount));
    Order order;
    pol->issueOrder(Unit::AP, ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
}

TEST(ArbitrationPolicyTest, MisscountRanksByOutstandingMisses)
{
    auto ts = blankStates(3);
    ts[0].outstandingMisses = 3;
    ts[1].outstandingMisses = 3;  // tie with 0: rotation order holds
    ts[2].outstandingMisses = 1;
    auto pol = makeArbitrationPolicy(
        threadedCfg(3, PolicyKind::Icount, PolicyKind::MissCount));
    Order order;
    pol->dispatchOrder(ts, order);
    EXPECT_EQ(order, Order({2, 0, 1}));
}

TEST(SimulatorPolicy, DefaultsAreThePaperPolicies)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.fetchPolicy, PolicyKind::Icount);
    EXPECT_EQ(cfg.issuePolicy, PolicyKind::RoundRobin);
}

TEST(SimulatorPolicy, EveryPolicyPairMakesForwardProgress)
{
    // All sixteen fetch x issue pairs must graduate instructions on a
    // multithreaded machine — a policy that starves a thread would
    // trip the simulator's deadlock guard or stall the suite mix.
    for (const PolicyKind fp : allPolicies()) {
        for (const PolicyKind ip : allPolicies()) {
            SimConfig cfg = paperConfig(2, true, 16);
            cfg.warmupInsts = 500;
            cfg.fetchPolicy = fp;
            cfg.issuePolicy = ip;
            const RunResult r = runSuiteMix(cfg, 4000);
            EXPECT_GE(r.insts, 4000u)
                << policyName(fp) << "/" << policyName(ip);
            EXPECT_GT(r.ipc, 0.0)
                << policyName(fp) << "/" << policyName(ip);
        }
    }
}

TEST(SimulatorPolicy, RepeatedRunsAreDeterministicPerPolicy)
{
    for (const PolicyKind k : allPolicies()) {
        SimConfig cfg = paperConfig(3, true, 64);
        cfg.warmupInsts = 500;
        cfg.fetchPolicy = k;
        cfg.issuePolicy = k;
        const RunResult a = runSuiteMix(cfg, 3000);
        const RunResult b = runSuiteMix(cfg, 3000);
        EXPECT_EQ(a.cycles, b.cycles) << policyName(k);
        EXPECT_EQ(a.insts, b.insts) << policyName(k);
        EXPECT_EQ(a.fpMisses, b.fpMisses) << policyName(k);
    }
}

/** runCli to strings; returns exit code. */
int
cli(const std::vector<std::string> &args, std::string &out)
{
    std::ostringstream os, es;
    const int rc = cli::runCli(args, os, es);
    out = os.str();
    return rc;
}

TEST(PolicySweep, JobsOneAndEightAreByteIdenticalPerPolicy)
{
    // The acceptance bar of the policy layer: every policy stays a
    // pure function of simulation state, so a fig4 grid is
    // byte-identical at any worker count.
    for (const PolicyKind k : allPolicies()) {
        const std::vector<std::string> common = {
            "fig4",           "--insts=1500",
            "--warmup=300",   "--threads-list=1,2",
            "--latencies=1,16",
            "--fetch-policy=" + std::string(policyName(k)),
            "--issue-policy=" + std::string(policyName(k)),
            "--quiet",        "--json"};
        std::vector<std::string> serial = common, parallel = common;
        serial.push_back("--jobs=1");
        parallel.push_back("--jobs=8");
        std::string serial_out, parallel_out;
        ASSERT_EQ(cli(serial, serial_out), 0) << policyName(k);
        ASSERT_EQ(cli(parallel, parallel_out), 0) << policyName(k);
        EXPECT_FALSE(serial_out.empty());
        EXPECT_EQ(serial_out, parallel_out) << policyName(k);
    }
}

TEST(PolicySweep, AblatePolicyCoversTheFullGrid)
{
    std::string out;
    ASSERT_EQ(cli({"ablate-policy", "--insts=1000", "--warmup=200",
                   "--threads-list=1,2", "--quiet", "--json"},
                  out),
              0);
    for (const PolicyKind k : allPolicies())
        EXPECT_NE(out.find(policyName(k)), std::string::npos)
            << policyName(k);
    // 4 fetch x 4 issue x 2 thread counts = 32 grid rows.
    std::size_t rows = 0;
    for (std::size_t pos = out.find("\"fetch_policy\"");
         pos != std::string::npos;
         pos = out.find("\"fetch_policy\"", pos + 1))
        rows += 1;
    EXPECT_EQ(rows, 32u);
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(PolicyGolden, DefaultPoliciesReproducePrePolicyLayerCsvs)
{
    // tests/golden/*.csv were generated by the simulator *before* the
    // arbitration layer existed (commit 055b469's tree), with exactly
    // these arguments. The default icount/round-robin policies must
    // reproduce them byte for byte.
    const std::string out_dir = ::testing::TempDir() + "mtdae_golden";

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        experiments = {
            {"fig1",
             {"fig1", "--bench=tomcatv,swim", "--latencies=1,16,64"}},
            {"fig3", {"fig3", "--threads-list=1,2,4"}},
            {"fig4",
             {"fig4", "--threads-list=1,2", "--latencies=1,16,64"}},
            {"fig5",
             {"fig5", "--threads-list=1,2,4", "--latencies=16,64"}},
        };
    for (const auto &[name, base] : experiments) {
        std::vector<std::string> args = base;
        args.insert(args.end(), {"--insts=2000", "--warmup=500",
                                 "--quiet", "--out=" + out_dir});
        std::string out;
        ASSERT_EQ(cli(args, out), 0) << name;
        const std::string got = slurp(out_dir + "/" + name + ".csv");
        const std::string want = slurp(std::string(MTDAE_SOURCE_DIR) +
                                       "/tests/golden/" + name + ".csv");
        ASSERT_FALSE(want.empty()) << name;
        EXPECT_EQ(got, want)
            << name << ": default-policy output drifted from the "
            << "pre-policy-layer simulator";
    }
}

} // namespace
} // namespace mtdae
