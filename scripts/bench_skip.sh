#!/usr/bin/env sh
# Benchmark the idle fast-forward engine: run bench/skip_ff (a
# fig4-shaped sweep timed with cycle-skip off and on, cold and
# warm-started, self-verifying that every mode produces identical
# simulated results), capture the per-latency throughput and skip
# rates, then emit BENCH_skip.json.
#
# The JSON also records the committed per-runner-class baseline
# (scripts/skip_baseline.json): committed_on_cold_ips is the skip-on
# cold throughput measured on that class at the commit that landed the
# engine. With MTDAE_PERF_SMOKE=1 the script exits non-zero when the
# measured skip-on cold throughput drops more than 30% below the
# committed baseline — the same gate bench_hotloop.sh applies to the
# stepping loop, extended to the skip-on configuration.
#
# Usage: scripts/bench_skip.sh [build-dir]   (default: build)
#
# Environment:
#   MTDAE_JOBS          sweep worker count        (default: 1)
#   BENCH_OUT           output JSON path          (default: BENCH_skip.json)
#   MTDAE_RUNNER_CLASS  baseline key              (default: local-dev)
#   MTDAE_PERF_SMOKE    1 = fail on >30% regression vs. the committed
#                       baseline (default: 0, report only)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/skip_ff"
OUT="${BENCH_OUT:-BENCH_skip.json}"
CLASS="${MTDAE_RUNNER_CLASS:-local-dev}"
SMOKE="${MTDAE_PERF_SMOKE:-0}"
BASELINE="scripts/skip_baseline.json"

[ -x "$BIN" ] || { echo "error: $BIN not built" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# One worker by default: this is a single-core wall-time measurement;
# parallel workers only add scheduler noise to the timing.
echo "running $BIN (MTDAE_JOBS=${MTDAE_JOBS:-1})..." >&2
MTDAE_JOBS="${MTDAE_JOBS:-1}" "$BIN" > "$TMP/skip.txt"
sed -n '/^==/,$p' "$TMP/skip.txt" >&2

grep -q '^SKIP ' "$TMP/skip.txt" || {
    echo "error: no SKIP lines in output" >&2; exit 1; }
TOTAL=$(grep '^SKIPTOTAL ' "$TMP/skip.txt")
[ -n "$TOTAL" ] || { echo "error: no SKIPTOTAL line in output" >&2; exit 1; }
tfield() { printf '%s\n' "$TOTAL" | sed -n "s/.*$1=\([0-9.]*\).*/\1/p"; }
TOTAL_OFF=$(tfield off_cold_ips)
TOTAL_ON=$(tfield on_cold_ips)
TOTAL_SPEEDUP=$(tfield speedup)

# Per-latency points as a JSON object keyed by the L2 latency.
LATS=$(awk '/^SKIP / {
    for (i = 2; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2]; }
    printf "%s    \"%s\": {\"off_cold_ips\": %s, \"on_cold_ips\": %s, \
\"off_warm_ips\": %s, \"on_warm_ips\": %s, \"speedup\": %s, \
\"skip_rate\": %s}", (n++ ? ",\n" : "\n"), v["lat"], v["off_cold_ips"],
        v["on_cold_ips"], v["off_warm_ips"], v["on_warm_ips"],
        v["speedup"], v["skip_rate"];
} END { if (n) print "" }' "$TMP/skip.txt")

# Committed baseline for this runner class (0 = no baseline known).
BASE_COMMITTED=$(sed -n \
    "s/.*\"$CLASS\": {\"committed_on_cold_ips\": \([0-9]*\).*/\1/p" \
    "$BASELINE")
BASE_COMMITTED="${BASE_COMMITTED:-0}"

FLOOR=$(awk -v b="$BASE_COMMITTED" 'BEGIN { printf "%d", b * 0.7 }')
if [ "$BASE_COMMITTED" -gt 0 ] && \
   [ "$(awk -v c="$TOTAL_ON" -v f="$FLOOR" \
        'BEGIN { print (c + 0 < f) ? 1 : 0 }')" = 1 ]; then
    SMOKE_OK=false
else
    SMOKE_OK=true
fi

{
    printf '{\n'
    printf '  "benchmark": "skip_ff",\n'
    printf '  "runner_class": "%s",\n' "$CLASS"
    printf '  "latencies": {%s  },\n' "$LATS"
    printf '  "total_off_cold_ips": %s,\n' "$TOTAL_OFF"
    printf '  "total_on_cold_ips": %s,\n' "$TOTAL_ON"
    printf '  "total_speedup": %s,\n' "$TOTAL_SPEEDUP"
    printf '  "baseline_committed_on_cold_ips": %s,\n' "$BASE_COMMITTED"
    printf '  "perf_smoke_floor": %s,\n' "$FLOOR"
    printf '  "perf_smoke_ok": %s\n' "$SMOKE_OK"
    printf '}\n'
} > "$OUT"
echo "wrote $OUT (skip-on cold ${TOTAL_ON} insts/s," \
     "${TOTAL_SPEEDUP}x vs. stepping)" >&2

if [ "$SMOKE" = 1 ] && [ "$SMOKE_OK" = false ]; then
    echo "error: skip-on cold throughput ${TOTAL_ON} insts/s is more" \
         "than 30% below the committed '$CLASS' baseline" \
         "($BASE_COMMITTED)" >&2
    exit 1
fi
