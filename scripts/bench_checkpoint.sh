#!/usr/bin/env sh
# Benchmark warm-start prefix sharing: time `mtdae ablate-checkpoint`
# (a grid whose points share warmup prefixes within each thread-count
# group) cold (--warm-start=0, every job re-simulates its warmup)
# versus warm (--warm-start=1, one checkpoint per group fans out),
# verify the two runs produce byte-identical CSV (the checkpoint
# restore-equivalence contract of tests/test_checkpoint.cc), and emit
# BENCH_checkpoint.json with the wall-clock numbers, the speedup and
# the simulated instructions/second of both modes.
#
# Usage: scripts/bench_checkpoint.sh [build-dir]   (default: build)
#
# Environment:
#   MTDAE_JOBS    parallel worker count        (default: nproc)
#   BENCH_INSTS   per-run instruction budget   (default: 20000)
#   BENCH_WARMUP  shared warmup prefix length  (default: 4 * BENCH_INSTS)
#   BENCH_OUT     output JSON path             (default: BENCH_checkpoint.json)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MTDAE="$BUILD_DIR/mtdae"
JOBS="${MTDAE_JOBS:-$(nproc 2>/dev/null || echo 4)}"
INSTS="${BENCH_INSTS:-20000}"
WARMUP="${BENCH_WARMUP:-$(( INSTS * 4 ))}"
OUT="${BENCH_OUT:-BENCH_checkpoint.json}"

[ -x "$MTDAE" ] || { echo "error: $MTDAE not built" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Current time in milliseconds: nanosecond resolution where date
# supports %N (GNU), whole seconds elsewhere (BSD prints a literal N).
now_ms() {
    ns=$(date +%s%N 2>/dev/null || echo x)
    case "$ns" in
        ''|*[!0-9]*) echo $(( $(date +%s) * 1000 )) ;;
        *) echo $(( ns / 1000000 )) ;;
    esac
}

# Milliseconds of wall clock spent running "$@".
time_ms() {
    start=$(now_ms)
    "$@"
    end=$(now_ms)
    echo $(( end - start ))
}

# A long warmup relative to the measure budget is the regime the
# checkpoint engine targets: the shared prefix dominates each job.
echo "timing: mtdae ablate-checkpoint --insts=$INSTS" \
     "--warmup-insts=$WARMUP ..." >&2
COLD_MS=$(time_ms "$MTDAE" ablate-checkpoint --insts="$INSTS" \
    --warmup-insts="$WARMUP" --warm-start=0 --quiet --jobs="$JOBS" \
    --out="$TMP/cold")
echo "  --warm-start=0: ${COLD_MS} ms" >&2
WARM_MS=$(time_ms "$MTDAE" ablate-checkpoint --insts="$INSTS" \
    --warmup-insts="$WARMUP" --warm-start=1 --quiet --jobs="$JOBS" \
    --out="$TMP/warm")
echo "  --warm-start=1: ${WARM_MS} ms" >&2

if cmp -s "$TMP/cold/ablate_checkpoint.csv" \
          "$TMP/warm/ablate_checkpoint.csv"; then
    IDENTICAL=true
else
    IDENTICAL=false
fi

# Simulated (measured) instructions per run: sum of the CSV's insts
# column — the same for both modes when the CSVs are identical.
TOTAL_INSTS=$(awk -F, 'NR > 1 { t += $5 } END { printf "%d", t }' \
    "$TMP/warm/ablate_checkpoint.csv")

SPEEDUP=$(awk -v c="$COLD_MS" -v w="$WARM_MS" \
    'BEGIN { printf "%.3f", (w > 0) ? c / w : 0 }')
COLD_IPS=$(awk -v i="$TOTAL_INSTS" -v ms="$COLD_MS" \
    'BEGIN { printf "%.0f", (ms > 0) ? i / (ms / 1000) : 0 }')
WARM_IPS=$(awk -v i="$TOTAL_INSTS" -v ms="$WARM_MS" \
    'BEGIN { printf "%.0f", (ms > 0) ? i / (ms / 1000) : 0 }')

cat > "$OUT" <<EOF
{
  "experiment": "ablate-checkpoint",
  "insts_per_run": $INSTS,
  "warmup_insts": $WARMUP,
  "jobs": $JOBS,
  "cold_ms": $COLD_MS,
  "warm_ms": $WARM_MS,
  "speedup": $SPEEDUP,
  "cold_insts_per_sec": $COLD_IPS,
  "warm_insts_per_sec": $WARM_IPS,
  "csv_identical": $IDENTICAL
}
EOF
echo "wrote $OUT (speedup ${SPEEDUP}x, identical=$IDENTICAL)" >&2

[ "$IDENTICAL" = true ] || {
    echo "error: cold and warm-started CSVs differ" >&2
    exit 1
}
