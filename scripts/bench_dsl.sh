#!/usr/bin/env sh
# Benchmark the kernel-DSL sweep path: time `mtdae ablate-dsl` over a
# pointer-chase param grid at --jobs=1 versus --jobs=N (each job
# re-compiles the .mk text, so interpreter overhead is on the clock),
# verify the two runs produce byte-identical CSV, and emit
# BENCH_dsl.json with the wall-clock numbers and the speedup.
#
# Usage: scripts/bench_dsl.sh [build-dir]     (default: build)
#
# Environment:
#   MTDAE_JOBS    parallel worker count          (default: nproc)
#   BENCH_INSTS   per-run instruction budget     (default: 20000)
#   BENCH_OUT     output JSON path               (default: BENCH_dsl.json)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MTDAE="$BUILD_DIR/mtdae"
JOBS="${MTDAE_JOBS:-$(nproc 2>/dev/null || echo 4)}"
INSTS="${BENCH_INSTS:-20000}"
OUT="${BENCH_OUT:-BENCH_dsl.json}"
KERNEL="examples/kernels/pointer_chase.mk"

[ -x "$MTDAE" ] || { echo "error: $MTDAE not built" >&2; exit 1; }
[ -f "$KERNEL" ] || { echo "error: $KERNEL missing" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Current time in milliseconds: nanosecond resolution where date
# supports %N (GNU), whole seconds elsewhere (BSD prints a literal N).
now_ms() {
    ns=$(date +%s%N 2>/dev/null || echo x)
    case "$ns" in
        ''|*[!0-9]*) echo $(( $(date +%s) * 1000 )) ;;
        *) echo $(( ns / 1000000 )) ;;
    esac
}

# Milliseconds of wall clock spent running "$@".
time_ms() {
    start=$(now_ms)
    "$@"
    end=$(now_ms)
    echo $(( end - start ))
}

run_grid() {
    "$MTDAE" ablate-dsl --kernel-file="$KERNEL" \
        --kernel-param=footprint=16K,1M --kernel-param=unroll=2,4 \
        --threads-list=1,2 --insts="$INSTS" --warmup=2000 \
        --quiet --jobs="$1" --out="$2"
}

echo "timing: mtdae ablate-dsl ($KERNEL) --insts=$INSTS ..." >&2
SERIAL_MS=$(time_ms run_grid 1 "$TMP/serial")
echo "  --jobs=1: ${SERIAL_MS} ms" >&2
PARALLEL_MS=$(time_ms run_grid "$JOBS" "$TMP/parallel")
echo "  --jobs=$JOBS: ${PARALLEL_MS} ms" >&2

if cmp -s "$TMP/serial/ablate_dsl.csv" "$TMP/parallel/ablate_dsl.csv"; then
    IDENTICAL=true
else
    IDENTICAL=false
fi

POINTS=$(awk 'NR > 1' "$TMP/serial/ablate_dsl.csv" | wc -l | tr -d ' ')
SPEEDUP=$(awk -v s="$SERIAL_MS" -v p="$PARALLEL_MS" \
    'BEGIN { printf "%.3f", (p > 0) ? s / p : 0 }')

cat > "$OUT" <<EOF
{
  "experiment": "ablate-dsl",
  "kernel": "pointer_chase",
  "grid_points": $POINTS,
  "insts_per_run": $INSTS,
  "jobs": $JOBS,
  "serial_ms": $SERIAL_MS,
  "parallel_ms": $PARALLEL_MS,
  "speedup": $SPEEDUP,
  "csv_identical": $IDENTICAL
}
EOF
echo "wrote $OUT (speedup ${SPEEDUP}x, identical=$IDENTICAL)" >&2

[ "$IDENTICAL" = true ] || {
    echo "error: --jobs=1 and --jobs=$JOBS CSVs differ" >&2
    exit 1
}
