#!/usr/bin/env sh
# Benchmark the simulator hot loop: run bench/hot_loop (a fig4-shaped
# sweep timed cold and warm-started, self-verifying that both modes
# produce identical results), capture its simulated instructions/second
# and — when the tree is built with MTDAE_PROFILE — the per-stage
# wall-clock breakdown of the profiled measure phase, then emit
# BENCH_hotloop.json.
#
# The JSON also records the committed per-runner-class baseline
# (scripts/hotloop_baseline.json): before_cold_ips is the throughput
# immediately before the hot-loop optimization pass, committed_cold_ips
# the throughput at the commit that landed it. With MTDAE_PERF_SMOKE=1
# the script exits non-zero when the measured cold throughput drops
# more than 30% below committed_cold_ips for this runner class — the
# CI perf-smoke gate.
#
# Usage: scripts/bench_hotloop.sh [build-dir]   (default: build)
#
# Environment:
#   MTDAE_JOBS          sweep worker count        (default: 1)
#   BENCH_OUT           output JSON path          (default: BENCH_hotloop.json)
#   MTDAE_RUNNER_CLASS  baseline key              (default: local-dev)
#   MTDAE_PERF_SMOKE    1 = fail on >30% regression vs. the committed
#                       baseline (default: 0, report only)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/hot_loop"
OUT="${BENCH_OUT:-BENCH_hotloop.json}"
CLASS="${MTDAE_RUNNER_CLASS:-local-dev}"
SMOKE="${MTDAE_PERF_SMOKE:-0}"
BASELINE="scripts/hotloop_baseline.json"

[ -x "$BIN" ] || { echo "error: $BIN not built" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# One worker by default: the hot loop is a single-core measurement;
# parallel workers only add scheduler noise to the timing.
echo "running $BIN (MTDAE_JOBS=${MTDAE_JOBS:-1})..." >&2
MTDAE_JOBS="${MTDAE_JOBS:-1}" "$BIN" > "$TMP/hotloop.txt"
sed -n '/^==/,$p' "$TMP/hotloop.txt" >&2

HOT=$(grep '^HOTLOOP ' "$TMP/hotloop.txt")
[ -n "$HOT" ] || { echo "error: no HOTLOOP line in output" >&2; exit 1; }
field() { printf '%s\n' "$HOT" | sed -n "s/.*$1=\([0-9.]*\).*/\1/p"; }
INSTS=$(field insts)
COLD_MS=$(field cold_ms)
WARM_MS=$(field warm_ms)
COLD_IPS=$(field cold_ips)
WARM_IPS=$(field warm_ips)

# Per-stage breakdown (absent when built with -DMTDAE_PROFILE=OFF).
STAGES=$(awk '/^PROFILE stage=/ {
    split($2, a, "="); split($3, b, "="); split($4, c, "=");
    printf "%s      \"%s\": {\"ns\": %s, \"pct\": %s}",
           (n++ ? ",\n" : "\n"), a[2], b[2], c[2];
} END { if (n) print "" }' "$TMP/hotloop.txt")
TOTAL=$(sed -n 's/^PROFILE total_ns=\([0-9]*\).*/\1/p' "$TMP/hotloop.txt")
PROF_CYCLES=$(sed -n 's/^PROFILE .*cycles=\([0-9]*\).*/\1/p' \
    "$TMP/hotloop.txt")
PROF_IPS=$(sed -n 's/^PROFILE .*insts_per_sec=\([0-9.]*\).*/\1/p' \
    "$TMP/hotloop.txt")

# Committed baseline for this runner class (0 = no baseline known).
BASE_COMMITTED=$(sed -n \
    "s/.*\"$CLASS\": {\"committed_cold_ips\": \([0-9]*\).*/\1/p" \
    "$BASELINE")
BASE_BEFORE=$(sed -n \
    "s/.*\"$CLASS\": {[^}]*\"before_cold_ips\": \([0-9]*\).*/\1/p" \
    "$BASELINE")
BASE_COMMITTED="${BASE_COMMITTED:-0}"
BASE_BEFORE="${BASE_BEFORE:-0}"

SPEEDUP_VS_BEFORE=$(awk -v c="$COLD_IPS" -v b="$BASE_BEFORE" \
    'BEGIN { printf "%.3f", (b > 0) ? c / b : 0 }')
FLOOR=$(awk -v b="$BASE_COMMITTED" 'BEGIN { printf "%d", b * 0.7 }')
if [ "$BASE_COMMITTED" -gt 0 ] && \
   [ "$(awk -v c="$COLD_IPS" -v f="$FLOOR" \
        'BEGIN { print (c + 0 < f) ? 1 : 0 }')" = 1 ]; then
    SMOKE_OK=false
else
    SMOKE_OK=true
fi

{
    printf '{\n'
    printf '  "benchmark": "hot_loop",\n'
    printf '  "runner_class": "%s",\n' "$CLASS"
    printf '  "insts": %s,\n' "$INSTS"
    printf '  "cold_ms": %s,\n' "$COLD_MS"
    printf '  "warm_ms": %s,\n' "$WARM_MS"
    printf '  "cold_insts_per_sec": %s,\n' "$COLD_IPS"
    printf '  "warm_insts_per_sec": %s,\n' "$WARM_IPS"
    printf '  "baseline_before_cold_ips": %s,\n' "$BASE_BEFORE"
    printf '  "baseline_committed_cold_ips": %s,\n' "$BASE_COMMITTED"
    printf '  "speedup_vs_before": %s,\n' "$SPEEDUP_VS_BEFORE"
    printf '  "perf_smoke_floor": %s,\n' "$FLOOR"
    printf '  "perf_smoke_ok": %s' "$SMOKE_OK"
    if [ -n "$STAGES" ]; then
        printf ',\n  "profile": {\n'
        printf '    "total_ns": %s,\n' "${TOTAL:-0}"
        printf '    "cycles": %s,\n' "${PROF_CYCLES:-0}"
        printf '    "insts_per_sec": %s,\n' "${PROF_IPS:-0}"
        printf '    "stages": {%s    }\n  }' "$STAGES"
    fi
    printf '\n}\n'
} > "$OUT"
echo "wrote $OUT (cold ${COLD_IPS} insts/s," \
     "${SPEEDUP_VS_BEFORE}x vs. pre-optimization)" >&2

if [ "$SMOKE" = 1 ] && [ "$SMOKE_OK" = false ]; then
    echo "error: cold throughput ${COLD_IPS} insts/s is more than 30%" \
         "below the committed '$CLASS' baseline ($BASE_COMMITTED)" >&2
    exit 1
fi
