#!/usr/bin/env sh
# Benchmark the QoS/adaptive arbitration grid: time `mtdae ablate-qos`
# (thread-weight vectors x policy pairs at L2 = 256 KiB on the finite
# L2 + DRAM backend) at --jobs=1 versus --jobs=N, verify the two runs
# produce byte-identical CSV (the weighted comparators and the
# adaptive gate must stay pure functions of simulation state), and
# emit BENCH_qos.json with the wall-clock numbers and the speedup.
#
# Usage: scripts/bench_qos.sh [build-dir]     (default: build)
#
# Environment:
#   MTDAE_JOBS    parallel worker count          (default: nproc)
#   BENCH_INSTS   per-run instruction budget     (default: 20000)
#   BENCH_OUT     output JSON path               (default: BENCH_qos.json)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
MTDAE="$BUILD_DIR/mtdae"
JOBS="${MTDAE_JOBS:-$(nproc 2>/dev/null || echo 4)}"
INSTS="${BENCH_INSTS:-20000}"
OUT="${BENCH_OUT:-BENCH_qos.json}"

[ -x "$MTDAE" ] || { echo "error: $MTDAE not built" >&2; exit 1; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Current time in milliseconds: nanosecond resolution where date
# supports %N (GNU), whole seconds elsewhere (BSD prints a literal N).
now_ms() {
    ns=$(date +%s%N 2>/dev/null || echo x)
    case "$ns" in
        ''|*[!0-9]*) echo $(( $(date +%s) * 1000 )) ;;
        *) echo $(( ns / 1000000 )) ;;
    esac
}

# Milliseconds of wall clock spent running "$@".
time_ms() {
    start=$(now_ms)
    "$@"
    end=$(now_ms)
    echo $(( end - start ))
}

# --latencies is ablate-qos's swept-L2-size axis, in KiB.
echo "timing: mtdae ablate-qos --insts=$INSTS --latencies=256 ..." >&2
SERIAL_MS=$(time_ms "$MTDAE" ablate-qos --insts="$INSTS" \
    --warmup=2000 --latencies=256 --quiet --jobs=1 --out="$TMP/serial")
echo "  --jobs=1: ${SERIAL_MS} ms" >&2
PARALLEL_MS=$(time_ms "$MTDAE" ablate-qos --insts="$INSTS" \
    --warmup=2000 --latencies=256 --quiet --jobs="$JOBS" \
    --out="$TMP/parallel")
echo "  --jobs=$JOBS: ${PARALLEL_MS} ms" >&2

if cmp -s "$TMP/serial/ablate_qos.csv" \
          "$TMP/parallel/ablate_qos.csv"; then
    IDENTICAL=true
else
    IDENTICAL=false
fi

SPEEDUP=$(awk -v s="$SERIAL_MS" -v p="$PARALLEL_MS" \
    'BEGIN { printf "%.3f", (p > 0) ? s / p : 0 }')

cat > "$OUT" <<EOF
{
  "experiment": "ablate-qos",
  "insts_per_run": $INSTS,
  "jobs": $JOBS,
  "serial_ms": $SERIAL_MS,
  "parallel_ms": $PARALLEL_MS,
  "speedup": $SPEEDUP,
  "csv_identical": $IDENTICAL
}
EOF
echo "wrote $OUT (speedup ${SPEEDUP}x, identical=$IDENTICAL)" >&2

[ "$IDENTICAL" = true ] || {
    echo "error: --jobs=1 and --jobs=$JOBS CSVs differ" >&2
    exit 1
}
