/**
 * @file
 * Mix explorer: run the paper's Section 3 workload (every hardware
 * context executes the full SPEC FP95 suite in a rotated order) on an
 * arbitrary machine point and print the complete measurement set —
 * IPC, both units' issue-slot breakdowns, perceived latencies, cache
 * and bus behaviour.
 *
 * Usage: mix_explorer [threads] [l2_latency] [decoupled 0|1] [insts]
 *                     [fetch_policy] [issue_policy]
 *
 * The policy arguments take the names `mtdae help` lists for
 * --fetch-policy / --issue-policy (icount, round-robin, brcount,
 * misscount, plus the fetch-only gating policies stall/flush and the
 * issue-only per-unit split — see docs/POLICIES.md), e.g.:
 * mix_explorer 4 64 1 0 stall split
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/slot_stats.hh"
#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace mtdae;

    const std::uint32_t threads =
        argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 4;
    const std::uint32_t l2 =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 16;
    const bool decoupled = argc > 3 ? std::atoi(argv[3]) != 0 : true;
    std::uint64_t insts = argc > 4
        ? std::strtoull(argv[4], nullptr, 10) : 0;
    if (insts == 0)
        insts = instsBudget(150000) * threads;

    SimConfig cfg = paperConfig(threads, decoupled, l2);
    for (int i : {5, 6}) {
        if (argc <= i)
            break;
        const bool is_fetch = i == 5;
        PolicyKind &slot = is_fetch ? cfg.fetchPolicy : cfg.issuePolicy;
        if (!parsePolicy(argv[i], slot)) {
            std::cerr << "mix_explorer: unknown policy '" << argv[i]
                      << "' (try icount, round-robin, brcount,"
                         " misscount, stall, flush, split)\n";
            return 2;
        }
        if (is_fetch ? !policyIsFetch(slot) : !policyIsIssue(slot)) {
            std::cerr << "mix_explorer: '" << argv[i] << "' is not a "
                      << (is_fetch ? "fetch" : "dispatch/issue")
                      << " policy\n";
            return 2;
        }
    }
    const RunResult r = runSuiteMix(cfg, insts);

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "machine: " << threads << " thread(s), L2=" << l2
              << " cycles, " << (decoupled ? "decoupled" : "non-decoupled")
              << ", fetch=" << policyName(cfg.fetchPolicy)
              << ", issue=" << policyName(cfg.issuePolicy) << "\n"
              << "cycles=" << r.cycles << " insts=" << r.insts
              << " IPC=" << r.ipc << "\n"
              << "perceived miss latency: fp=" << r.perceivedFp
              << " int=" << r.perceivedInt << " all=" << r.perceivedAll
              << " (fp misses=" << r.fpMisses
              << ", int misses=" << r.intMisses << ")\n"
              << "L1: load miss=" << r.loadMissRatio
              << " store miss=" << r.storeMissRatio
              << " delayed hits=" << r.mergedRatio << "\n"
              << "bus utilization=" << r.busUtilization
              << "  mispredict rate=" << r.mispredictRate << "\n";

    for (const bool is_ap : {true, false}) {
        const SlotBreakdown &bd = is_ap ? r.ap : r.ep;
        std::cout << (is_ap ? "AP" : "EP") << " slots:";
        for (std::size_t u = 0; u < kNumSlotUses; ++u) {
            const auto use = static_cast<SlotUse>(u);
            std::cout << "  " << slotUseName(use) << "="
                      << std::setprecision(1)
                      << 100.0 * bd.fraction(use) << "%";
        }
        std::cout << std::setprecision(3) << "\n";
    }
    return 0;
}
