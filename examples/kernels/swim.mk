# swim: shallow-water stencil. Three input streams (one line-strided)
# and two output streams over ~4 MB arrays: bandwidth-heavy, perfectly
# decoupled.
#
# DSL port of buildSwim() in src/workload/spec_fp95.cc (byte-identical
# kernel; see tests/test_dsl.cc).
kernel swim

stream sU = strided(4M, 8)             # streaming field
stream sV = strided(4K, 24)            # reused row buffer
stream sP = strided(1M, 8)             # second field
stream sUn = strided(4M, 8)            # streaming output
stream sVn = strided(4K, 24) share sV  # reused out

let a0 = loadf(sU)
let a1 = loadf(sV)
let a2 = loadf(sP)

# layeredFpBody(loaded = {a0, a1, a2}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a2)
let l02 = fsub(a2, a0)
let l03 = fmul(a0, a1)
let l04 = fadd(a1, a2)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

storef sUn, l12
storef sVn, a0
advance sU
advance sP
advance sUn

# indexArith(4)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
iadd scratch = scratch
