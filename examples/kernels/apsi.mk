# apsi: mesoscale pollutant transport. Two-stream body with a
# conditional store (15% taken): mild control dependence, moderate
# working set.
#
# DSL port of buildApsi() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel apsi

stream sT = strided(2M, 8)    # field sweep
stream sQ = strided(4K, 24)   # resident coefficients
stream sO = strided(4K, 24)   # block-local output

let a0 = loadf(sT)
let a1 = loadf(sQ)

# layeredFpBody(loaded = {a0, a1}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a0)
let l02 = fsub(a0, a1)
let l03 = fmul(a1, a0)
let l04 = fadd(a0, a1)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

# Deposition test: 15% of iterations skip the store.
let cnd = icmp(addr(sT))
branch cnd prob 0.15 skip 1
storef sO, l12
advance sT
advance sQ
advance sO

# indexArith(4)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
iadd scratch = scratch
