# applu: SSOR solver for coupled PDEs. Triangular solves carry a
# loop-exit test each iteration (branch prob 0.2 skips the store), the
# first control-dependence workload in the suite.
#
# DSL port of buildApplu() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel applu

stream sA = strided(1536K, 8)          # wavefront sweep
stream sB = strided(4K, 24)            # block row (resident)
stream sC = strided(4K, 24) share sB   # jacobian blocks
stream sO = strided(4K, 24)            # block-local output

let a0 = loadf(sA)
let a1 = loadf(sB)
let a2 = loadf(sC)

# layeredFpBody(loaded = {a0, a1, a2}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a2)
let l02 = fsub(a2, a0)
let l03 = fmul(a0, a1)
let l04 = fadd(a1, a2)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

# Boundary test: taken with prob 0.2, skipping the store below.
let t = iadd(addr(sA))
let cnd = icmp(t)
branch cnd prob 0.2 skip 1
storef sO, l12
advance sA
advance sB
advance sO

# indexArith(3)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
