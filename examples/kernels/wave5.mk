# wave5: particle-in-cell plasma code. Indexed particle gathers with a
# data-dependent FP guard (branchf on a compare result): the branch
# outcome depends on loaded data, the worst case for fetch gating.
#
# DSL port of buildWave5() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel wave5

stream sIdx = strided(1M, 4, 4)   # particle index list
stream sF = strided(4K, 24)       # resident field block
reg idx : int
reg bnd : fp
stream gE = gather(64K) index idx

let e = loadf(gE)
let f = loadf(sF)

# Cell-boundary test (90% skip), then a data-dependent FP guard.
let cnd = icmp(addr(sF))
branch cnd prob 0.9 skip 2
let fc = fcmp(f, bnd)
branchf fc prob 0.3

# layeredFpBody(loaded = {e, f}, layer0 = 4, layer1 = 3)
let l00 = fmul(e, f)
let l01 = fadd(f, e)
let l02 = fsub(e, f)
let l03 = fmul(f, e)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l12, acc0
fma acc1 = l00, l11, acc1

fmov bnd = l11
let idx2 = iadd(idx)
stream gS = gather(32K) index idx2
storef gS, l11
loadi idx = sIdx
advance sIdx
advance sF

# indexArith(2)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
