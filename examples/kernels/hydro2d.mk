# hydro2d: Navier-Stokes on a 2-D grid with column-order inner loops:
# line-sized strides make nearly every access a miss over an 8 MB
# working set — the highest miss ratio of the suite.
#
# DSL port of buildHydro2d() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel hydro2d

stream sR = strided(8M, 32)   # column sweep
stream sU = strided(6K, 24)   # reused column block
stream sV = strided(4K, 24)   # reused boundary row
stream sW = strided(4M, 8)    # streaming output

let a0 = loadf(sR)
let a1 = loadf(sU)
let a2 = loadf(sV)

# layeredFpBody(loaded = {a0, a1, a2}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a2)
let l02 = fsub(a2, a0)
let l03 = fmul(a0, a1)
let l04 = fadd(a1, a2)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

storef sW, l12
advance sR
advance sU
advance sV
advance sW

# indexArith(4)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
iadd scratch = scratch
