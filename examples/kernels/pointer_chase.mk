# pointer_chase: linked-structure traversal. The chain stream walks a
# deterministic pseudo-random permutation of a param-sized footprint —
# no spatial locality for the cache and no stride for the AP to run
# ahead on. Each hop loads the next pointer into the register that the
# following arithmetic consumes, so perceived load latency lands
# squarely on the critical path.
#
# This is the worked example in docs/KERNEL_DSL.md.
kernel pointer_chase

param footprint = 1M   # bytes walked by the chain (sweepable)
param node = 16        # node size in bytes
param unroll = 4       # hops per kernel iteration

stream nodes = chain(footprint, node)
reg sum : fp

loop unroll {
    let p = loadi(nodes)    # fetch the next-pointer field
    ilogic p = p            # mask/align the loaded pointer
    let v = loadf(nodes)    # payload in the same node
    fadd sum = sum, v
    advance nodes           # hop: address register consumes the walk
}
