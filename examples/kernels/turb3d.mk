# turb3d: FFT-based turbulence. Small resident butterflies most of the
# time, but 3% of iterations recompute a bit-reversed offset from a
# freshly loaded index (computed-address dependence into the AP).
#
# DSL port of buildTurb3d() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel turb3d

stream sRe = strided(4K, 8)            # resident butterfly (real)
stream sIm = strided(4K, 8) share sRe  # imaginary half
stream sTw = strided(4K, 8)            # twiddle factors
stream sIdx = strided(2M, 4, 4)        # bit-reversal table

let a0 = loadf(sRe)
let a1 = loadf(sIm)
let a2 = loadf(sTw)

# layeredFpBody(loaded = {a0, a1, a2}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a2)
let l02 = fsub(a2, a0)
let l03 = fmul(a0, a1)
let l04 = fadd(a1, a2)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

stream sO = strided(4K, 8)
storef sO, l12

# 97% of iterations skip the index recomputation below.
let cnd = icmp(addr(sRe))
branch cnd prob 0.97 skip 3
let idx = loadi(sIdx)
let off = ishift(idx)
ilogic off = off, addr(sRe)
advance sRe
advance sTw
advance sO

# indexArith(3)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
