# fpppp: two-electron integral derivatives. Tiny resident working set
# but enormous basic blocks of dependent FP arithmetic: compute bound,
# decoupling buys little. A rare (5%) spill path touches a 2 MB gather.
#
# DSL port of buildFpppp() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc). The two unrolled
# integral blocks of the C++ builder are expressed as `loop 2` here:
# each iteration opens a fresh scope, so the per-block streams and
# temporaries are re-declared exactly like the C++ loop body.
kernel fpppp

stream sSc = strided(4K, 8)   # resident scratch
reg acc : fp
reg spill : fp

# Rare register-spill path: 95% of iterations skip it.
let cnd = icmp(addr(sSc))
branch cnd prob 0.95 skip 2
let off2 = iadd(addr(sSc))
stream gBig = gather(2M) index off2
loadf spill = gBig
fadd acc = acc, spill

loop 2 {
    let idx = loadi(sSc)
    let off = iadd(idx)
    stream gD = gather(6K) index off
    let d = loadf(gD)
    let e = loadf(gD)
    let fc = fcmp(d, acc)
    branchf fc prob 0.85
    let t1 = fmul(d, e)
    let t2 = fadd(d, e)
    let t3 = fsub(e, d)
    let t4 = fmul(e, e)
    let c1 = fma(t1, t2, acc)
    let c2 = fadd(t3, t4)
    let p1 = fadd(t1, t3)
    let p2 = fmul(t2, t4)
    let p3 = fadd(p1, p2)
    fma acc = c1, c2, acc
    advance sSc
}
