# tomcatv: vectorised mesh generation. Unit-stride sweeps over several
# multi-MB arrays; address arithmetic fully independent of the FP
# results (near-perfect decoupling, significant miss ratio).
#
# DSL port of buildTomcatv() in src/workload/spec_fp95.cc: the
# statements mirror the builder calls one for one, so the compiled
# kernel is byte-identical to the C++ model (tests/test_dsl.cc).
kernel tomcatv

stream sA = strided(2M, 8)            # streaming input plane
stream sB = strided(4K, 24)           # reused previous plane
stream sX = strided(4K, 24) share sB  # coefficients
stream sC = strided(2M, 8)            # streaming output

let a0 = loadf(sA)
let a1 = loadf(sB)
let a2 = loadf(sX)

# layeredFpBody(loaded = {a0, a1, a2}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a2)
let l02 = fsub(a2, a0)
let l03 = fmul(a0, a1)
let l04 = fadd(a1, a2)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

storef sC, l12
advance sA
advance sX
advance sC

# indexArith(4)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
iadd scratch = scratch
