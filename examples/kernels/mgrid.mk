# mgrid: multigrid solver. Mixed unit and coarse strides (restriction
# and prolongation touch every other plane): moderate miss ratio,
# excellent decoupling.
#
# DSL port of buildMgrid() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel mgrid

stream sF = strided(2M, 8)             # fine-grid sweep
stream sC = strided(4K, 24)            # coarse grid (resident)
stream sN = strided(4K, 24) share sC   # neighbours
stream sO = strided(4K, 24)            # block-local output

let a0 = loadf(sF)
let a1 = loadf(sC)
let a2 = loadf(sN)

# layeredFpBody(loaded = {a0, a1, a2}, layer0 = 5, layer1 = 4)
let l00 = fmul(a0, a1)
let l01 = fadd(a1, a2)
let l02 = fsub(a2, a0)
let l03 = fmul(a0, a1)
let l04 = fadd(a1, a2)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
let l13 = fadd(l03, l04)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l13, acc0
fma acc1 = l00, l12, acc1

storef sO, l12
advance sF
advance sC
advance sO

# indexArith(4)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
ilogic scratch = scratch
iadd scratch = scratch
