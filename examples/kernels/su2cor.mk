# su2cor: quantum-chromodynamics gather code. Integer index loads feed
# the addresses of FP loads over a large table: integer-load misses
# stall the AP directly while the overall miss ratio stays significant.
#
# DSL port of buildSu2cor() in src/workload/spec_fp95.cc
# (byte-identical kernel; see tests/test_dsl.cc).
kernel su2cor

stream sIdx = strided(1M, 4, 4)
stream sS = strided(4K, 24)   # reused propagator block

# The index is loaded one iteration ahead (software pipelining), so an
# index miss is partially hidden: its consumer is a body-length away.
reg idx : int
stream gT = gather(64K) index idx

let t = loadf(gT)
let s = loadf(sS)

# layeredFpBody(loaded = {t, s}, layer0 = 4, layer1 = 3)
let l00 = fmul(t, s)
let l01 = fadd(s, t)
let l02 = fsub(t, s)
let l03 = fmul(s, t)
let l10 = fadd(l00, l01)
let l11 = fsub(l01, l02)
let l12 = fmul(l02, l03)
reg acc0 : fp
reg acc1 : fp
fma acc0 = l10, l12, acc0
fma acc1 = l00, l11, acc1

stream sOut = strided(4K, 24)  # block-local output
storef sOut, l11
loadi idx = sIdx               # next iteration's index
advance sIdx
advance sS
advance sOut

# indexArith(2)
reg scratch : int
iadd scratch = scratch
ishift scratch = scratch
