# hash_join: database probe loop. A strided scan of the probe relation
# hashes each key into a param-sized bucket table; the bucket head is a
# pointer loaded back into the index register itself (a true
# load-to-address dependence), and a miss walks one conflict link.
kernel hash_join

param build_bytes = 4M   # hash table footprint (sweepable)
param probe_stride = 8   # probe relation element stride
param hit_prob = 0.75    # probability the first bucket entry matches

stream probe = strided(1M, probe_stride)
reg h : int
stream buckets = gather(build_bytes) index h

let k = loadi(probe)
ishift h = k             # hash: fold the key into a bucket index
loadi h = buckets        # bucket head -> h (load feeds its own address)
let cmp = icmp(h, k)
branch cmp prob hit_prob skip 2
loadi h = buckets        # miss: follow one conflict-chain link
ilogic h = h
let v = loadf(buckets)   # matched payload
reg agg : fp
fadd agg = agg, v
advance probe
