# stencil: parameterised relaxation sweep. Three row streams (south
# shares the centre walker), a param-controlled number of passes, and a
# compile-time `if` that widens the update for taps > 3. Demonstrates
# loops with index variables and scalar conditionals: the whole
# structure is resolved at compile time, so the instruction trace stays
# deterministic.
kernel stencil

param plane = 2M    # plane footprint in bytes (sweepable)
param taps = 3      # stencil taps: > 3 adds a diagonal term
param passes = 1    # relaxation passes unrolled into the body

stream north = strided(plane, 8)
stream center = strided(4K, 24)
stream south = strided(4K, 24) share center
stream out = strided(plane, 8)

loop passes {
    let n = loadf(north)
    let c = loadf(center)
    let s = loadf(south)
    let t0 = fmul(n, c)
    let t1 = fadd(c, s)
    let t2 = fsub(s, n)
    reg acc : fp
    fma acc = t0, t1, acc
    if taps > 3 {
        let t3 = fadd(t1, t2)
        storef out, t3
    } else {
        storef out, t1
    }
    advance north
    advance out
}

# Per-row index bookkeeping: every other row recomputes its offset.
loop taps as r {
    if r % 2 == 0 {
        reg scratch : int
        iadd scratch = scratch
        ishift scratch = scratch
    }
}
