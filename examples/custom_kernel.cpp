/**
 * @file
 * Build your own workload with the kernel DSL and measure how well the
 * decoupled machine hides its memory latency.
 *
 * The example constructs two kernels that differ only in how the FP-load
 * address is produced: from induction arithmetic (decouples perfectly)
 * versus from a just-loaded index (the access/execute slip collapses).
 * It then runs both, decoupled and non-decoupled, across the latency
 * sweep — a miniature of the paper's Figure 4 for your own code.
 */

#include <iomanip>
#include <iostream>

#include "harness/experiment.hh"
#include "workload/kernel.hh"
#include "workload/trace_source.hh"

using namespace mtdae;

namespace {

/** Streaming: addresses come from induction variables only. */
Kernel
makeStreaming()
{
    KernelBuilder b;
    auto src = b.strided(8 * 1024 * 1024, 8);   // 8 MB input
    auto dst = b.strided(8 * 1024 * 1024, 8);   // 8 MB output
    const int x = b.ldf(src);
    const int y = b.fop(Opcode::FMul, x, x);
    const int z = b.fop(Opcode::FAdd, y, x);
    const int acc = b.fpReg();
    b.fopInto(Opcode::FMA, acc, y, z, acc);
    b.stf(dst, z);
    b.advance(src);
    b.advance(dst);
    return b.build("streaming");
}

/** Dependent: every FP-load address comes from an integer load. */
Kernel
makeDependent()
{
    KernelBuilder b;
    auto idx = b.strided(8 * 1024 * 1024, 8);   // index array
    const int i = b.ldi(idx);
    auto table = b.gather(8 * 1024 * 1024, i);  // data table
    const int x = b.ldf(table);
    const int y = b.fop(Opcode::FMul, x, x);
    const int acc = b.fpReg();
    b.fopInto(Opcode::FMA, acc, y, x, acc);
    b.advance(idx);
    return b.build("dependent");
}

void
report(const Kernel &k)
{
    std::cout << "\nkernel '" << k.name << "' ("
              << k.ops.size() << " ops/iteration)\n"
              << "  L2 lat | dec IPC | dec perceived | "
                 "non-dec IPC | non-dec perceived\n";
    for (const std::uint32_t lat : paperLatencies()) {
        double vals[4];
        int idx = 0;
        for (const bool dec : {true, false}) {
            SimConfig cfg = paperConfig(1, dec, lat);
            std::vector<std::unique_ptr<TraceSource>> sources;
            sources.push_back(std::make_unique<KernelTraceSource>(
                k, 0x10000000, 0x1000, cfg.seed));
            Simulator sim(cfg, std::move(sources));
            const RunResult r = sim.run(instsBudget(100000));
            vals[idx++] = r.ipc;
            vals[idx++] = r.perceivedAll;
        }
        std::cout << std::fixed << std::setprecision(2) << "  "
                  << std::setw(6) << lat << " | " << std::setw(7)
                  << vals[0] << " | " << std::setw(13) << vals[1]
                  << " | " << std::setw(11) << vals[2] << " | "
                  << std::setw(14) << vals[3] << "\n";
    }
}

} // namespace

int
main()
{
    std::cout << "Decoupling hides what the AP can run ahead of — and "
                 "nothing else.\n";
    report(makeStreaming());
    report(makeDependent());
    return 0;
}
