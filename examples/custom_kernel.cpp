/**
 * @file
 * Build your own workload with the kernel DSL and measure how well the
 * decoupled machine hides its memory latency.
 *
 * The example constructs two kernels that differ only in how the FP-load
 * address is produced: from induction arithmetic (decouples perfectly)
 * versus from a just-loaded index (the access/execute slip collapses).
 * It then runs both, decoupled and non-decoupled, across the latency
 * sweep — a miniature of the paper's Figure 4 for your own code.
 */

#include <iomanip>
#include <iostream>

#include "common/rng.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workload/kernel.hh"
#include "workload/trace_source.hh"

using namespace mtdae;

namespace {

/**
 * A user-defined workload recipe: the same custom kernel on every
 * hardware context. Implementing TraceSourceFactory is all it takes to
 * run your own code through the parallel sweep engine.
 */
class KernelFactory : public TraceSourceFactory
{
  public:
    explicit KernelFactory(Kernel k) : kernel_(std::move(k)) {}

    std::vector<std::unique_ptr<TraceSource>>
    make(std::uint32_t num_threads, std::uint64_t seed) const override
    {
        std::vector<std::unique_ptr<TraceSource>> sources;
        for (ThreadId t = 0; t < num_threads; ++t)
            sources.push_back(std::make_unique<KernelTraceSource>(
                kernel_, 0x10000000 + (Addr(t) << 34), 0x1000,
                deriveSeed(seed, t)));
        return sources;
    }

    std::unique_ptr<TraceSourceFactory>
    clone() const override
    {
        return std::make_unique<KernelFactory>(kernel_);
    }

    const std::string &name() const override { return kernel_.name; }

  private:
    Kernel kernel_;
};

/** Streaming: addresses come from induction variables only. */
Kernel
makeStreaming()
{
    KernelBuilder b;
    auto src = b.strided(8 * 1024 * 1024, 8);   // 8 MB input
    auto dst = b.strided(8 * 1024 * 1024, 8);   // 8 MB output
    const int x = b.ldf(src);
    const int y = b.fop(Opcode::FMul, x, x);
    const int z = b.fop(Opcode::FAdd, y, x);
    const int acc = b.fpReg();
    b.fopInto(Opcode::FMA, acc, y, z, acc);
    b.stf(dst, z);
    b.advance(src);
    b.advance(dst);
    return b.build("streaming");
}

/** Dependent: every FP-load address comes from an integer load. */
Kernel
makeDependent()
{
    KernelBuilder b;
    auto idx = b.strided(8 * 1024 * 1024, 8);   // index array
    const int i = b.ldi(idx);
    auto table = b.gather(8 * 1024 * 1024, i);  // data table
    const int x = b.ldf(table);
    const int y = b.fop(Opcode::FMul, x, x);
    const int acc = b.fpReg();
    b.fopInto(Opcode::FMA, acc, y, x, acc);
    b.advance(idx);
    return b.build("dependent");
}

void
report(const Kernel &k)
{
    std::cout << "\nkernel '" << k.name << "' ("
              << k.ops.size() << " ops/iteration)\n"
              << "  L2 lat | dec IPC | dec perceived | "
                 "non-dec IPC | non-dec perceived\n";
    SweepSpec spec;
    for (const std::uint32_t lat : paperLatencies()) {
        for (const bool dec : {true, false}) {
            SimConfig cfg = paperConfig(1, dec, lat);
            cfg.seed = envSeed();
            spec.add(cfg, std::make_unique<KernelFactory>(k),
                     instsBudget(100000),
                     k.name + (dec ? " dec" : " non-dec") + " L2=" +
                         std::to_string(lat));
        }
    }
    const std::vector<RunResult> runs = JobRunner(envJobs()).run(spec);

    std::size_t j = 0;
    for (const std::uint32_t lat : paperLatencies()) {
        double vals[4];
        int idx = 0;
        for (const bool dec : {true, false}) {
            (void)dec;
            const RunResult &r = runs.at(j++);
            vals[idx++] = r.ipc;
            vals[idx++] = r.perceivedAll;
        }
        std::cout << std::fixed << std::setprecision(2) << "  "
                  << std::setw(6) << lat << " | " << std::setw(7)
                  << vals[0] << " | " << std::setw(13) << vals[1]
                  << " | " << std::setw(11) << vals[2] << " | "
                  << std::setw(14) << vals[3] << "\n";
    }
}

} // namespace

int
main()
{
    std::cout << "Decoupling hides what the AP can run ahead of — and "
                 "nothing else.\n";
    report(makeStreaming());
    report(makeDependent());
    return 0;
}
