/**
 * @file
 * The bandwidth wall (paper Section 3.3 / Figure 5), demonstrated on
 * the *real* memory backend: with a finite L2 and a banked DRAM, adding
 * hardware contexts multiplies miss traffic into a fixed number of row
 * buffers and one shared DRAM data bus. Threads destroy each other's
 * row-buffer locality (watch the row-hit column fall) and the emergent
 * fill latency climbs — a wall no amount of extra contexts can push
 * through, where the old fixed-latency approximation only ever showed
 * the L1-L2 bus saturating.
 *
 * Usage: bandwidth_wall [dram_scale] [max_threads]
 *   dram_scale  slow the DRAM down by this factor (default 2)
 *   max_threads sweep 1..max_threads contexts     (default 8)
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace mtdae;

    const std::uint32_t scale =
        argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 2;
    const std::uint32_t max_threads =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 8;
    const std::uint64_t insts = instsBudget(120000);

    std::cout << "Finite L2 + DRAM backend, DRAM slowed x" << scale
              << "; suite-mix workload\n"
              << "threads |  dec IPC  fill  row% dbus% | "
                 "nondec IPC  fill  row% dbus%\n";

    SweepSpec spec;
    for (std::uint32_t n = 1; n <= max_threads; ++n) {
        for (const bool dec : {true, false}) {
            SimConfig cfg = paperConfig(n, dec, 16);
            cfg.perfectL2 = false;
            cfg.dramCas *= scale;
            cfg.dramRas *= scale;
            cfg.dramPrecharge *= scale;
            cfg.seed = envSeed();
            spec.addSuiteMix(cfg, insts * n,
                             std::to_string(n) + "T " +
                                 (dec ? "dec" : "non-dec"));
        }
    }
    const std::vector<RunResult> runs = JobRunner(envJobs()).run(spec);

    double fill_1t = 0.0, fill_max = 0.0;
    std::size_t k = 0;
    for (std::uint32_t n = 1; n <= max_threads; ++n) {
        std::cout << std::setw(7) << n;
        for (const bool dec : {true, false}) {
            const RunResult &r = runs.at(k++);
            if (dec && n == 1)
                fill_1t = r.avgFillLatency;
            if (dec && n == max_threads)
                fill_max = r.avgFillLatency;
            std::cout << std::fixed << " | " << std::setw(8)
                      << std::setprecision(2) << r.ipc << " "
                      << std::setw(5) << std::setprecision(0)
                      << r.avgFillLatency << " " << std::setw(5)
                      << std::setprecision(1)
                      << 100.0 * r.dramRowHitRatio << " " << std::setw(5)
                      << 100.0 * r.dramBusUtilization;
        }
        std::cout << "\n";
    }

    std::cout << "\nThe same L1 miss that cost "
              << std::setprecision(0) << fill_1t
              << " cycles with one thread costs " << fill_max << " with "
              << max_threads
              << ":\nlatency is emergent now — row-buffer interference "
                 "and DRAM bus queueing are\nthe wall, and extra "
                 "contexts climb it instead of hiding it "
                 "(docs/MEMORY.md).\n";
    return 0;
}
