/**
 * @file
 * The bandwidth wall (paper Section 3.3 / Figure 5): adding hardware
 * contexts to a *non-decoupled* machine at high memory latency drives
 * the shared L1-L2 bus towards saturation before reaching the IPC a
 * decoupled machine achieves with a fraction of the threads.
 *
 * Usage: bandwidth_wall [l2_latency] [max_threads]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace mtdae;

    const std::uint32_t lat =
        argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 64;
    const std::uint32_t max_threads =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 12;
    const std::uint64_t insts = instsBudget(120000);

    std::cout << "L2 latency " << lat << " cycles; suite-mix workload\n"
              << "threads |  dec IPC  dec bus% | nondec IPC nondec bus%\n";

    SweepSpec spec;
    for (std::uint32_t n = 1; n <= max_threads; ++n) {
        for (const bool dec : {true, false}) {
            SimConfig cfg = paperConfig(n, dec, lat);
            cfg.seed = envSeed();
            spec.addSuiteMix(cfg, insts * n,
                             std::to_string(n) + "T " +
                                 (dec ? "dec" : "non-dec"));
        }
    }
    const std::vector<RunResult> runs = JobRunner(envJobs()).run(spec);

    double best_dec_small = 0.0;
    std::size_t k = 0;
    for (std::uint32_t n = 1; n <= max_threads; ++n) {
        double ipc[2], bus[2];
        int i = 0;
        for (const bool dec : {true, false}) {
            (void)dec;
            const RunResult &r = runs.at(k++);
            ipc[i] = r.ipc;
            bus[i] = 100.0 * r.busUtilization;
            ++i;
        }
        if (n <= 4)
            best_dec_small = std::max(best_dec_small, ipc[0]);
        std::cout << std::fixed << std::setprecision(2) << std::setw(7)
                  << n << " | " << std::setw(8) << ipc[0] << "  "
                  << std::setw(7) << std::setprecision(1) << bus[0]
                  << " | " << std::setw(10) << std::setprecision(2)
                  << ipc[1] << " " << std::setw(10)
                  << std::setprecision(1) << bus[1] << "\n";
    }

    std::cout << "\nA decoupled machine with <= 4 threads reached IPC "
              << std::setprecision(2) << best_dec_small
              << "; the non-decoupled one chases it with many more "
                 "threads\nwhile its bus utilisation climbs — the "
                 "paper's reduction-in-contexts argument.\n";
    return 0;
}
