/**
 * @file
 * Quickstart: build the paper's Figure 2 machine, run one benchmark on
 * it, and print the headline metrics. Start here.
 *
 * Usage: quickstart [benchmark] [threads] [l2_latency]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "workload/spec_fp95.hh"

int
main(int argc, char **argv)
{
    using namespace mtdae;

    const std::string bench = argc > 1 ? argv[1] : "tomcatv";
    const std::uint32_t threads =
        argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 1;
    const std::uint32_t l2 =
        argc > 3 ? std::uint32_t(std::atoi(argv[3])) : 16;

    // The paper's machine: 4 AP + 4 EP units, SMT, decoupled.
    const SimConfig cfg = paperConfig(threads, /*decoupled=*/true, l2);
    const RunResult r = runBenchmark(cfg, bench, instsBudget(300000));

    std::cout << "benchmark            : " << bench << "\n"
              << "threads              : " << threads << "\n"
              << "L2 latency           : " << l2 << " cycles\n"
              << "cycles               : " << r.cycles << "\n"
              << "instructions         : " << r.insts << "\n"
              << "IPC                  : " << r.ipc << "\n"
              << "perceived FP miss    : " << r.perceivedFp << " cycles\n"
              << "perceived int miss   : " << r.perceivedInt << " cycles\n"
              << "L1 load miss ratio   : " << r.loadMissRatio << "\n"
              << "L1 store miss ratio  : " << r.storeMissRatio << "\n"
              << "bus utilization      : " << r.busUtilization << "\n"
              << "AP useful fraction   : "
              << r.ap.fraction(SlotUse::Useful) << "\n"
              << "EP useful fraction   : "
              << r.ep.fraction(SlotUse::Useful) << "\n"
              << "mispredict rate      : " << r.mispredictRate << "\n";
    return 0;
}
