/**
 * @file
 * `mtdae` — the unified experiment driver. All logic lives in
 * src/harness/cli.{hh,cc} so it can be unit tested; this is only argv
 * plumbing.
 *
 * Usage: mtdae <experiment> [options] [--<config-key>=<value>]
 * Try:   mtdae list
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return mtdae::cli::runCli(args, std::cout, std::cerr);
}
